"""Buffered output ports: where queuing (and loss, and marking) happens.

Each port is a strict-priority, drop-tail output queue draining at line
rate.  Optional ECN behaviours:

* ``ecn_threshold`` -- DCTCP-style: packets are marked when the queue they
  join exceeds ``K`` bytes;
* ``phantom_drain`` / ``phantom_threshold`` -- HULL-style phantom queue: a
  virtual counter drains at a fraction of line rate and marks when it
  backs up, keeping the *real* queue near-empty at the cost of bandwidth
  headroom.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro import units
from repro.obs.events import PacketDrop, PacketEnqueue, PacketMark, PacketTx
from repro.phynet.engine import Simulator
from repro.phynet.packet import Packet

#: Per-hop propagation plus switching latency (short datacenter cables).
DEFAULT_PROP_DELAY = 0.5 * units.MICROS


#: Number of strict-priority traffic classes per port (802.1q split:
#: index 0 guaranteed, index 1 best-effort / speculative).
N_CLASSES = 2


def _zero_counts() -> List[int]:
    """Fresh per-class integer counters (one slot per traffic class)."""
    return [0] * N_CLASSES


def _zero_bytes() -> List[float]:
    """Fresh per-class byte counters (one slot per traffic class)."""
    return [0.0] * N_CLASSES


@dataclass
class PortStats:
    """Counters accumulated over a simulation run.

    ``drops`` counts congestion (tail) loss only; best-effort packets
    evicted to protect an arriving guaranteed-class packet are counted
    separately in ``pushouts``, and packets arriving at a failed port in
    ``fault_drops`` -- conflating them would make Silo's class protection
    or injected faults read as congestion loss in every exported metric.

    The ``class_*`` lists split the same events by strict-priority
    traffic class (index = :attr:`~repro.phynet.packet.Packet.priority`):
    with SWP's speculative duplicates riding the best-effort class, a
    spec-copy drop must stay distinguishable from congestion loss of
    guaranteed traffic.  Invariant: each aggregate counter equals the sum
    of its per-class list.
    """

    tx_packets: int = 0
    tx_bytes: float = 0.0
    drops: int = 0
    dropped_bytes: float = 0.0
    pushouts: int = 0
    pushed_out_bytes: float = 0.0
    fault_drops: int = 0
    fault_dropped_bytes: float = 0.0
    ecn_marks: int = 0
    max_queue_bytes: float = 0.0
    busy_time: float = 0.0
    class_drops: List[int] = field(default_factory=_zero_counts)
    class_dropped_bytes: List[float] = field(default_factory=_zero_bytes)
    class_pushouts: List[int] = field(default_factory=_zero_counts)
    class_pushed_out_bytes: List[float] = field(
        default_factory=_zero_bytes)
    class_max_queue_bytes: List[float] = field(default_factory=_zero_bytes)


class OutputPort:
    """One directed line-rate output queue."""

    __slots__ = ("sim", "name", "capacity", "buffer_bytes", "prop_delay",
                 "ecn_threshold", "phantom_drain", "phantom_threshold",
                 "stats", "_queues", "_queued_bytes", "_class_queued",
                 "_busy",
                 "_phantom_bytes", "_phantom_updated", "on_delivery",
                 "tracer", "depth_series", "_down", "_effective_capacity")

    def __init__(self, sim: Simulator, name: str, capacity: float,
                 buffer_bytes: float,
                 prop_delay: float = DEFAULT_PROP_DELAY,
                 ecn_threshold: Optional[float] = None,
                 phantom_drain: Optional[float] = None,
                 phantom_threshold: Optional[float] = None,
                 on_delivery: Optional[Callable[[Packet], None]] = None,
                 tracer=None):
        if capacity <= 0:
            raise ValueError("port capacity must be positive")
        if buffer_bytes <= 0:
            raise ValueError("port buffer must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.buffer_bytes = buffer_bytes
        self.prop_delay = prop_delay
        self.ecn_threshold = ecn_threshold
        self.phantom_drain = phantom_drain
        self.phantom_threshold = phantom_threshold
        self.stats = PortStats()
        self._queues: tuple = tuple(deque() for _ in range(N_CLASSES))
        self._queued_bytes = 0.0
        self._class_queued = [0.0] * N_CLASSES
        self._busy = False
        self._phantom_bytes = 0.0
        # The phantom queue's drain clock starts at the port's creation
        # time, not 0.0: a port built mid-run must not begin life with a
        # huge phantom drain credit window already elapsed.
        self._phantom_updated = sim.now
        # Fault-injection state (see set_fault_factor): a down port gives
        # zero-rate service -- arrivals are dropped, queued packets stay
        # put until repair; a degraded port serializes at a fraction of
        # line rate.  Healthy ports never touch either branch beyond one
        # flag test.
        self._down = False
        self._effective_capacity = capacity
        self.on_delivery = on_delivery
        #: Optional :class:`repro.obs.TraceSink` receiving pkt.* events.
        self.tracer = tracer
        #: Optional :class:`repro.obs.TimeSeries` recording queue depth
        #: (bytes) on every enqueue/dequeue/eviction.
        self.depth_series = None

    # -- enqueue path ------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Priority-aware drop-tail admission, ECN marking, transmission.

        A guaranteed-class packet arriving at a buffer filled by
        best-effort traffic pushes best-effort packets out (802.1q
        switches partition or push out across classes; plain shared
        drop-tail would let best-effort tenants inflict loss on
        guaranteed ones).

        Packets arriving at a *failed* port are dropped outright (a dead
        link delivers nothing), counted in ``stats.fault_drops`` rather
        than congestion ``drops``.
        """
        if self._down:
            self.stats.fault_drops += 1
            self.stats.fault_dropped_bytes += packet.size
            if self.tracer is not None:
                self.tracer.emit(PacketDrop(
                    time=self.sim.now, port=self.name, size=packet.size,
                    priority=packet.priority, reason="fault"))
            if packet.flow is not None:
                packet.flow.on_drop(packet)
            return
        if self._queued_bytes + packet.size > self.buffer_bytes:
            if packet.priority == 0:
                self._push_out_best_effort(packet.size)
            if self._queued_bytes + packet.size > self.buffer_bytes:
                self.stats.drops += 1
                self.stats.dropped_bytes += packet.size
                self.stats.class_drops[packet.priority] += 1
                self.stats.class_dropped_bytes[packet.priority] \
                    += packet.size
                if self.tracer is not None:
                    self.tracer.emit(PacketDrop(
                        time=self.sim.now, port=self.name,
                        size=packet.size, priority=packet.priority,
                        reason="tail"))
                if packet.flow is not None:
                    packet.flow.on_drop(packet)
                return
        self._queues[packet.priority].append(packet)
        self._queued_bytes += packet.size
        self._class_queued[packet.priority] += packet.size
        # Marking sees the queue the packet joins *including itself*:
        # DCTCP/HULL mark on the instantaneous occupancy at arrival, so
        # the packet that takes the queue past K is the first one marked.
        self._mark_if_needed(packet)
        if self._queued_bytes > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = self._queued_bytes
        if (self._class_queued[packet.priority]
                > self.stats.class_max_queue_bytes[packet.priority]):
            self.stats.class_max_queue_bytes[packet.priority] = \
                self._class_queued[packet.priority]
        if self.tracer is not None:
            self.tracer.emit(PacketEnqueue(
                time=self.sim.now, port=self.name, size=packet.size,
                priority=packet.priority, queued_bytes=self._queued_bytes))
        if self.depth_series is not None:
            self.depth_series.record(self.sim.now, self._queued_bytes)
        if not self._busy:
            self._transmit_next()

    def _push_out_best_effort(self, needed: float) -> None:
        """Evict queued best-effort packets to fit a guaranteed one.

        Evictions are class protection, not congestion loss: they land in
        ``stats.pushouts``, never in ``stats.drops``.
        """
        queue = self._queues[1]
        while queue and self._queued_bytes + needed > self.buffer_bytes:
            victim = queue.pop()
            self._queued_bytes -= victim.size
            self._class_queued[victim.priority] -= victim.size
            self.stats.pushouts += 1
            self.stats.pushed_out_bytes += victim.size
            self.stats.class_pushouts[victim.priority] += 1
            self.stats.class_pushed_out_bytes[victim.priority] \
                += victim.size
            if self.tracer is not None:
                self.tracer.emit(PacketDrop(
                    time=self.sim.now, port=self.name, size=victim.size,
                    priority=victim.priority, reason="pushout"))
            if victim.flow is not None:
                victim.flow.on_drop(victim)
        if self.depth_series is not None:
            self.depth_series.record(self.sim.now, self._queued_bytes)

    def _mark_if_needed(self, packet: Packet) -> None:
        if (self.ecn_threshold is not None
                and self._queued_bytes > self.ecn_threshold):
            packet.ecn = True
            self.stats.ecn_marks += 1
            if self.tracer is not None:
                self.tracer.emit(PacketMark(
                    time=self.sim.now, port=self.name, size=packet.size,
                    queue="queue", queued_bytes=self._queued_bytes))
        if self.phantom_drain is not None:
            now = self.sim.now
            drained = self.phantom_drain * (now - self._phantom_updated)
            self._phantom_bytes = max(0.0, self._phantom_bytes - drained)
            self._phantom_updated = now
            self._phantom_bytes += packet.size
            if (self.phantom_threshold is not None
                    and self._phantom_bytes > self.phantom_threshold):
                packet.ecn = True
                self.stats.ecn_marks += 1
                if self.tracer is not None:
                    self.tracer.emit(PacketMark(
                        time=now, port=self.name, size=packet.size,
                        queue="phantom",
                        queued_bytes=self._phantom_bytes))

    # -- transmit path -------------------------------------------------------

    def _transmit_next(self) -> None:
        if self._down:
            # Zero-rate service: the queue freezes (nothing is lost from
            # it) until set_fault_factor restores the port and re-kicks
            # transmission.
            self._busy = False
            return
        packet = None
        for queue in self._queues:
            if queue:
                packet = queue.popleft()
                break
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._queued_bytes -= packet.size
        self._class_queued[packet.priority] -= packet.size
        tx_time = packet.size / self._effective_capacity
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size
        self.stats.busy_time += tx_time
        if self.tracer is not None:
            self.tracer.emit(PacketTx(
                time=self.sim.now, port=self.name, size=packet.size,
                priority=packet.priority, queued_bytes=self._queued_bytes))
        if self.depth_series is not None:
            self.depth_series.record(self.sim.now, self._queued_bytes)
        self.sim.schedule(tx_time, self._transmit_done, packet)

    def _transmit_done(self, packet: Packet) -> None:
        self.sim.schedule(self.prop_delay, self._arrive_next_hop, packet)
        self._transmit_next()

    def _arrive_next_hop(self, packet: Packet) -> None:
        packet.advance()
        next_port = packet.next_port()
        if next_port is not None:
            next_port.enqueue(packet)
        elif self.on_delivery is not None:
            self.on_delivery(packet)

    # -- fault injection ----------------------------------------------------------

    def set_fault_factor(self, factor: float) -> None:
        """Apply a fault (or repair) to this port's service capacity.

        ``factor`` is the capacity multiplier: 0 takes the port down
        (arrivals dropped, queue frozen), values in ``(0, 1)`` degrade
        the serialization rate, 1 restores full health.  A packet
        already serializing finishes at the rate it started with -- it
        is on the wire; the new rate applies from the next packet.
        Restoring an idle port with queued packets resumes draining
        immediately.
        """
        if factor < 0 or factor > 1:
            raise ValueError("fault factor must be in [0, 1]")
        was_down = self._down
        self._down = factor <= 0.0
        if not self._down:
            self._effective_capacity = self.capacity * factor
        if was_down and not self._down and not self._busy:
            self._transmit_next()

    @property
    def is_down(self) -> bool:
        """Whether the port is failed (transmits nothing)."""
        return self._down

    @property
    def fault_factor(self) -> float:
        """Current capacity multiplier (0 when down)."""
        if self._down:
            return 0.0
        return self._effective_capacity / self.capacity

    # -- inspection ---------------------------------------------------------------

    @property
    def queued_bytes(self) -> float:
        """Bytes currently queued at the port."""
        return self._queued_bytes

    def class_queued_bytes(self, priority: int) -> float:
        """Bytes currently queued in one strict-priority traffic class."""
        return self._class_queued[priority]

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the port spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(self.stats.busy_time / elapsed, 1.0)

    def __repr__(self) -> str:
        return (f"OutputPort({self.name} "
                f"{units.to_gbps(self.capacity):.1f}Gbps "
                f"queued={self._queued_bytes:.0f}B)")
