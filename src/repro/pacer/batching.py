"""Paced IO batching: amortize per-batch CPU cost, keep pacing exact.

Disabling IO batching makes fine pacing trivial but costs so much CPU that
a 10 Gbps link cannot be saturated (section 4.3.1).  Silo instead pulls
~50 us worth of stamped packets at a time, expands them with void packets
(:mod:`repro.pacer.void_packets`) and hands each batch to the NIC; the next
batch is scheduled off the previous batch's DMA-completion interrupt (a
soft-timers trick), so the NIC never idles mid-burst yet no hardware timer
is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro import units
from repro.pacer.void_packets import VoidScheduler, WireSchedule, WireSlot


@dataclass
class Batch:
    """One NIC hand-off: a contiguous run of wire slots."""

    slots: List[WireSlot]
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Wire time the batch occupies."""
        return self.end_time - self.start_time

    @property
    def data_packets(self) -> int:
        """Number of data frames in the batch."""
        return sum(1 for s in self.slots if s.kind == "data")

    @property
    def void_packets(self) -> int:
        """Number of void frames in the batch."""
        return sum(1 for s in self.slots if s.kind == "void")


class PacedBatcher:
    """Carve a wire schedule into DMA batches of bounded duration.

    The batch window bounds NIC queuing delay: a packet handed over in one
    batch waits at most ``batch_window`` behind earlier slots of the same
    batch.  Each batch is triggered by the completion interrupt of its
    predecessor, i.e. ``batch[i+1].start >= batch[i].end``.
    """

    def __init__(self, link_rate: float,
                 batch_window: float = 50 * units.MICROS):
        if batch_window <= 0:
            raise ValueError("batch window must be positive")
        self.link_rate = link_rate
        self.batch_window = batch_window
        self._void_scheduler = VoidScheduler(link_rate,
                                             idle_threshold=batch_window)

    def build(self, packets: Sequence[Tuple[float, float]],
              payloads: Optional[Sequence[Any]] = None) -> List[Batch]:
        """Schedule stamped packets onto the wire and group into batches."""
        schedule = self._void_scheduler.schedule(packets, payloads)
        return self.carve(schedule)

    def carve(self, schedule: WireSchedule) -> List[Batch]:
        """Group an existing wire schedule into batches."""
        batches: List[Batch] = []
        current: List[WireSlot] = []
        batch_start = None
        for slot in schedule.slots:
            slot_end = slot.start_time + slot.wire_bytes / self.link_rate
            if batch_start is None:
                batch_start = slot.start_time
            if (slot_end - batch_start > self.batch_window and current):
                batches.append(Batch(slots=current, start_time=batch_start,
                                     end_time=current[-1].start_time
                                     + current[-1].wire_bytes
                                     / self.link_rate))
                current = []
                batch_start = slot.start_time
            current.append(slot)
        if current:
            batches.append(Batch(slots=current, start_time=batch_start,
                                 end_time=current[-1].start_time
                                 + current[-1].wire_bytes / self.link_rate))
        return batches
