"""Seeded fault schedules: determinism, spec grammar, replay clock."""

import json

import pytest

from repro import units
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    FaultTarget,
    eligible_targets,
)
from repro.topology import TreeTopology


def build_topology():
    return TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


class TestEligibleTargets:
    def test_covers_every_component_once(self):
        topo = build_topology()
        targets = eligible_targets(topo, ("link", "server", "switch"))
        specs = [t.spec for t in targets]
        assert len(specs) == len(set(specs))
        assert sum(s.startswith("link:") for s in specs) == len(topo.ports)
        assert sum(s.startswith("server:") for s in specs) == topo.n_servers
        # ToRs + aggs + one logical core.
        assert sum(s.startswith("switch:") for s in specs) == \
            topo.n_racks + topo.n_pods + 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            eligible_targets(build_topology(), ("disk",))


class TestPoisson:
    def test_same_seed_is_identical_different_seed_is_not(self):
        topo = build_topology()
        make = lambda seed: FaultSchedule.poisson(
            topo, mtbf=0.005, mttr=0.002, horizon=0.2, seed=seed).events
        assert make(7) == make(7)
        assert make(7) != make(8)

    def test_no_overlapping_faults_on_one_component(self):
        topo = build_topology()
        schedule = FaultSchedule.poisson(topo, mtbf=0.001, mttr=0.05,
                                         horizon=0.5, seed=3)
        impaired = set()
        for event in schedule:
            if event.action == "up":
                impaired.discard(event.target.spec)
            else:
                assert event.target.spec not in impaired
                impaired.add(event.target.spec)

    def test_events_are_time_sorted_and_within_horizon(self):
        topo = build_topology()
        schedule = FaultSchedule.poisson(topo, mtbf=0.002, mttr=0.001,
                                         horizon=0.1, seed=1)
        times = [e.time for e in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < 0.1 for t in times)

    def test_degrade_fraction_emits_partial_faults(self):
        topo = build_topology()
        schedule = FaultSchedule.poisson(topo, mtbf=0.002, mttr=0.001,
                                         horizon=0.2, seed=5,
                                         degrade_fraction=1.0)
        downs = [e for e in schedule if e.action != "up"]
        assert downs
        assert all(e.action == "degrade" and 0.1 <= e.factor <= 0.9
                   for e in downs)

    def test_bad_parameters_rejected(self):
        topo = build_topology()
        with pytest.raises(ValueError):
            FaultSchedule.poisson(topo, mtbf=0.0, mttr=1.0, horizon=1.0)
        with pytest.raises(ValueError):
            FaultSchedule.poisson(topo, mtbf=1.0, mttr=1.0, horizon=1.0,
                                  degrade_fraction=2.0)


class TestFromSpec:
    def test_none_and_empty_mean_no_faults(self):
        topo = build_topology()
        assert FaultSchedule.from_spec("none", topo, 1.0).is_empty
        assert FaultSchedule.from_spec("", topo, 1.0).is_empty

    def test_inline_poisson_matches_direct_construction(self):
        topo = build_topology()
        via_spec = FaultSchedule.from_spec(
            "poisson:mtbf_ms=5,mttr_ms=2,targets=link,degrade=0.5",
            topo, horizon=0.2, seed=9)
        direct = FaultSchedule.poisson(topo, mtbf=0.005, mttr=0.002,
                                       horizon=0.2, seed=9,
                                       target_kinds=("link",),
                                       degrade_fraction=0.5)
        assert via_spec.events == direct.events

    def test_unknown_poisson_key_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_spec("poisson:mtbf_ms=5,typo=1",
                                    build_topology(), 1.0)

    def test_json_events_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"events": [
            {"time": 0.01, "target": "server:2", "action": "down"},
            {"time": 0.02, "target": "server:2", "action": "up"},
            {"time": 0.015, "target": "link:3", "action": "degrade",
             "factor": 0.4},
        ]}))
        schedule = FaultSchedule.from_spec(str(path), build_topology(), 1.0)
        assert [e.time for e in schedule] == [0.01, 0.015, 0.02]
        assert schedule.events[1].factor == 0.4

    def test_json_poisson_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(
            {"poisson": {"mtbf_ms": 5, "mttr_ms": 2}}))
        topo = build_topology()
        schedule = FaultSchedule.from_spec(str(path), topo, horizon=0.2,
                                           seed=4)
        assert schedule.events == FaultSchedule.poisson(
            topo, mtbf=0.005, mttr=0.002, horizon=0.2, seed=4).events

    def test_json_without_known_key_rejected(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"faults": []}))
        with pytest.raises(ValueError):
            FaultSchedule.from_spec(str(path), build_topology(), 1.0)


class TestFaultClock:
    def test_pop_due_delivers_each_event_once_in_order(self):
        target = FaultTarget("link", 0)
        schedule = FaultSchedule.from_events([
            FaultEvent.down(0.5, target),
            FaultEvent.up(1.5, target),
            FaultEvent.down(2.5, target),
        ])
        clock = schedule.clock()
        assert clock.next_time() == 0.5
        assert [e.time for e in clock.pop_due(1.6)] == [0.5, 1.5]
        assert clock.next_time() == 2.5
        assert clock.pop_due(1.6) == []
        assert [e.time for e in clock.pop_due(10.0)] == [2.5]
        assert clock.exhausted
        assert clock.next_time() == float("inf")
