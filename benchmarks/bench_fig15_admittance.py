"""Fig. 15: admitted requests at moderate and high offered load.

A Poisson tenant stream (half class-A all-to-one, half class-B
permutation) offered identically to three placement policies at two load
levels (calibrated so the reserved policies sit near ~75% and ~90% mean
occupancy, the paper's operating points).

Reproduced claims:

* at moderate load every policy admits the large majority of tenants,
  and Silo's full (bandwidth + delay + burst) admission control costs
  only a few percent versus bandwidth-only Oktopus (the paper's "4%
  fewer accepted tenants");
* Silo rejects class-A at least as hard as class-B (delay is the scarce
  constraint);
* at high load everyone's admittance drops, and Silo stays within a few
  percent of Oktopus.

Documented deviation (see EXPERIMENTS.md): the paper additionally finds
locality-based placement admitting *less* than Silo at 90% occupancy,
an emergent effect of outlier tenants at 32K-server scale; at this
reproduction's 320-server scale, locality's work-conserving jobs finish
faster than reserved-rate jobs, so its measured occupancy -- and hence
rejection rate -- stays lower.  We report locality for comparison but do
not assert the paper's direction.
"""

import pytest

from repro.campaign import get_sweep, run_campaign
from repro.campaign.scenarios import POLICY_MANAGERS

from conftest import print_table, run_once

#: The grid (loads, policies, horizon, seed) is the registered ``fig15``
#: sweep -- one definition shared with ``python -m repro campaign``.
LOADS = ("moderate", "high")
POLICIES = tuple(POLICY_MANAGERS)


def compute():
    campaign = run_campaign(get_sweep("fig15"))
    return {(load, name): campaign.get(load=load, policy=name)
            for load in LOADS for name in POLICIES}


@pytest.mark.benchmark(group="fig15")
def test_fig15_admittance(benchmark):
    results = run_once(benchmark, compute)

    rows = []
    for load_label in LOADS:
        for name in POLICIES:
            r = results[(load_label, name)]
            rows.append([
                load_label, name,
                f"{r['total']:.1%}", f"{r['class_a']:.1%}",
                f"{r['class_b']:.1%}", f"{r['occupancy']:.1%}",
            ])
    print_table("Fig. 15: admitted requests by policy and load",
                ["load", "policy", "total", "class-A", "class-B",
                 "mean occupancy"], rows)

    low = {name: results[("moderate", name)] for name in POLICIES}
    high = {name: results[("high", name)] for name in POLICIES}
    # Moderate load: the large majority is admitted by every policy.
    assert low["locality"]["total"] > 0.95
    assert low["oktopus"]["total"] > 0.8
    assert low["silo"]["total"] > 0.8
    # Silo's extra constraints cost at most a few percent vs Oktopus
    # (the paper's "4% fewer accepted tenants" figure).
    assert low["silo"]["total"] >= low["oktopus"]["total"] - 0.06
    assert high["silo"]["total"] >= high["oktopus"]["total"] - 0.06
    # Silo rejects class-A at least as hard as class-B: delay is the
    # scarce resource (its placements are confined in the hierarchy).
    assert low["silo"]["class_a"] <= low["silo"]["class_b"] + 0.03
    # High load bites everyone.
    for name in POLICIES:
        assert high[name]["total"] < low[name]["total"]
