"""The reference (seed) fluid simulator, kept verbatim as an oracle.

:class:`~repro.flowsim.sim.ClusterSim` is event-driven: it keeps a
min-heap of predicted flow-finish and compute-end times and advances
flows lazily, so an event costs O(affected · log n).  This module
preserves the original O(total flows)-per-event implementation --
rescan every flow of every job to find ``t_next``, then advance every
fluid -- exactly as it shipped in the seed.

It exists as a cross-check: the property tests in
``tests/flowsim/test_sim_equivalence.py`` and
``benchmarks/bench_hotpaths.py`` run both simulators over identical
workloads and assert the resulting :class:`ClusterStats` agree
(``finished_jobs`` exactly; ``carried_bytes``/``job_durations`` to
1e-6 relative).  Do not optimise this file; optimise ``sim.py`` and
prove it here.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.flowsim.job import FlowState, TenantJob
from repro.flowsim.sim import _SHARING, _TIME_EPS, ClusterStats
from repro.flowsim.workload import TenantArrival, TenantWorkload
from repro.maxmin import max_min_fair_reference as max_min_fair
from repro.pacer.eyeq import allocate_hose_rates
from repro.placement.base import PlacementManager


class ReferenceClusterSim:
    """Fluid simulation of tenant churn: the seed implementation."""

    def __init__(self, manager: PlacementManager, sharing: str = "reserved",
                 utilization_links: str = "all"):
        """``utilization_links`` may be "all" or "used" (denominator)."""
        if sharing not in _SHARING:
            raise ValueError(f"sharing must be one of {_SHARING}")
        self.manager = manager
        self.topology = manager.topology
        self.sharing = sharing
        self.utilization_links = utilization_links
        self.jobs: Dict[int, TenantJob] = {}
        self.stats = ClusterStats()
        self._link_capacity: Dict[int, float] = {
            port.port_id: port.capacity for port in self.topology.ports}
        self._rates_dirty = True

    # -- admission -------------------------------------------------------------

    def _admit(self, arrival: TenantArrival, now: float) -> bool:
        placement = self.manager.place(arrival.request)
        if placement is None:
            return False
        flows = self._build_flows(arrival, placement.vm_servers)
        job = TenantJob(request=arrival.request, placement=placement,
                        flows=flows, compute_time=arrival.compute_time,
                        arrival=now)
        self.jobs[arrival.request.tenant_id] = job
        if self.sharing == "reserved":
            self._assign_reserved_rates(job)
        else:
            self._rates_dirty = True
        return True

    def _build_flows(self, arrival: TenantArrival,
                     vm_servers: List[int]) -> List[FlowState]:
        flows = []
        for src_idx, dst_idx in arrival.pairs:
            src_server = vm_servers[src_idx]
            dst_server = vm_servers[dst_idx]
            links = tuple(p.port_id for p in
                          self.topology.path_ports(src_server, dst_server))
            flows.append(FlowState(
                tenant_id=arrival.request.tenant_id, src_vm=src_idx,
                dst_vm=dst_idx, links=links,
                remaining=max(arrival.flow_bytes, 1.0)))
        return flows

    def _assign_reserved_rates(self, job: TenantJob) -> None:
        """Hose-model split of the tenant's own guarantee (no sharing).

        Best-effort jobs (no guarantee) are handled dynamically instead:
        they share the *residual* capacity max-min (section 4.4's
        low-priority class), recomputed as guaranteed tenants come and
        go.
        """
        guarantee = job.request.guarantee
        if guarantee is None:
            self._rates_dirty = True
            return
        demands = {(f.src_vm, f.dst_vm): math.inf for f in job.flows}
        hoses = {vm: guarantee.bandwidth
                 for f in job.flows for vm in (f.src_vm, f.dst_vm)}
        rates = allocate_hose_rates(demands, hoses)
        for flow in job.flows:
            flow.rate = max(rates[(flow.src_vm, flow.dst_vm)], 1.0)
        if any(j.request.guarantee is None for j in self.jobs.values()):
            # The residual capacity changed under the best-effort class.
            self._rates_dirty = True

    def _recompute_best_effort(self) -> None:
        """Max-min share the residual capacity among best-effort flows.

        Residual capacity per port is line rate minus the placement
        manager's current bandwidth reservations (the 802.1q split: the
        low-priority class sees only what the guaranteed class leaves).
        """
        flows = {}
        index = {}
        for job in self.jobs.values():
            if job.request.guarantee is not None:
                continue
            for i, flow in enumerate(job.flows):
                if flow.done:
                    continue
                if not flow.links:
                    flow.rate = self.topology.link_rate
                    continue
                key = (job.tenant_id, i)
                flows[key] = (flow.links, math.inf)
                index[key] = flow
        if not flows:
            self._rates_dirty = False
            return
        residual = {}
        for port_id, capacity in self._link_capacity.items():
            reserved = self.manager.states[port_id].bandwidth
            # Leave the best-effort class a sliver even on a fully
            # reserved port, as real low-priority queues drain whenever
            # the guaranteed class pauses.
            residual[port_id] = max(capacity - reserved, 0.01 * capacity)
        rates = max_min_fair(flows, residual)
        for key, flow in index.items():
            flow.rate = max(rates[key], 0.0)
        self._rates_dirty = False

    # -- max-min sharing -------------------------------------------------------------

    def _recompute_maxmin(self) -> None:
        flows = {}
        index = {}
        for job in self.jobs.values():
            for i, flow in enumerate(job.flows):
                if flow.done:
                    continue
                if not flow.links:
                    # Intra-server flow: bounded by the vswitch, modelled
                    # at NIC line rate.
                    flow.rate = self.topology.link_rate
                    continue
                key = (job.tenant_id, i)
                flows[key] = (flow.links, math.inf)
                index[key] = flow
        if not flows:
            self._rates_dirty = False
            return
        rates = max_min_fair(flows, self._link_capacity)
        for key, flow in index.items():
            flow.rate = max(rates[key], 0.0)
        self._rates_dirty = False

    # -- main loop -----------------------------------------------------------------

    def run(self, workload: TenantWorkload, until: float) -> ClusterStats:
        """Drive the simulation to ``until`` seconds of virtual time."""
        arrivals = iter(workload.arrivals(until))
        pending = next(arrivals, None)
        now = 0.0
        total_capacity = sum(self._link_capacity.values())

        while now < until:
            if self._rates_dirty:
                if self.sharing == "maxmin":
                    self._recompute_maxmin()
                else:
                    self._recompute_best_effort()
            # Earliest next event.
            t_next = until
            if pending is not None:
                t_next = min(t_next, pending.time)
            for job in self.jobs.values():
                compute_end = job.arrival + job.compute_time
                if job.network_done:
                    t_next = min(t_next, max(compute_end, now))
                    continue
                for flow in job.flows:
                    if not flow.done and flow.rate > 0:
                        # Clamp to nanosecond granularity so time always
                        # advances even when remaining/rate underflows
                        # relative to ``now``.
                        finish_dt = max(flow.remaining / flow.rate, 1e-9)
                        t_next = min(t_next, now + finish_dt)
            t_next = max(t_next, now)
            dt = t_next - now
            # Advance fluids and accounting.
            if dt > 0:
                for job in self.jobs.values():
                    for flow in job.flows:
                        if flow.done or flow.rate <= 0:
                            continue
                        moved = min(flow.remaining, flow.rate * dt)
                        flow.remaining -= moved
                        self.stats.carried_bytes += moved * len(flow.links)
                        if flow.done:
                            # A drained flow frees its share for others.
                            self._rates_dirty = True
                self.stats.occupancy_integral += (
                    self.manager.occupancy * dt)
                self.stats.link_capacity_seconds += total_capacity * dt
            now = t_next
            # Arrivals at (or before) now.
            while pending is not None and pending.time <= now + _TIME_EPS:
                self._admit(pending, now)
                pending = next(arrivals, None)
            # Completions.
            finished = [t for t, job in self.jobs.items()
                        if job.network_done
                        and now + _TIME_EPS
                        >= job.arrival + job.compute_time]
            for tenant_id in finished:
                job = self.jobs.pop(tenant_id)
                job.finish = now
                self.stats.finished_jobs += 1
                self.stats.job_durations.append(job.duration)
                self.stats.durations_by_tenant[tenant_id] = job.duration
                self.manager.remove(tenant_id)
                self._rates_dirty = True
            if dt <= 0 and pending is None and not finished:
                # No progress possible: only compute timers remain.
                remaining_ends = [job.arrival + job.compute_time
                                  for job in self.jobs.values()
                                  if not (job.network_done and
                                          job.arrival + job.compute_time
                                          <= now)]
                blocked = [f for job in self.jobs.values()
                           for f in job.flows
                           if not f.done and f.rate <= 0]
                if not remaining_ends and not blocked:
                    break
                if blocked and not remaining_ends:
                    raise RuntimeError(
                        "flows stuck with zero rate; sharing policy bug")
        self.stats.elapsed = now
        return self.stats
