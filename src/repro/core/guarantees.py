"""Silo's per-VM network guarantee ``{B, S, d}`` plus burst rate ``Bmax``.

Section 4.1 of the paper: every VM of a tenant is attached to a virtual
switch by a link of bandwidth ``B`` and one-way delay ``d/2``, and its
traffic is shaped by a token bucket of size ``S`` draining at up to
``Bmax``.  From these a tenant can compute the worst-case latency of any
message between its VMs without knowing anything about other tenants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro import units


@dataclass(frozen=True)
class NetworkGuarantee:
    """The network capabilities of one VM: ``{B, S, d}`` and ``Bmax``.

    Attributes:
        bandwidth: guaranteed average rate ``B`` (bytes/second, hose model).
        burst: burst allowance ``S`` (bytes); a VM that has under-used its
            bandwidth may send this much above ``B``.
        delay: guaranteed NIC-to-NIC packet delay ``d`` (seconds) for
            bandwidth-compliant packets; ``None`` for tenants that need only
            bandwidth (the paper's class-B tenants).
        peak_rate: maximum rate ``Bmax`` at which a burst may be sent
            (bytes/second); defaults to ``bandwidth`` when not set, i.e. no
            bursting above the average rate.
    """

    bandwidth: float
    burst: float = units.MTU
    delay: Optional[float] = None
    peak_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("guaranteed bandwidth must be positive")
        if self.burst < 0:
            raise ValueError("burst allowance must be >= 0")
        if self.delay is not None and self.delay <= 0:
            raise ValueError("delay guarantee must be positive")
        if self.peak_rate is not None and self.peak_rate < self.bandwidth:
            raise ValueError("Bmax must be at least the bandwidth guarantee")

    @property
    def effective_peak_rate(self) -> float:
        """``Bmax``, falling back to ``B`` when bursting is not allowed."""
        return self.peak_rate if self.peak_rate is not None else self.bandwidth

    @property
    def wants_delay(self) -> bool:
        """True when the tenant asked for a packet-delay guarantee."""
        return self.delay is not None

    def message_latency_bound(self, message_size: float) -> float:
        """Worst-case latency of one message of ``message_size`` bytes.

        See :func:`message_latency_bound`; requires a delay guarantee.
        """
        if self.delay is None:
            raise ValueError(
                "latency bounds need a delay guarantee; this tenant has none")
        return message_latency_bound(
            message_size,
            bandwidth=self.bandwidth,
            burst=self.burst,
            delay=self.delay,
            peak_rate=self.effective_peak_rate,
        )


def message_latency_bound(message_size: float, bandwidth: float,
                          burst: float, delay: float,
                          peak_rate: Optional[float] = None) -> float:
    """The paper's latency guarantee for a message of ``M`` bytes.

    With a fresh burst allowance (section 4.1):

    * ``M <= S``: the whole message rides the burst, latency is at most
      ``M / Bmax + d``;
    * ``M > S``: the first ``S`` bytes go at ``Bmax``, the remainder at the
      guaranteed bandwidth: ``S / Bmax + (M - S) / B + d``.
    """
    if message_size <= 0:
        raise ValueError("message size must be positive")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if delay < 0:
        raise ValueError("delay must be >= 0")
    peak = bandwidth if peak_rate is None else peak_rate
    if peak < bandwidth:
        raise ValueError("peak rate must be at least the bandwidth")
    if message_size <= burst:
        return message_size / peak + delay
    return burst / peak + (message_size - burst) / bandwidth + delay


def transmission_latency(message_size: float, bandwidth: float) -> float:
    """Equation 1's transmission-delay component: ``M / B``."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return message_size / bandwidth


def required_bandwidth(message_size: float, deadline: float,
                       delay: float = 0.0) -> float:
    """Bandwidth needed to finish ``M`` bytes within ``deadline`` seconds.

    Inverts equation 1: ``B = M / (deadline - d)``.  Returns ``math.inf``
    when the deadline is not achievable at any bandwidth (deadline <= d).
    """
    if message_size <= 0:
        raise ValueError("message size must be positive")
    slack = deadline - delay
    if slack <= 0:
        return math.inf
    return message_size / slack


#: Convenience presets mirroring the paper's evaluation (Table 3).
CLASS_A_GUARANTEE = NetworkGuarantee(
    bandwidth=units.gbps(0.25),
    burst=15 * units.KB,
    delay=1000 * units.MICROS,
    peak_rate=units.gbps(1.0),
)

CLASS_B_GUARANTEE = NetworkGuarantee(
    bandwidth=units.gbps(2.0),
    burst=1.5 * units.KB,
    delay=None,
    peak_rate=None,
)
