"""Best-effort tenants on residual capacity in the fluid simulator."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.flowsim import ClusterSim
from repro.flowsim.workload import TenantArrival
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology


def topo():
    return TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10))


class StaticWorkload:
    def __init__(self, items):
        self._items = items

    def arrivals(self, until):
        return iter([a for a in self._items if a.time < until])


def guaranteed_arrival(bandwidth=units.gbps(2), flow_bytes=100 * units.MB):
    request = TenantRequest(
        n_vms=8,
        guarantee=NetworkGuarantee(bandwidth=bandwidth,
                                   burst=1.5 * units.KB),
        tenant_class=TenantClass.CLASS_B)
    return TenantArrival(time=0.0, request=request, pairs=[(0, 7)],
                         flow_bytes=flow_bytes, compute_time=0.0)


def best_effort_arrival(flow_bytes=100 * units.MB, time=0.0):
    request = TenantRequest(n_vms=8, guarantee=None,
                            tenant_class=TenantClass.BEST_EFFORT)
    return TenantArrival(time=time, request=request, pairs=[(0, 7)],
                         flow_bytes=flow_bytes, compute_time=0.0)


class TestBestEffortSharing:
    def test_best_effort_gets_residual(self):
        manager = SiloPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        g = guaranteed_arrival(bandwidth=units.gbps(4))
        be = best_effort_arrival()
        stats = sim.run(StaticWorkload([g, be]), until=60.0)
        assert stats.finished_jobs == 2
        # The guaranteed job ran at its hose rate, untouched.
        g_duration = stats.durations_by_tenant[g.request.tenant_id]
        assert g_duration == pytest.approx(
            100 * units.MB / units.gbps(4), rel=0.05)
        # The best-effort job also finished, on residual capacity.
        assert be.request.tenant_id in stats.durations_by_tenant

    def test_best_effort_never_slows_guaranteed(self):
        manager = SiloPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        g = guaranteed_arrival(bandwidth=units.gbps(2))
        stats_alone = sim.run(StaticWorkload([g]), until=60.0)
        alone = stats_alone.job_durations[0]

        manager2 = SiloPlacementManager(topo())
        sim2 = ClusterSim(manager2, sharing="reserved")
        g2 = guaranteed_arrival(bandwidth=units.gbps(2))
        stats_shared = sim2.run(
            StaticWorkload([g2, best_effort_arrival(),
                            best_effort_arrival()]), until=60.0)
        shared = stats_shared.durations_by_tenant[g2.request.tenant_id]
        assert shared == pytest.approx(alone, rel=0.02)

    def test_best_effort_raises_utilization(self):
        manager = SiloPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        stats_alone = sim.run(StaticWorkload([guaranteed_arrival()]),
                              until=30.0)

        manager2 = SiloPlacementManager(topo())
        sim2 = ClusterSim(manager2, sharing="reserved")
        stats_mixed = sim2.run(
            StaticWorkload([guaranteed_arrival(),
                            best_effort_arrival(400 * units.MB)]),
            until=30.0)
        assert (stats_mixed.network_utilization
                > stats_alone.network_utilization)

    def test_best_effort_squeezed_by_reservations(self):
        """A best-effort flow crossing a heavily reserved port gets only
        the residual rate."""
        def be_duration(with_guaranteed):
            # One rack of four servers, so the fat tenant's reservations
            # blanket every NIC the BE tenant can use.
            manager = SiloPlacementManager(
                TreeTopology(n_pods=1, racks_per_pod=1,
                             servers_per_rack=4, slots_per_server=4,
                             link_rate=units.gbps(10)))
            sim = ClusterSim(manager, sharing="reserved")
            be = best_effort_arrival()
            items = [be]
            if with_guaranteed:
                # 4 Gbps hoses, two VMs per server: 8 of the 10 Gbps
                # reserved at every NIC, ~2 Gbps residual.
                fat = TenantRequest(
                    n_vms=8,
                    guarantee=NetworkGuarantee(
                        bandwidth=units.gbps(4),
                        burst=1.5 * units.KB),
                    tenant_class=TenantClass.CLASS_B)
                items.insert(0, TenantArrival(
                    time=0.0, request=fat,
                    pairs=[(i, (i + 1) % 8) for i in range(8)],
                    flow_bytes=4000 * units.MB, compute_time=0.0))
            stats = sim.run(StaticWorkload(items), until=500.0)
            return stats.durations_by_tenant[be.request.tenant_id]

        fast = be_duration(False)
        slow = be_duration(True)
        # Reservations on the shared ports squeeze the BE flow hard.
        assert slow > 3 * fast
