"""The fluid cluster simulator (section 6.3's experiments).

Drives a placement manager with a tenant stream and evolves flows as
fluids between events (arrivals, flow completions, compute expirations).
Two sharing policies:

* ``reserved`` -- Silo / Oktopus: per-flow rates are the tenant's hose
  split, fixed at admission, never shared across tenants;
* ``maxmin`` -- ideal TCP under locality placement: global max-min fair
  share over the tree's link capacities, recomputed at every event.

The simulator is event-driven, on the shared event core: clock,
tie-breaking sequence numbers, fault clock, and trace sink all come
from an owned :class:`repro.core.engine.EventEngine` (the same core
that drives the packet network).  Each flow's ``remaining`` is advanced
*lazily*: between rate changes it evolves linearly, so its finish time
is known the moment its rate is set and is kept in a min-heap alongside
job compute-end timers.  Rate changes invalidate a flow's scheduled
finish by bumping its epoch; stale heap entries are discarded on pop.
Carried bytes are integrated from an aggregate carried-rate sum rather
than per flow.  An event therefore costs O(affected flows · log n)
instead of the O(total flows) rescan of the original implementation,
which is preserved verbatim as
:class:`repro.flowsim.reference.ReferenceClusterSim` and asserted
equivalent by the property tests and ``benchmarks/bench_hotpaths.py``.

Two further mechanisms carry the simulator to the paper's 32K-server
scale:

* shared rates come from a persistent
  :class:`repro.maxmin.IncrementalMaxMin` -- an arrival or drain
  re-waterfills only the connected component of the flow-link graph it
  touched, and only the flows whose rate actually changed are re-set;
* mutable flow state (``remaining``/``rate``/``updated``) lives in a
  columnar :class:`repro.flowsim.job.FlowTable`, so batch rate
  assignment and ``_materialize``-style advancement are numpy array
  operations, with finish events heapified per recompute instead of
  pushed per flow.

Both are bit-compatible with the scalar path (numpy element-wise float64
arithmetic is IEEE double arithmetic, and every accumulator keeps its
sequential update order), so existing campaign artifacts stay
byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import EventEngine
from repro.core.tenant import TenantClass, TenantRequest
from repro.faults.model import FaultEvent
from repro.faults.schedule import FaultClock, FaultSchedule
from repro.flowsim.job import FlowState, FlowTable, TenantJob
from repro.flowsim.workload import TenantArrival, TenantWorkload
from repro.maxmin import IncrementalMaxMin
from repro.obs.events import FaultInjected, FlowFinish, FlowStart
from repro.pacer.eyeq import allocate_hose_rates
from repro.placement.base import PlacementManager
from repro.placement.controller import OUTCOME_EVICTED, ClusterController

_SHARING = ("reserved", "maxmin")

#: Flows count as drained below this many bytes (matches
#: :attr:`FlowState.done`).
_DONE_EPS = 1e-6
#: Event-time slop, matching the reference loop's arrival/completion slop.
_TIME_EPS = 1e-12
#: Rate batches below this size take the scalar ``_set_rate`` path; the
#: numpy fan-out only pays for itself on bulk recomputes.
_BATCH_MIN = 16


@dataclass
class ClusterStats:
    """Counters of one cluster run."""

    finished_jobs: int = 0
    carried_bytes: float = 0.0
    link_capacity_seconds: float = 0.0
    occupancy_integral: float = 0.0
    elapsed: float = 0.0
    job_durations: List[float] = field(default_factory=list)
    durations_by_tenant: Dict[int, float] = field(default_factory=dict)
    #: Jobs killed by faults (tenant evicted with no feasible re-place).
    evicted_jobs: int = 0
    #: Jobs whose flows were moved onto a new placement after a fault.
    rerouted_jobs: int = 0
    #: Highest number of simultaneously undrained flows (``ClusterSim``
    #: only; the reference simulator leaves it 0).
    peak_concurrent_flows: int = 0

    @property
    def network_utilization(self) -> float:
        """Bytes carried over total link capacity-seconds."""
        if self.link_capacity_seconds <= 0:
            return 0.0
        return self.carried_bytes / self.link_capacity_seconds

    @property
    def mean_occupancy(self) -> float:
        """Time-averaged slot occupancy over the run."""
        if self.elapsed <= 0:
            return 0.0
        return self.occupancy_integral / self.elapsed


class ClusterSim:
    """Fluid simulation of tenant churn over a placement manager."""

    def __init__(self, manager: PlacementManager, sharing: str = "reserved",
                 utilization_links: str = "all", tracer=None,
                 faults: Optional[FaultSchedule] = None,
                 controller: Optional[ClusterController] = None):
        """``utilization_links`` may be "all" or "used" (denominator).

        ``faults`` attaches a :class:`repro.faults.FaultSchedule`: its
        events are folded into the run loop's next-event search, effective
        link capacities are scaled by the composed health state, and a
        :class:`~repro.placement.controller.ClusterController` (an
        implicit one with ``retry_evicted=False`` unless ``controller``
        is given -- a killed job cannot resurrect) re-places affected
        tenants.  Re-placed tenants' jobs continue on the new paths (live
        migration semantics); evicted tenants' jobs are killed.  With no
        schedule attached the fault path costs one ``is None`` test per
        loop iteration.
        """
        if sharing not in _SHARING:
            raise ValueError(f"sharing must be one of {_SHARING}")
        self.manager = manager
        #: The shared event core (:class:`repro.core.engine.EventEngine`):
        #: owns the clock, the tie-breaking sequence numbers, the attached
        #: fault clock, and the trace sink.  The simulator keeps its
        #: specialized epoch-invalidated heaps (stale finish predictions
        #: are discarded on pop, which the generic queue has no reason to
        #: know about) but draws all four shared facilities from here.
        self.engine = EventEngine(tracer=tracer)
        #: Optional :class:`repro.obs.TimeSeries` of aggregate link
        #: utilization; attach via :meth:`monitor_utilization`.
        self.utilization_series = None
        self.topology = manager.topology
        self.sharing = sharing
        self.utilization_links = utilization_links
        self.jobs: Dict[int, TenantJob] = {}
        self.stats = ClusterStats()
        self._link_capacity: Dict[int, float] = {
            port.port_id: port.capacity for port in self.topology.ports}
        self._rates_dirty = True
        # -- incremental sharing ----------------------------------------------
        #: Columnar storage for every live flow's mutable fluid state.
        self._flow_table = FlowTable()
        #: Persistent max-min solver over the full link capacities
        #: ("maxmin" sharing only).
        self._mm_solver: Optional[IncrementalMaxMin] = None
        if sharing == "maxmin":
            self._mm_solver = IncrementalMaxMin(self._link_capacity)
        #: Persistent max-min solver over *residual* capacities for the
        #: best-effort class under "reserved" sharing; created at the
        #: first best-effort admission.
        self._be_solver: Optional[IncrementalMaxMin] = None
        #: ``manager.reservation_version`` at the last residual rebuild
        #: (None forces a rebuild, e.g. after a fault rescales links).
        self._residual_version: Optional[int] = None
        #: solver key -> flow, for applying changed rates.
        self._solver_flows: Dict[Tuple[int, int], FlowState] = {}
        #: Intra-server flows admitted since the last recompute; they get
        #: NIC line rate at the next recompute, exactly where the full
        #: rebuild used to assign it.
        self._pending_linkless: List[FlowState] = []
        #: Actual rate changes applied (epoch bumps); no-op updates are
        #: skipped and do not count.
        self.rate_update_count = 0
        self._live_flows = 0
        # -- event heaps ------------------------------------------------------
        # Tie-breaking sequence numbers come from ``self.engine.next_seq``
        # so these heaps share one total order with engine-queued events.
        # (finish_time, seq, epoch, flow): valid iff epoch == flow.epoch.
        self._flow_events: List[Tuple[float, int, int, FlowState]] = []
        # (compute_end, seq, tenant_id): pushed once network traffic drains.
        self._job_events: List[Tuple[float, int, int]] = []
        #: sum(rate * hops) over running flows -- carried bytes integrate
        #: from this instead of per-flow advances.
        self._carried_rate = 0.0
        self._active_flows: Dict[int, int] = {}  # tenant -> undrained flows
        self._admit_order: Dict[int, int] = {}   # tenant -> admission seq
        self._n_admitted = 0
        self._n_best_effort = 0
        self._ready: List[int] = []  # jobs finishable at the current time
        #: Optional per-port used-rate recorder (duck-typed; see
        #: :class:`repro.hybrid.recorder.PortUsageRecorder`); attach via
        #: :meth:`monitor_port_usage`.  ``None`` keeps the hot paths at
        #: one ``is None`` test per actual rate change.
        self._port_usage = None
        # -- fault injection --------------------------------------------------
        # The schedule attaches to the engine as a cursor (the
        # loop-consumer style); the local reference only saves an
        # attribute hop in the run loop.
        self.engine.attach_fault_clock(faults)
        self._fault_clock: Optional[FaultClock] = self.engine.fault_clock
        self.controller: Optional[ClusterController] = None
        self._base_capacity: Dict[int, float] = {}
        self._down_ports: frozenset = frozenset()
        if self._fault_clock is not None or controller is not None:
            self.controller = (controller if controller is not None
                               else ClusterController(manager, tracer=tracer,
                                                      retry_evicted=False))
            self._base_capacity = dict(self._link_capacity)

    def monitor_utilization(self, interval: float,
                            reservoir_size: int = 0):
        """Attach a :class:`repro.obs.TimeSeries` sampling aggregate link
        utilization (carried rate over total capacity) and return it."""
        from repro.obs import TimeSeries
        self.utilization_series = TimeSeries(
            name="utilization", interval=interval,
            reservoir_size=reservoir_size)
        return self.utilization_series

    def monitor_port_usage(self, ports):
        """Attach a per-port used-rate recorder over ``ports`` and return it.

        Records a ``(time, used_rate)`` breakpoint on every actual rate
        change touching a watched port -- the residual-capacity feed of
        the hybrid-fidelity simulation (see :mod:`repro.hybrid`).  Watch
        only the ports you need: the hot-path cost is one membership
        test per watched-flow rate change, and zero when detached.
        """
        from repro.hybrid.recorder import PortUsageRecorder
        self._port_usage = PortUsageRecorder(ports)
        return self._port_usage

    @property
    def tracer(self):
        """Optional :class:`repro.obs.TraceSink` receiving ``flow.start``
        / ``flow.finish`` events (plus the manager's admission events
        when the manager shares this tracer); owned by :attr:`engine`."""
        return self.engine.tracer

    @tracer.setter
    def tracer(self, sink) -> None:
        """Point the shared engine (and so every consumer) at ``sink``."""
        self.engine.tracer = sink

    @property
    def now(self) -> float:
        """Current virtual time, read from the shared engine clock."""
        return self.engine.now

    # -- admission -------------------------------------------------------------

    def _admit(self, arrival: TenantArrival, now: float) -> bool:
        placement = self.manager.place(arrival.request, now=now)
        if placement is None:
            return False
        flows = self._build_flows(arrival, placement.vm_servers)
        tracer = self.tracer
        for flow in flows:
            flow.updated = now
            if tracer is not None:
                tracer.emit(FlowStart(
                    time=now, tenant_id=flow.tenant_id, src=flow.src_vm,
                    dst=flow.dst_vm, size=flow.remaining))
        job = TenantJob(request=arrival.request, placement=placement,
                        flows=flows, compute_time=arrival.compute_time,
                        arrival=now)
        tenant_id = arrival.request.tenant_id
        self.jobs[tenant_id] = job
        self._admit_order[tenant_id] = self._n_admitted
        self._n_admitted += 1
        if arrival.request.guarantee is None:
            self._n_best_effort += 1
        active = sum(1 for flow in flows if not flow.done)
        self._active_flows[tenant_id] = active
        self._live_flows += active
        if self._live_flows > self.stats.peak_concurrent_flows:
            self.stats.peak_concurrent_flows = self._live_flows
        if active == 0:
            self._schedule_compute_end(job, now)
        if self.sharing == "reserved":
            self._assign_reserved_rates(job, now)
            if arrival.request.guarantee is None:
                self._register_shared_flows(job)
        else:
            self._register_shared_flows(job)
            self._rates_dirty = True
        return True

    def _register_shared_flows(self, job: TenantJob) -> None:
        """Enter a job's flows into the incremental sharing solver."""
        solver = self._mm_solver
        if solver is None:
            if self._be_solver is None:
                self._be_solver = IncrementalMaxMin()
                self._refresh_residual(force=True)
            solver = self._be_solver
        tenant_id = job.tenant_id
        for i, flow in enumerate(job.flows):
            key = (tenant_id, i)
            flow.key = key
            if flow.links:
                solver.add_flow(key, flow.links, math.inf)
                self._solver_flows[key] = flow
            else:
                self._pending_linkless.append(flow)

    def _solver_discard(self, flow: FlowState) -> None:
        """Drop a drained/killed flow from its sharing solver, if any."""
        key = flow.key
        if key is None:
            return
        solver = (self._mm_solver if self._mm_solver is not None
                  else self._be_solver)
        if solver is not None and key in solver:
            solver.remove_flow(key)
            del self._solver_flows[key]

    def _build_flows(self, arrival: TenantArrival,
                     vm_servers: List[int]) -> List[FlowState]:
        flows = []
        for src_idx, dst_idx in arrival.pairs:
            src_server = vm_servers[src_idx]
            dst_server = vm_servers[dst_idx]
            links = tuple(p.port_id for p in
                          self.topology.path_ports(src_server, dst_server))
            flows.append(FlowState(
                tenant_id=arrival.request.tenant_id, src_vm=src_idx,
                dst_vm=dst_idx, links=links,
                remaining=max(arrival.flow_bytes, 1.0)))
        table = self._flow_table
        for flow in flows:
            table.adopt(flow)
        return flows

    def _assign_reserved_rates(self, job: TenantJob, now: float) -> None:
        """Hose-model split of the tenant's own guarantee (no sharing).

        Best-effort jobs (no guarantee) are handled dynamically instead:
        they share the *residual* capacity max-min (section 4.4's
        low-priority class), recomputed as guaranteed tenants come and
        go.
        """
        guarantee = job.request.guarantee
        if guarantee is None:
            self._rates_dirty = True
            return
        demands = {(f.src_vm, f.dst_vm): math.inf for f in job.flows}
        hoses = {vm: guarantee.bandwidth
                 for f in job.flows for vm in (f.src_vm, f.dst_vm)}
        rates = allocate_hose_rates(demands, hoses)
        for flow in job.flows:
            flow.nominal_rate = max(rates[(flow.src_vm, flow.dst_vm)], 1.0)
            self._set_rate(flow, self._reserved_rate(flow), now)
        if self._n_best_effort:
            # The residual capacity changed under the best-effort class.
            self._rates_dirty = True

    def _refresh_residual(self, force: bool = False) -> None:
        """Sync the best-effort solver's residual capacity map.

        Residual capacity per port is line rate minus the placement
        manager's current bandwidth reservations (the 802.1q split: the
        low-priority class sees only what the guaranteed class leaves).
        The map is cached against ``manager.reservation_version`` and
        rebuilt only when reservations (or, via ``force``/a cleared
        version, effective link capacities) actually changed.
        """
        version = self.manager.reservation_version
        if not force and version == self._residual_version:
            return
        solver = self._be_solver
        states = self.manager.states
        for port_id, capacity in self._link_capacity.items():
            reserved = states[port_id].bandwidth
            # Leave the best-effort class a sliver even on a fully
            # reserved port, as real low-priority queues drain whenever
            # the guaranteed class pauses.
            solver.set_capacity(port_id,
                                max(capacity - reserved, 0.01 * capacity))
        self._residual_version = version

    def _recompute_best_effort(self, now: float) -> None:
        """Max-min share the residual capacity among best-effort flows."""
        if not self._n_best_effort:
            # No best-effort jobs anywhere: guaranteed rates are fixed at
            # admission, nothing to recompute.
            self._rates_dirty = False
            return
        if self._pending_linkless:
            self._flush_pending_linkless(now)
        solver = self._be_solver
        if solver is not None and len(solver):
            self._refresh_residual()
            changed = solver.recompute()
            if changed:
                self._apply_rates(changed, now)
        self._rates_dirty = False

    def _reserved_rate(self, flow: FlowState) -> float:
        """The flow's reserved rate, capped by its weakest effective link.

        Without faults this is exactly the nominal hose split (one dict
        test).  Under faults, a down link pins the flow at zero and a
        degraded link caps it at the scaled capacity -- a fluid
        approximation (concurrent reserved flows on a degraded link may
        sum past it), which errs toward optimism for the *faulted*
        interval only.
        """
        rate = flow.nominal_rate
        if not self._base_capacity:
            return rate
        for port_id in flow.links:
            capacity = self._link_capacity[port_id]
            if capacity < rate:
                rate = capacity
        return rate

    # -- max-min sharing -------------------------------------------------------------

    def _recompute_maxmin(self, now: float) -> None:
        if self._pending_linkless:
            self._flush_pending_linkless(now)
        changed = self._mm_solver.recompute()
        if changed:
            self._apply_rates(changed, now)
        self._rates_dirty = False

    def _flush_pending_linkless(self, now: float) -> None:
        # Intra-server flows: bounded by the vswitch, modelled at NIC
        # line rate.  Set once, before the solved rates, exactly where
        # the full rebuild used to assign them.
        rate = self.topology.link_rate
        for flow in self._pending_linkless:
            self._set_rate(flow, rate, now)
        self._pending_linkless.clear()

    def _apply_rates(self, changed: Dict[Tuple[int, int], float],
                     now: float) -> None:
        """Apply a solver's changed rates, batched through the flow table.

        Bit-compatible with calling ``_set_rate`` per flow in ``changed``
        order: the element-wise advancement runs as float64 array ops
        (IEEE-identical to the scalar expressions), while the
        carried-rate/carried-bytes accumulators and event sequence
        numbers update in the same sequential order.
        """
        flows_map = self._solver_flows
        items = [(flows_map[key], rate if rate > 0.0 else 0.0)
                 for key, rate in changed.items()]
        if len(items) < _BATCH_MIN:
            for flow, rate in items:
                self._set_rate(flow, rate, now)
        else:
            self._apply_rates_batch(items, now)
        for flow, _ in items:
            if flow.remaining <= _DONE_EPS:
                # Drained inside the rate change (aggregate overshoot):
                # the next from-scratch solve would skip it, so the
                # persistent solver must drop it too.
                self._solver_discard(flow)

    def _apply_rates_batch(self, items: List[Tuple[FlowState, float]],
                           now: float) -> None:
        table = self._flow_table
        n = len(items)
        slots = np.empty(n, dtype=np.intp)
        new = np.empty(n, dtype=np.float64)
        for j, (flow, rate) in enumerate(items):
            slots[j] = flow._slot
            new[j] = rate
        cur = table.rate[slots]
        keep = new != cur
        if not keep.all():
            picked = np.nonzero(keep)[0]
            items = [items[j] for j in picked]
            slots = slots[picked]
            new = new[picked]
            cur = cur[picked]
            if not items:
                return
        rem = table.remaining[slots]
        dt = now - table.updated[slots]
        moving = (dt > 0.0) & (cur > 0.0) & (rem > 0.0)
        moved = np.where(moving, cur * dt, 0.0)
        over = moved > rem
        if over.any():
            stats = self.stats
            for j in np.nonzero(over)[0]:
                # Aggregate integral overshoot refunds, in batch order
                # (same accumulation order as the scalar path).
                stats.carried_bytes -= ((moved[j] - rem[j])
                                        * len(items[j][0].links))
            np.minimum(moved, rem, out=moved)
        rem_new = rem - moved
        table.remaining[slots] = rem_new
        table.updated[slots] = now
        table.rate[slots] = new
        carried = self._carried_rate
        next_seq = self.engine.next_seq
        recorder = self._port_usage
        events = []
        for j, (flow, rate) in enumerate(items):
            carried += (rate - cur[j]) * len(flow.links)
            if recorder is not None:
                recorder.record(flow.links, float(cur[j]), rate, now)
            flow.epoch += 1
            if rate > 0.0 and rem_new[j] > _DONE_EPS:
                finish = now + max(rem_new[j] / rate, 1e-9)
                events.append((float(finish), next_seq(), flow.epoch, flow))
        self._carried_rate = carried
        self.rate_update_count += len(items)
        flow_events = self._flow_events
        if events:
            # Pop order only depends on the (finish, seq) total order, so
            # rebuilding the heap in one pass is equivalent to pushing
            # entry by entry -- and cheaper for bulk inserts.
            if 4 * len(events) >= len(flow_events):
                flow_events.extend(events)
                heapify(flow_events)
            else:
                for event in events:
                    heappush(flow_events, event)

    # -- event engine ----------------------------------------------------------

    def _materialize(self, flow: FlowState, now: float) -> None:
        """Bring a flow's lazily-advanced ``remaining`` up to ``now``."""
        dt = now - flow.updated
        if dt > 0.0 and flow.rate > 0.0 and flow.remaining > 0.0:
            moved = flow.rate * dt
            if moved > flow.remaining:
                # The aggregate carried-rate integral ran this flow past
                # its tail (the nanosecond clamp, or float slop); refund
                # the overshoot so carried_bytes stays exact.
                self.stats.carried_bytes -= ((moved - flow.remaining)
                                             * len(flow.links))
                moved = flow.remaining
            flow.remaining -= moved
        flow.updated = now

    def _set_rate(self, flow: FlowState, rate: float, now: float) -> None:
        """Change a flow's fluid rate and reschedule its finish event.

        A no-op when the rate is unchanged: the flow's trajectory -- and
        therefore its already-scheduled finish event -- is still exact.
        This is what keeps global recomputes cheap in steady state.
        """
        if rate == flow.rate:
            return
        self._materialize(flow, now)
        self._carried_rate += (rate - flow.rate) * len(flow.links)
        if self._port_usage is not None:
            self._port_usage.record(flow.links, flow.rate, rate, now)
        flow.rate = rate
        flow.epoch += 1
        self.rate_update_count += 1
        if rate > 0.0 and flow.remaining > _DONE_EPS:
            # Same nanosecond clamp as the reference loop, so time always
            # advances even when remaining/rate underflows next to `now`.
            finish = now + max(flow.remaining / rate, 1e-9)
            heappush(self._flow_events,
                     (finish, self.engine.next_seq(), flow.epoch, flow))

    def _schedule_compute_end(self, job: TenantJob, now: float) -> None:
        end = job.arrival + job.compute_time
        if end <= now + _TIME_EPS:
            self._ready.append(job.tenant_id)
        else:
            heappush(self._job_events,
                     (end, self.engine.next_seq(), job.tenant_id))

    def _on_flow_finish(self, flow: FlowState, epoch: int,
                        now: float) -> bool:
        """Handle a popped flow-finish event; True if the flow drained."""
        if epoch != flow.epoch or flow.remaining <= _DONE_EPS:
            return False  # superseded by a rate change, or already done
        self._materialize(flow, now)
        if flow.remaining > _DONE_EPS:
            # Fired early (nanosecond clamp / pop slop): reschedule.
            flow.epoch += 1
            finish = now + max(flow.remaining / flow.rate, 1e-9)
            heappush(self._flow_events,
                     (finish, self.engine.next_seq(), flow.epoch, flow))
            return False
        # Drained: its share frees up for others.
        self._carried_rate -= flow.rate * len(flow.links)
        if self._port_usage is not None:
            self._port_usage.record(flow.links, flow.rate, 0.0, now)
        flow.epoch += 1
        self._rates_dirty = True
        self._solver_discard(flow)
        self._live_flows -= 1
        tenant_id = flow.tenant_id
        if self.tracer is not None:
            job = self.jobs.get(tenant_id)
            started = job.arrival if job is not None else now
            self.tracer.emit(FlowFinish(
                time=now, tenant_id=tenant_id, src=flow.src_vm,
                dst=flow.dst_vm, latency=now - started))
        self._active_flows[tenant_id] -= 1
        if self._active_flows[tenant_id] == 0:
            job = self.jobs.get(tenant_id)
            if job is not None:
                self._schedule_compute_end(job, now)
        return True

    def _on_compute_end(self, tenant_id: int, now: float) -> bool:
        job = self.jobs.get(tenant_id)
        if job is None or self._active_flows.get(tenant_id, 1) != 0:
            return False
        self._ready.append(tenant_id)
        return True

    def _finish_ready(self, now: float) -> bool:
        """Retire every job whose flows drained and compute time passed."""
        if not self._ready:
            return False
        if len(self._ready) > 1:
            # The reference loop collects same-instant finishers in
            # admission order (its jobs-dict scan); match it.
            self._ready.sort(key=self._admit_order.__getitem__)
        table = self._flow_table
        for tenant_id in self._ready:
            job = self.jobs.pop(tenant_id, None)
            if job is None:
                continue
            for flow in job.flows:
                table.release(flow)
            job.finish = now
            self.stats.finished_jobs += 1
            self.stats.job_durations.append(job.duration)
            self.stats.durations_by_tenant[tenant_id] = job.duration
            self.manager.remove(tenant_id)
            if self.controller is not None:
                self.controller.notify_departed(tenant_id, now)
            if job.request.guarantee is None:
                self._n_best_effort -= 1
            del self._active_flows[tenant_id]
            del self._admit_order[tenant_id]
            self._rates_dirty = True
        self._ready.clear()
        return True

    # -- fault handling --------------------------------------------------------

    def _apply_fault(self, event: FaultEvent, now: float) -> None:
        """Fold one fault event into the running simulation.

        The controller owns the control-plane reaction (release, fence,
        re-place, classify); this method mirrors the data plane: scaled
        link capacities, per-flow rate caps, job kills and reroutes.
        """
        controller = self.controller
        outcomes = controller.apply(event, now)
        if self.tracer is not None:
            self.tracer.emit(FaultInjected(
                time=now, target=event.target.spec, action=event.action,
                factor=event.factor))
        health = controller.health
        for port_id, base in self._base_capacity.items():
            self._link_capacity[port_id] = base * health.factor(port_id)
        self._down_ports = frozenset(health.down_ports)
        if self._mm_solver is not None:
            for port_id, capacity in self._link_capacity.items():
                self._mm_solver.set_capacity(port_id, capacity)
        # Effective capacities moved under the best-effort residuals.
        self._residual_version = None
        for tenant_id in sorted(outcomes):
            job = self.jobs.get(tenant_id)
            if job is None:
                continue  # affected tenant's job already departed/killed
            if outcomes[tenant_id] == OUTCOME_EVICTED:
                self._kill_job(job, now)
            else:
                self._reroute_job(job, now)
        self._cap_reserved_rates(now)
        self._rates_dirty = True

    def _kill_job(self, job: TenantJob, now: float) -> None:
        """Remove an evicted tenant's job; its traffic stops here.

        The controller already released the tenant's reservations; this
        is pure simulator bookkeeping.
        """
        tenant_id = job.tenant_id
        table = self._flow_table
        for flow in job.flows:
            if not flow.done:
                self._set_rate(flow, 0.0, now)
                flow.remaining = 0.0
                self._live_flows -= 1
            self._solver_discard(flow)
            table.release(flow)
        if self._pending_linkless:
            self._pending_linkless = [
                f for f in self._pending_linkless
                if f.tenant_id != tenant_id]
        self.jobs.pop(tenant_id, None)
        self._active_flows.pop(tenant_id, None)
        self._admit_order.pop(tenant_id, None)
        if tenant_id in self._ready:
            self._ready.remove(tenant_id)
        if job.request.guarantee is None:
            self._n_best_effort -= 1
        self.stats.evicted_jobs += 1
        self._rates_dirty = True

    def _reroute_job(self, job: TenantJob, now: float) -> None:
        """Move a re-placed tenant's flows onto its new paths.

        Live-migration semantics: each flow keeps its remaining bytes and
        continues over the new placement's links.
        """
        placement = self.manager.placements[job.tenant_id]
        job.placement = placement
        vm_servers = placement.vm_servers
        moved = False
        shared = (self.sharing == "maxmin"
                  or job.request.guarantee is None)
        for flow in job.flows:
            if flow.done:
                continue
            links = tuple(p.port_id for p in self.topology.path_ports(
                vm_servers[flow.src_vm], vm_servers[flow.dst_vm]))
            if links != flow.links:
                # Retire the old path's carried rate before swapping the
                # hop count under the aggregate integral.
                self._set_rate(flow, 0.0, now)
                if shared:
                    self._solver_discard(flow)
                    if flow in self._pending_linkless:
                        self._pending_linkless.remove(flow)
                flow.links = links
                if shared and not flow.done:
                    solver = (self._mm_solver if self._mm_solver is not None
                              else self._be_solver)
                    if links:
                        solver.add_flow(flow.key, links, math.inf)
                        self._solver_flows[flow.key] = flow
                    else:
                        self._pending_linkless.append(flow)
                moved = True
            if (self.sharing == "reserved"
                    and job.request.guarantee is not None):
                self._set_rate(flow, self._reserved_rate(flow), now)
        if moved:
            self.stats.rerouted_jobs += 1
        self._rates_dirty = True

    def _cap_reserved_rates(self, now: float) -> None:
        """Re-cap every reserved flow after effective capacities changed."""
        if self.sharing != "reserved":
            return
        for job in self.jobs.values():
            if job.request.guarantee is None:
                continue
            for flow in job.flows:
                if flow.done or not flow.links:
                    continue
                self._set_rate(flow, self._reserved_rate(flow), now)

    # -- main loop -----------------------------------------------------------------

    def run(self, workload: TenantWorkload, until: float) -> ClusterStats:
        """Drive the simulation to ``until`` seconds of virtual time."""
        arrivals = iter(workload.arrivals(until))
        pending = next(arrivals, None)
        engine = self.engine
        now = engine.now = 0.0
        total_capacity = sum(self._link_capacity.values())
        flow_events = self._flow_events
        job_events = self._job_events
        fault_clock = engine.fault_clock
        stats = self.stats

        while now < until:
            if self._rates_dirty:
                if self.sharing == "maxmin":
                    self._recompute_maxmin(now)
                else:
                    self._recompute_best_effort(now)
            # Drop stale finish predictions so they can't drag t_next back.
            while flow_events:
                head = flow_events[0]
                flow = head[3]
                if head[2] != flow.epoch or flow.remaining <= _DONE_EPS:
                    heappop(flow_events)
                else:
                    break
            # Earliest next event.
            t_next = until
            if pending is not None and pending.time < t_next:
                t_next = pending.time
            if flow_events and flow_events[0][0] < t_next:
                t_next = flow_events[0][0]
            if job_events and job_events[0][0] < t_next:
                t_next = job_events[0][0]
            if fault_clock is not None:
                fault_next = fault_clock.next_time()
                if fault_next < t_next:
                    t_next = fault_next
            if t_next < now:
                t_next = now
            dt = t_next - now
            # Advance accounting; fluids advance lazily.
            if dt > 0:
                stats.carried_bytes += self._carried_rate * dt
                stats.occupancy_integral += self.manager.occupancy * dt
                stats.link_capacity_seconds += total_capacity * dt
                if self.utilization_series is not None and total_capacity:
                    self.utilization_series.record(
                        now, self._carried_rate / total_capacity)
            # Advance the shared clock with the local one, so hooks (trace
            # sinks, port-usage recorders) and cross-fidelity consumers
            # read the authoritative time from the engine.
            now = engine.now = t_next
            progressed = dt > 0
            # Faults first: capacity changes and evictions take effect
            # before same-instant drains and arrivals see them.
            if fault_clock is not None:
                for fault in fault_clock.pop_due(now + _TIME_EPS):
                    self._apply_fault(fault, now)
                    progressed = True
            # Flow drains at (or before) now.
            while flow_events and flow_events[0][0] <= now + _TIME_EPS:
                _, _, epoch, flow = heappop(flow_events)
                if self._on_flow_finish(flow, epoch, now):
                    progressed = True
            # Compute expirations.
            while job_events and job_events[0][0] <= now + _TIME_EPS:
                _, _, tenant_id = heappop(job_events)
                if self._on_compute_end(tenant_id, now):
                    progressed = True
            # Arrivals at (or before) now.
            while pending is not None and pending.time <= now + _TIME_EPS:
                self._admit(pending, now)
                pending = next(arrivals, None)
                progressed = True
            # Completions.
            finished = self._finish_ready(now)
            if not progressed and not finished and pending is None:
                # No progress possible: mirror the reference loop's
                # defensive stuck check (rare; O(jobs) is fine here).
                remaining_ends = [job.arrival + job.compute_time
                                  for job in self.jobs.values()
                                  if not (job.network_done and
                                          job.arrival + job.compute_time
                                          <= now)]
                blocked = [f for job in self.jobs.values()
                           for f in job.flows
                           if not f.done and f.rate <= 0]
                if not remaining_ends and not blocked:
                    break
                if blocked and not remaining_ends:
                    down = self._down_ports
                    if not (down and all(
                            any(link in down for link in flow.links)
                            for flow in blocked)):
                        raise RuntimeError(
                            "flows stuck with zero rate; sharing policy "
                            "bug")
                    # Every blocked flow crosses a down port: fault
                    # stall, frozen until repair (or the end of the run).
        # Bring every live flow up to the final clock so post-run
        # inspection (and the carried-bytes refunds) see current state.
        self._materialize_batch(
            [flow for job in self.jobs.values() for flow in job.flows
             if flow.rate > 0.0 and flow.remaining > _DONE_EPS], now)
        stats.elapsed = now
        return stats

    def _materialize_batch(self, flows: List[FlowState],
                           now: float) -> None:
        """Vectorized :meth:`_materialize` over table-attached flows.

        Bit-compatible with the scalar loop: element-wise float64 array
        ops, with overshoot refunds applied in list order.
        """
        if len(flows) < _BATCH_MIN:
            for flow in flows:
                self._materialize(flow, now)
            return
        table = self._flow_table
        slots = np.fromiter((flow._slot for flow in flows), dtype=np.intp,
                            count=len(flows))
        rem = table.remaining[slots]
        cur = table.rate[slots]
        dt = now - table.updated[slots]
        moving = (dt > 0.0) & (cur > 0.0) & (rem > 0.0)
        moved = np.where(moving, cur * dt, 0.0)
        over = moved > rem
        if over.any():
            stats = self.stats
            for j in np.nonzero(over)[0]:
                stats.carried_bytes -= ((moved[j] - rem[j])
                                        * len(flows[j].links))
            np.minimum(moved, rem, out=moved)
        table.remaining[slots] = rem - moved
        table.updated[slots] = now
