"""Table 1: % messages later than their guarantee vs bandwidth and burst.

A synthetic application sends Poisson-arriving messages of size ``M``
between two VMs with average bandwidth requirement ``B``.  The guarantee
columns scale the *guaranteed* bandwidth from ``B`` to ``3B``; the rows
scale the burst allowance from ``M`` to ``9M``.  A message is late when
its latency exceeds the tenant-visible bound of section 4.1.

Message latency here is what the token-bucket hierarchy alone imposes
(transmission through the shaper + the delay guarantee), exactly the
coupling Table 1 isolates; network queueing is bounded separately by
placement.

Expected shape: ~99% late with (M, B); sharply decreasing along both
axes; ~0.1% late around burst 7M / bandwidth 1.8B (the paper's headline
cell); ~0 in the bottom-right corner.
"""

import random

import pytest

from repro import units
from repro.core.guarantees import message_latency_bound
from repro.pacer.hierarchy import PacerConfig, VMPacer

from conftest import print_table, run_once

#: The paper's grid.
BANDWIDTH_MULTIPLIERS = [1.0, 1.4, 1.8, 2.2, 2.6, 3.0]
BURST_MULTIPLIERS = [1, 3, 5, 7, 9]

MESSAGE = 15 * units.KB
AVG_BANDWIDTH = units.mbps(100)
PEAK = units.gbps(1)
DELAY = units.msec(1)
N_MESSAGES = 4000


def late_fraction(bw_mult: float, burst_mult: float, seed: int) -> float:
    rng = random.Random(seed)
    bandwidth = bw_mult * AVG_BANDWIDTH
    burst = burst_mult * MESSAGE
    config = PacerConfig(bandwidth=bandwidth, burst=burst, peak_rate=PEAK)
    pacer = VMPacer(config)
    # Table 1 scores messages against equation 1's guarantee at the
    # *guaranteed* bandwidth: M / B_guaranteed + d.  (The tighter burst-
    # aware bound of section 4.1 equals the uncongested latency exactly,
    # which would count any queueing as late.)
    bound = MESSAGE / bandwidth + DELAY
    mean_gap = MESSAGE / AVG_BANDWIDTH

    now = 0.0
    late = 0
    packets = int(MESSAGE // units.MTU) + (1 if MESSAGE % units.MTU else 0)
    for _ in range(N_MESSAGES):
        now += rng.expovariate(1.0 / mean_gap)
        last_release = now
        remaining = MESSAGE
        for _ in range(packets):
            size = min(units.MTU, remaining)
            remaining -= size
            last_release = pacer.stamp("peer", size, now)
        # Latency: last byte released, serialized at Bmax, plus the
        # guaranteed in-network delay.
        latency = (last_release - now) + units.MTU / PEAK + DELAY
        if latency > bound + 1e-12:
            late += 1
    return late / N_MESSAGES


def compute_table():
    rows = []
    for burst_mult in BURST_MULTIPLIERS:
        row = [f"{burst_mult}M"]
        for bw_mult in BANDWIDTH_MULTIPLIERS:
            fraction = late_fraction(bw_mult, burst_mult,
                                     seed=hash((burst_mult, bw_mult))
                                     & 0xFFFF)
            row.append(f"{100 * fraction:.2f}")
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_burst_allowance(benchmark):
    rows = run_once(benchmark, compute_table)
    header = ["burst\\bw"] + [f"{m:g}B" for m in BANDWIDTH_MULTIPLIERS]
    print_table("Table 1: % messages later than their guarantee", header,
                rows)

    values = {(r, c): float(rows[r][c + 1])
              for r in range(len(BURST_MULTIPLIERS))
              for c in range(len(BANDWIDTH_MULTIPLIERS))}
    # Shape assertions, in the paper's terms:
    # (M, B) leaves almost every message late, and the whole first
    # column stays bad: bandwidth equal to the average demand cannot
    # absorb Poisson bursts no matter the allowance (paper: 98-99%).
    assert values[(0, 0)] > 80.0
    for r in range(len(BURST_MULTIPLIERS)):
        assert values[(r, 0)] > 50.0
    # With any bandwidth headroom, more burst monotonically helps.
    for c in range(1, len(BANDWIDTH_MULTIPLIERS)):
        for r in range(len(BURST_MULTIPLIERS) - 1):
            assert values[(r + 1, c)] <= values[(r, c)] + 2.0
    # More guaranteed bandwidth helps along every row.
    for r in range(len(BURST_MULTIPLIERS)):
        assert values[(r, 1)] <= values[(r, 0)] + 2.0
        assert values[(r, 5)] <= values[(r, 1)] + 2.0
    # Generous burst + headroom makes lateness rare (paper: 0.09% at
    # 7M / 1.8B).
    assert values[(3, 2)] < 2.0     # 7M, 1.8B
    assert values[(4, 5)] < 0.5     # 9M, 3B
