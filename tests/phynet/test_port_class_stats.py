"""Per-traffic-class OutputPort accounting: drops, pushouts, queue peaks."""

import pytest

from repro import units
from repro.phynet.engine import Simulator
from repro.phynet.packet import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_GUARANTEED,
    Packet,
)
from repro.phynet.port import N_CLASSES, OutputPort


def port(sim, buffer_bytes=4500.0):
    delivered = []
    p = OutputPort(sim, "t", units.gbps(10), buffer_bytes,
                   on_delivery=delivered.append)
    return p, delivered


def packet(priority, size=1500.0):
    return Packet(src=0, dst=1, size=size, route=[], priority=priority)


class TestClassSplit:
    def test_tail_drops_attributed_to_their_class(self):
        sim = Simulator()
        p, delivered = port(sim)
        # One transmits immediately, three fill the buffer, the rest of
        # each class tail-drops against same-class occupancy.
        p.enqueue(packet(PRIORITY_GUARANTEED))
        for _ in range(3):
            p.enqueue(packet(PRIORITY_GUARANTEED))
        dropped_high = [packet(PRIORITY_GUARANTEED) for _ in range(2)]
        for pk in dropped_high:
            p.enqueue(pk)
        sim.run()
        assert p.stats.class_drops[PRIORITY_GUARANTEED] == 2
        assert p.stats.class_drops[PRIORITY_BEST_EFFORT] == 0
        assert p.stats.class_dropped_bytes[PRIORITY_GUARANTEED] == 3000.0

    def test_pushouts_attributed_to_the_victim_class(self):
        sim = Simulator()
        p, _ = port(sim)
        p.enqueue(packet(PRIORITY_GUARANTEED))  # occupies the wire
        for _ in range(3):
            p.enqueue(packet(PRIORITY_BEST_EFFORT))
        for _ in range(3):
            p.enqueue(packet(PRIORITY_GUARANTEED))
        sim.run()
        # The evicted packets were best effort; the class split must
        # blame them, not the guaranteed arrivals that triggered it.
        assert p.stats.class_pushouts[PRIORITY_BEST_EFFORT] == 3
        assert p.stats.class_pushouts[PRIORITY_GUARANTEED] == 0
        assert p.stats.class_pushed_out_bytes[PRIORITY_BEST_EFFORT] \
            == 3 * 1500.0
        assert p.stats.pushouts == 3

    def test_aggregates_equal_class_sums(self):
        sim = Simulator()
        p, _ = port(sim)
        p.enqueue(packet(PRIORITY_GUARANTEED))
        for _ in range(3):
            p.enqueue(packet(PRIORITY_BEST_EFFORT))
        for _ in range(5):
            p.enqueue(packet(PRIORITY_GUARANTEED))
        sim.run()
        stats = p.stats
        assert stats.drops == sum(stats.class_drops)
        assert stats.dropped_bytes == sum(stats.class_dropped_bytes)
        assert stats.pushouts == sum(stats.class_pushouts)
        assert stats.pushed_out_bytes == sum(stats.class_pushed_out_bytes)

    def test_per_class_queue_peaks(self):
        sim = Simulator()
        p, _ = port(sim)
        p.enqueue(packet(PRIORITY_GUARANTEED))  # on the wire
        p.enqueue(packet(PRIORITY_BEST_EFFORT, size=500.0))
        p.enqueue(packet(PRIORITY_GUARANTEED))
        p.enqueue(packet(PRIORITY_GUARANTEED))
        assert p.class_queued_bytes(PRIORITY_GUARANTEED) == 3000.0
        assert p.class_queued_bytes(PRIORITY_BEST_EFFORT) == 500.0
        sim.run()
        assert p.stats.class_max_queue_bytes[PRIORITY_GUARANTEED] == 3000.0
        assert p.stats.class_max_queue_bytes[PRIORITY_BEST_EFFORT] == 500.0
        assert p.class_queued_bytes(PRIORITY_GUARANTEED) == 0.0
        assert p.class_queued_bytes(PRIORITY_BEST_EFFORT) == 0.0
        assert max(p.stats.class_max_queue_bytes) \
            <= p.stats.max_queue_bytes

    def test_class_lists_sized_by_n_classes(self):
        sim = Simulator()
        p, _ = port(sim)
        assert len(p.stats.class_drops) == N_CLASSES
        assert len(p.stats.class_pushouts) == N_CLASSES
        assert len(p.stats.class_max_queue_bytes) == N_CLASSES


class TestNetworkRollup:
    def test_port_stats_include_class_lists(self):
        from repro.core.guarantees import NetworkGuarantee
        from repro.phynet.network import PacketNetwork
        from repro.topology import TreeTopology
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=2,
                            slots_per_server=2, link_rate=units.gbps(1))
        net = PacketNetwork(topo, scheme="tcp")
        stats = net.port_stats()
        assert stats["class_drops"] == [0] * N_CLASSES
        assert stats["class_pushouts"] == [0] * N_CLASSES
