"""Tenant-facing API plus the shared event core.

Guarantees, requests and the Silo controller (tenant-facing), and the
:class:`~repro.core.engine.EventEngine` both simulator fidelities run
on.
"""

from repro.core.engine import EventEngine
from repro.core.guarantees import NetworkGuarantee, message_latency_bound
from repro.core.tenant import TenantClass, TenantRequest, Placement
from repro.core.silo import SiloController

__all__ = [
    "EventEngine",
    "NetworkGuarantee",
    "message_latency_bound",
    "TenantClass",
    "TenantRequest",
    "Placement",
    "SiloController",
]
