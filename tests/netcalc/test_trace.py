"""Trace conformance checking, including shaper-output round trips."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.netcalc.arrival import dual_rate, token_bucket
from repro.netcalc.trace import check_conformance, conforms
from repro.pacer.hierarchy import PacerConfig, VMPacer
from repro.pacer.token_bucket import TokenBucket
from repro.phynet.engine import Simulator
from repro.phynet.shaper import VMShaper


class TestBasics:
    def test_empty_trace_conforms(self):
        assert conforms([], token_bucket(10.0, 100.0))

    def test_within_burst_conforms(self):
        curve = token_bucket(10.0, 100.0)
        assert conforms([(0.0, 50.0), (0.0, 50.0)], curve)

    def test_burst_overflow_detected(self):
        curve = token_bucket(10.0, 100.0)
        violation = check_conformance([(0.0, 80.0), (0.0, 80.0)], curve)
        assert violation is not None
        assert violation.excess == pytest.approx(60.0)

    def test_rate_overflow_detected_over_window(self):
        curve = token_bucket(10.0, 20.0)
        # 3 x 20 bytes in one second: 60 > 10 * 1 + 20.
        trace = [(0.0, 20.0), (0.5, 20.0), (1.0, 20.0)]
        violation = check_conformance(trace, curve)
        assert violation is not None
        assert violation.start == 0.0 and violation.end == 1.0

    def test_sustained_rate_conforms(self):
        curve = token_bucket(10.0, 20.0)
        trace = [(i * 2.0, 20.0) for i in range(100)]
        assert conforms(trace, curve)

    def test_interior_window_violation_found(self):
        """A violation buried mid-trace must be caught, not only ones
        anchored at the first packet."""
        curve = token_bucket(10.0, 20.0)
        trace = [(0.0, 20.0), (10.0, 20.0), (10.0, 20.0), (10.1, 20.0)]
        violation = check_conformance(trace, curve)
        assert violation is not None
        assert violation.start >= 10.0

    def test_validation(self):
        curve = token_bucket(1.0, 1.0)
        with pytest.raises(ValueError):
            check_conformance([(1.0, 1.0), (0.5, 1.0)], curve)
        with pytest.raises(ValueError):
            check_conformance([(0.0, 0.0)], curve)


class TestShaperConformance:
    """The load-bearing property: shaper output obeys the admission curve."""

    def test_token_bucket_stamps_conform(self):
        rate, capacity = 1000.0, 5000.0
        bucket = TokenBucket(rate, capacity)
        trace = [(bucket.stamp(400.0, 0.0), 400.0) for _ in range(200)]
        assert conforms(trace, token_bucket(rate, capacity),
                        tolerance=400.0 + 1e-6)

    def test_vmpacer_output_conforms_to_dual_rate_curve(self):
        config = PacerConfig(bandwidth=units.gbps(1), burst=15 * units.KB,
                             peak_rate=units.gbps(10))
        pacer = VMPacer(config)
        rng = random.Random(3)
        now = 0.0
        trace = []
        for _ in range(500):
            now += rng.expovariate(1.0 / 20e-6)
            trace.append((pacer.stamp("d", units.MTU, now), units.MTU))
        curve = dual_rate(config.bandwidth, config.burst, config.peak_rate,
                          packet_size=config.packet_size)
        assert conforms(trace, curve, tolerance=units.MTU + 1e-6)

    def test_event_driven_shaper_output_conforms(self):
        class P:
            __slots__ = ("dst", "size")

            def __init__(self, dst):
                self.dst = dst
                self.size = units.MTU

        sim = Simulator()
        released = []
        config = PacerConfig(bandwidth=units.gbps(1), burst=15 * units.KB,
                             peak_rate=units.gbps(10))
        shaper = VMShaper(sim, config,
                          release=lambda p: released.append(
                              (sim.now, p.size)))
        for i in range(400):
            shaper.submit(P(i % 4))
        sim.run(until=1.0)
        assert len(released) == 400
        curve = dual_rate(config.bandwidth, config.burst,
                          config.peak_rate,
                          packet_size=config.packet_size)
        assert conforms(released, curve, tolerance=units.MTU + 1e-6)


rates = st.floats(min_value=10.0, max_value=1e4)
bursts = st.floats(min_value=100.0, max_value=1e5)


@settings(max_examples=40, deadline=None)
@given(rates, bursts, st.integers(min_value=1, max_value=100),
       st.integers(min_value=0, max_value=2 ** 20))
def test_property_bucket_output_always_conforms(rate, capacity, n, seed):
    """Whatever the arrival pattern, a token bucket's stamps conform to
    its own curve (up to one packet of slack at t=0 granularity)."""
    rng = random.Random(seed)
    bucket = TokenBucket(rate, capacity)
    now = 0.0
    trace = []
    size = min(capacity, 150.0)
    for _ in range(n):
        now += rng.expovariate(100.0)
        trace.append((bucket.stamp(size, now), size))
    assert conforms(trace, token_bucket(rate, capacity),
                    tolerance=size + 1e-6)
