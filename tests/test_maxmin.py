"""Max-min fairness: axioms and edge cases."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxmin import max_min_fair


class TestBasics:
    def test_single_flow_gets_link(self):
        rates = max_min_fair({"f": (("l",), math.inf)}, {"l": 10.0})
        assert rates["f"] == pytest.approx(10.0)

    def test_equal_split(self):
        flows = {f"f{i}": (("l",), math.inf) for i in range(4)}
        rates = max_min_fair(flows, {"l": 10.0})
        for rate in rates.values():
            assert rate == pytest.approx(2.5)

    def test_demand_capped_flow_releases_share(self):
        flows = {"small": (("l",), 1.0), "big": (("l",), math.inf)}
        rates = max_min_fair(flows, {"l": 10.0})
        assert rates["small"] == pytest.approx(1.0)
        assert rates["big"] == pytest.approx(9.0)

    def test_two_link_bottleneck(self):
        # f1 crosses both links; f2 only the second.
        flows = {"f1": (("a", "b"), math.inf), "f2": (("b",), math.inf)}
        rates = max_min_fair(flows, {"a": 4.0, "b": 10.0})
        assert rates["f1"] == pytest.approx(4.0)
        assert rates["f2"] == pytest.approx(6.0)

    def test_linkless_flow_gets_demand(self):
        rates = max_min_fair({"f": ((), 7.0)}, {})
        assert rates["f"] == 7.0

    def test_linkless_elastic_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair({"f": ((), math.inf)}, {})

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            max_min_fair({"f": (("ghost",), 1.0)}, {})

    def test_zero_demand(self):
        rates = max_min_fair({"f": (("l",), 0.0)}, {"l": 10.0})
        assert rates["f"] == 0.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair({"f": (("l",), -1.0)}, {"l": 10.0})


links = st.sampled_from(["a", "b", "c", "d"])
flow_defs = st.lists(
    st.tuples(st.sets(links, min_size=1, max_size=3),
              st.one_of(st.just(math.inf),
                        st.floats(min_value=0.1, max_value=100.0))),
    min_size=1, max_size=10)


@settings(max_examples=100, deadline=None)
@given(flow_defs)
def test_feasibility_and_demand_respect(defs):
    flows = {i: (tuple(links_), demand)
             for i, (links_, demand) in enumerate(defs)}
    capacities = {l: 10.0 for l in "abcd"}
    rates = max_min_fair(flows, capacities)
    # No link over capacity.
    for link in capacities:
        load = sum(rates[i] for i, (ls, _) in flows.items() if link in ls)
        assert load <= capacities[link] + 1e-6
    # No flow above demand; none negative.
    for i, (_, demand) in flows.items():
        assert -1e-9 <= rates[i] <= demand + 1e-6


@settings(max_examples=50, deadline=None)
@given(flow_defs)
def test_maxmin_bottleneck_condition(defs):
    """Every flow below its demand must cross a saturated link where it
    has a maximal share -- the defining property of max-min fairness."""
    flows = {i: (tuple(links_), demand)
             for i, (links_, demand) in enumerate(defs)}
    capacities = {l: 10.0 for l in "abcd"}
    rates = max_min_fair(flows, capacities)
    loads = {l: sum(rates[i] for i, (ls, _) in flows.items() if l in ls)
             for l in capacities}
    for i, (ls, demand) in flows.items():
        if rates[i] >= demand - 1e-6:
            continue
        bottlenecked = False
        for link in ls:
            if loads[link] >= capacities[link] - 1e-5:
                max_share = max(rates[j] for j, (ls2, _) in flows.items()
                                if link in ls2)
                if rates[i] >= max_share - 1e-5:
                    bottlenecked = True
                    break
        assert bottlenecked, f"flow {i} is rate-limited by nothing"
