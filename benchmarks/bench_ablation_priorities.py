"""Section 4.4 ablation: best-effort tenants on the residual capacity.

Silo's guarantees are not work-conserving across tenants, which costs
utilization.  The paper's answer is 802.1q: best-effort tenants run at
low switch priority and soak up whatever the guaranteed tenants leave.
This bench measures exactly that three-way trade:

* guaranteed tenant alone -- baseline latency, wasted capacity;
* + best-effort tenant at LOW priority -- latency preserved, wire filled;
* + the same tenant at EQUAL priority -- the latency guarantee erodes,
  demonstrating why the priority split is load-bearing.
"""

import random

import pytest

from repro import units
from repro.analysis import percentile
from repro.core.guarantees import NetworkGuarantee
from repro.phynet import (
    MetricsCollector,
    PacketNetwork,
    PRIORITY_BEST_EFFORT,
    PRIORITY_GUARANTEED,
)
from repro.phynet.apps import BulkApp, EpochBurstApp
from repro.topology import TreeTopology
from repro.workloads import Fixed
from repro.workloads.patterns import all_to_all_pairs

from conftest import print_table, run_once

DURATION = 0.04
MESSAGE = 15 * units.KB
GUARANTEE = NetworkGuarantee(bandwidth=units.mbps(250),
                             burst=15 * units.KB, delay=units.msec(1),
                             peak_rate=units.gbps(1))


def run_scenario(best_effort: str):
    """``best_effort``: "none", "low-priority" or "equal-priority"."""
    topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                        slots_per_server=6, link_rate=units.gbps(10))
    net = PacketNetwork(topo, scheme="silo")
    metrics = MetricsCollector()
    rng = random.Random(77)
    for vm in range(6):
        net.add_vm(vm, 1, vm % 3, guarantee=GUARANTEE, paced=True)
    app_a = EpochBurstApp(net, metrics, 1, list(range(6)), Fixed(MESSAGE),
                          epoch=units.msec(3), rng=rng)
    app_a.start()

    bulk = None
    if best_effort != "none":
        priority = (PRIORITY_BEST_EFFORT if best_effort == "low-priority"
                    else PRIORITY_GUARANTEED)
        vms = list(range(6, 12))
        for vm in vms:
            net.add_vm(vm, 2, vm % 3, priority=priority)  # unpaced
        bulk = BulkApp(net, metrics, 2, all_to_all_pairs(vms),
                       chunk_size=units.MB)
        bulk.start()
    net.sim.run(until=DURATION)

    lats = metrics.latencies(1)
    elapsed = DURATION
    wire = sum(p.stats.tx_bytes for p in net.ports.values())
    return {
        "p99": percentile(lats, 99),
        "max": max(lats),
        "bulk": bulk.throughput(elapsed) if bulk else 0.0,
        "wire_bytes": wire,
    }


def compute():
    return {mode: run_scenario(mode)
            for mode in ("none", "low-priority", "equal-priority")}


@pytest.mark.benchmark(group="ablation-priorities")
def test_ablation_best_effort_priorities(benchmark):
    results = run_once(benchmark, compute)
    bound = GUARANTEE.message_latency_bound(MESSAGE)

    rows = []
    for mode, r in results.items():
        rows.append([
            mode,
            f"{units.to_usec(r['p99']):.0f}",
            f"{units.to_usec(r['max']):.0f}",
            f"{units.to_gbps(r['bulk']):.1f}",
            f"{r['wire_bytes'] / 1e6:.0f}",
        ])
    print_table(
        f"Section 4.4: best-effort tenants on residual capacity "
        f"(class-A bound {units.to_usec(bound):.0f} us)",
        ["best-effort mode", "A p99 us", "A max us", "BE Gbps",
         "wire MB"], rows)

    alone = results["none"]
    low = results["low-priority"]
    equal = results["equal-priority"]
    # Low-priority best effort fills the wire...
    assert low["bulk"] > units.gbps(5)
    assert low["wire_bytes"] > 3 * alone["wire_bytes"]
    # ...without breaking the guarantee.
    assert low["max"] <= bound
    # Equal priority erodes the tail relative to the low-priority split.
    assert equal["max"] > 1.5 * low["max"]