"""Capacity reporting over the placement manager."""

import pytest

from repro import units
from repro.analysis.capacity import capacity_report
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import SiloPlacementManager
from repro.topology import PortKind, TreeTopology


def manager():
    topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0)
    return SiloPlacementManager(topo)


def place(mgr, n_vms=8, bandwidth=units.gbps(1)):
    request = TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=bandwidth,
                                   burst=15 * units.KB,
                                   delay=units.msec(1),
                                   peak_rate=max(units.gbps(1),
                                                 bandwidth)),
        tenant_class=TenantClass.CLASS_A)
    assert mgr.place(request) is not None
    return request


class TestCapacityReport:
    def test_empty_manager(self):
        report = capacity_report(manager())
        assert report.used_slots == 0
        assert report.slot_fraction == 0.0
        for level in report.levels:
            assert level.bandwidth_reserved == 0.0
            assert level.worst_port_bandwidth_fraction == 0.0

    def test_reservations_show_up_per_level(self):
        mgr = manager()
        place(mgr, n_vms=8)
        report = capacity_report(mgr)
        assert report.used_slots == 8
        nic = report.level(PortKind.NIC_UP)
        assert nic.bandwidth_reserved > 0
        assert 0 < nic.worst_port_bandwidth_fraction <= 1.0
        assert nic.ports == mgr.topology.n_servers

    def test_binding_level_identified(self):
        mgr = manager()
        for _ in range(3):
            place(mgr, n_vms=6, bandwidth=units.gbps(2))
        report = capacity_report(mgr)
        binding = report.level(report.binding_level)
        for level in report.levels:
            assert (binding.worst_port_bandwidth_fraction
                    >= level.worst_port_bandwidth_fraction)

    def test_release_returns_to_empty(self):
        mgr = manager()
        request = place(mgr, n_vms=8)
        mgr.remove(request.tenant_id)
        report = capacity_report(mgr)
        assert report.used_slots == 0
        for level in report.levels:
            assert level.bandwidth_reserved == pytest.approx(0.0, abs=1e-6)

    def test_unknown_level_raises(self):
        report = capacity_report(manager())
        with pytest.raises(KeyError):
            # Build a fake kind-free lookup: every real kind exists, so
            # use a kind from a single-kind dummy by deleting levels.
            from dataclasses import replace
            empty = replace(report, levels=[])
            empty.level(PortKind.NIC_UP)
