"""Hybrid-fidelity scale benchmark: packet tenant in an 8K-server fluid.

Runs the registered ``hybrid_cell`` scenario at the fig16-32k campaign's
8000-server shape (16 pods x 50 racks x 10 servers, 4 slots): a
memcached-style foreground tenant at packet fidelity, admitted through
the same placement manager as a cluster-wide fluid background churn,
with the background's recorded residual port capacity replayed into the
packet window.  The point being priced is the hybrid premise itself --
that packet-level message latencies inside a cluster the packet
simulator could never hold are computable in seconds, because the
background runs at fluid fidelity and only the foreground's path ports
are resolved further.

The full run asserts:

* the whole cell (fluid background + packet window + coupling) fits a
  fixed single-CPU wall-clock budget;
* the background actually churned (admitted tenants, finished jobs) at
  cluster scale;
* the packet window actually ran (foreground messages with a latency
  tail) against a live residual feed (watched ports, residual events).

Run::

    PYTHONPATH=src python benchmarks/bench_hybrid.py          # full
    PYTHONPATH=src python benchmarks/bench_hybrid.py --quick

Quick mode shortens the fluid horizon (same 8000-server topology) and
never overwrites the committed ``BENCH_hybrid.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.campaign.scenarios import hybrid_cell

#: The fig16-32k 8000-server shape: (pods, racks_per_pod), 10
#: servers/rack, 4 slots/server.
TOPOLOGY = dict(pods=16, racks_per_pod=50, servers_per_rack=10, slots=4,
                link_gbps=10.0, oversubscription=5.0, buffer_kb=312.0)

#: Single-CPU wall-clock budget for the full cell (seconds).  The
#: measured time is ~6 s on a development machine; the budget leaves
#: headroom for slow CI hosts while still catching a fidelity-coupling
#: regression that would push the cell toward packet-scale cost.
WALL_BUDGET_S = 120.0

#: Fluid background horizon (seconds of virtual time).
HORIZON_FULL = 12.0
HORIZON_QUICK = 2.0


def bench(horizon: float, seed: int) -> dict:
    """One timed 8000-server hybrid cell."""
    t0 = time.perf_counter()
    result = hybrid_cell(policy="silo", fg_app="memcached", fg_vms=6,
                         fg_bandwidth_mbps=100.0, occupancy=0.6,
                         horizon=horizon, fg_horizon_ms=20.0,
                         fg_offset="peak", seed=seed, **TOPOLOGY)
    wall = time.perf_counter() - t0
    servers = (TOPOLOGY["pods"] * TOPOLOGY["racks_per_pod"]
               * TOPOLOGY["servers_per_rack"])
    return {
        "servers": servers,
        "slots": servers * TOPOLOGY["slots"],
        "horizon": horizon,
        "seed": seed,
        "wall_s": round(wall, 3),
        "wall_budget_s": WALL_BUDGET_S,
        "cell": result,
    }


def check(report: dict, quick: bool = False) -> None:
    """The scale claims, as hard assertions."""
    assert report["servers"] >= 8000, report["servers"]
    assert report["wall_s"] < report["wall_budget_s"], (
        report["wall_s"], report["wall_budget_s"])
    cell = report["cell"]
    background = cell["background"]
    assert background["finished_jobs"] > 0, background
    assert cell["bg_admitted"] > 0.5, cell["bg_admitted"]
    assert cell["rejected_foreground"] == 0, cell
    assert cell["watched_ports"] > 0, cell
    fg = cell["foreground"][0]
    assert fg["messages"] > 0, fg
    assert fg["p99_us"] is not None and fg["p99_us"] > 0.0, fg
    if not quick:
        # The coupling fed the packet window real background occupancy
        # (the short quick horizon may legitimately record an idle
        # window on the foreground's few path ports).
        assert cell["residual_events"] > 0, cell


def report_rows(report: dict) -> None:
    cell = report["cell"]
    background = cell["background"]
    fg = cell["foreground"][0]
    print(f"{report['servers']} servers ({report['slots']} slots), "
          f"{report['horizon']:g}s fluid horizon: "
          f"wall {report['wall_s']:.2f}s "
          f"(budget {report['wall_budget_s']:g}s)")
    print(f"background: admitted={cell['bg_admitted']:.1%} "
          f"jobs={background['finished_jobs']} "
          f"peak_flows={background['peak_concurrent_flows']}")
    print(f"foreground: messages={fg['messages']} "
          f"p50={fg['p50_us']:.1f}us p99={fg['p99_us']:.1f}us "
          f"rps={fg['rps']:.0f} "
          f"(window {1e3 * cell['fg_horizon']:g}ms at "
          f"offset {cell['fg_offset']:.2f}s, "
          f"{cell['residual_events']} residual events on "
          f"{cell['watched_ports']} ports)")


def main(argv=None) -> None:
    """CLI entry point: full run writes the committed baseline."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short fluid horizon; never overwrites the "
                             "committed baseline")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON report path (default: the committed "
                             "BENCH_hybrid.json for a full run)")
    args = parser.parse_args(argv)
    horizon = HORIZON_QUICK if args.quick else HORIZON_FULL
    report = bench(horizon, args.seed)
    check(report, quick=args.quick)
    report_rows(report)
    out = args.out
    if out is None and not args.quick:
        out = _REPO / "BENCH_hybrid.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=True)
                       + "\n")
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
