"""Closed-form admission bounds must match the Curve-built oracle.

``PortState.admits``/``backlog``/``queue_bound`` use the closed-form
dual-rate expressions from :mod:`repro.netcalc.fastbounds`; the
``*_reference`` methods rebuild the conservative aggregate
:class:`~repro.netcalc.curves.Curve` per probe, exactly as the seed did.
These property tests drive both over randomized port states and probes --
at unit scale and at Gbps/byte scale, where epsilon bugs hide -- and
demand identical accept/reject decisions and matching bounds.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.placement.state import Contribution, PortState
from repro.topology.switch import Port, PortKind

#: (capacity, buffer) regimes: toy unit scale, tight Gbps, roomy Gbps.
_PORTS = [
    (1.0, 10.0),
    (units.gbps(1), 100 * units.KB),
    (units.gbps(10), 312 * units.KB),
]


def _make_state(port_idx: int) -> PortState:
    capacity, buffer_bytes = _PORTS[port_idx]
    return PortState(Port(port_id=0, kind=PortKind.TOR_DOWN,
                          capacity=capacity, buffer_bytes=buffer_bytes))


def _contribution(capacity: float, bw_frac: float, burst_frac: float,
                  peak_factor: float, slack_frac: float) -> Contribution:
    bandwidth = bw_frac * capacity
    return Contribution(
        bandwidth=bandwidth,
        burst=burst_frac * capacity * 0.01,
        peak_rate=bandwidth * peak_factor,
        packet_slack=slack_frac * 3 * units.MTU)


contribution_params = st.tuples(
    st.floats(min_value=0.0, max_value=0.5),
    st.floats(min_value=0.0, max_value=1.0),
    st.one_of(st.just(1.0), st.floats(min_value=1.0, max_value=50.0)),
    st.floats(min_value=0.0, max_value=1.0))


@settings(max_examples=300, deadline=None)
@given(port_idx=st.integers(min_value=0, max_value=len(_PORTS) - 1),
       base=st.lists(contribution_params, max_size=5),
       probe=contribution_params)
def test_closed_form_matches_curve_oracle(port_idx, base, probe):
    state = _make_state(port_idx)
    capacity = _PORTS[port_idx][0]
    for params in base:
        state.add(_contribution(capacity, *params))
    extra = _contribution(capacity, *probe)

    assert state.admits(extra) == state.admits_reference(extra)
    assert state.backlog(extra) == pytest.approx(
        state.backlog_reference(extra), rel=1e-9, abs=1e-9)
    assert state.queue_bound(extra) == pytest.approx(
        state.queue_bound_reference(extra), rel=1e-9, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(port_idx=st.integers(min_value=0, max_value=len(_PORTS) - 1),
       base=st.lists(contribution_params, max_size=5))
def test_standing_bounds_match_oracle(port_idx, base):
    """Bounds with no probe (extra=None) agree too."""
    state = _make_state(port_idx)
    capacity = _PORTS[port_idx][0]
    for params in base:
        state.add(_contribution(capacity, *params))

    assert state.backlog() == pytest.approx(
        state.backlog_reference(), rel=1e-9, abs=1e-9)
    qb = state.queue_bound()
    qb_ref = state.queue_bound_reference()
    if math.isinf(qb_ref):
        assert math.isinf(qb)
    else:
        assert qb == pytest.approx(qb_ref, rel=1e-9, abs=1e-12)


def test_fast_and_reference_managers_agree_on_campaign():
    """End-to-end: identical admission decisions and VM layouts for a
    churning campaign with fast paths on vs off (the seed path)."""
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]
                           / "benchmarks"))
    import bench_hotpaths
    from repro.placement import SiloPlacementManager

    topology = bench_hotpaths._campaign_topology(1, 4)
    fast = SiloPlacementManager(topology)
    ref = SiloPlacementManager(bench_hotpaths._campaign_topology(1, 4),
                               fast_paths=False)
    fast_dec, fast_lay = bench_hotpaths._run_campaign(fast, 120, seed=3)
    ref_dec, ref_lay = bench_hotpaths._run_campaign(ref, 120, seed=3)
    assert fast_dec == ref_dec
    assert fast_lay == ref_lay
