"""Directed sender->receiver port paths for incast placements."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import SiloPlacementManager, incast_paths
from repro.topology import TreeTopology


def make_topo(**kwargs):
    defaults = dict(n_pods=2, racks_per_pod=2, servers_per_rack=4,
                    slots_per_server=4, link_rate=units.gbps(10),
                    oversubscription=5.0, buffer_bytes=312 * units.KB)
    defaults.update(kwargs)
    return TreeTopology(**defaults)


def place(topo, n_vms=8):
    manager = SiloPlacementManager(topo)
    request = TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.gbps(0.25),
                                   burst=15 * units.KB,
                                   delay=units.msec(1),
                                   peak_rate=units.gbps(1)),
        tenant_class=TenantClass.CLASS_A)
    placement = manager.place(request)
    assert placement is not None
    return placement


class TestIncastPaths:
    def test_one_sender_per_non_receiver_vm(self):
        topo = make_topo()
        paths = incast_paths(topo, place(topo, n_vms=8))
        assert len(paths.senders) == 7
        assert paths.receiver_vm == 0
        assert all(s.vm_index != 0 for s in paths.senders)

    def test_colocated_sender_has_no_switch_ports(self):
        topo = make_topo()
        placement = place(topo, n_vms=4)  # fits one server
        paths = incast_paths(topo, placement)
        assert all(s.server == paths.receiver_server
                   for s in paths.senders)
        assert all(s.ports == () for s in paths.senders)
        assert paths.max_hops() == 0

    def test_cross_server_path_traverses_tor(self):
        topo = make_topo()
        paths = incast_paths(topo, place(topo, n_vms=8))
        remote = [s for s in paths.senders
                  if s.server != paths.receiver_server]
        assert remote
        for sender in remote:
            kinds = [port.kind.value for port in sender.ports]
            assert kinds == ["nic-up", "tor-down"]

    def test_fan_in_counts_shared_ports(self):
        topo = make_topo()
        paths = incast_paths(topo, place(topo, n_vms=8))
        fan_in = paths.port_fan_in()
        remote = [s for s in paths.senders
                  if s.server != paths.receiver_server]
        # Every remote sender funnels through the receiver's ToR
        # down-link; per-server NIC up-links are shared per server.
        tor_down = [name for name in fan_in if "tor-down" in name]
        assert len(tor_down) == 1
        assert fan_in[tor_down[0]] == len(remote)

    def test_receiver_index_selects_receiver(self):
        topo = make_topo()
        placement = place(topo, n_vms=8)
        paths = incast_paths(topo, placement, receiver_index=3)
        assert paths.receiver_vm == 3
        assert len(paths.senders) == 7

    def test_receiver_index_out_of_range(self):
        topo = make_topo()
        placement = place(topo, n_vms=4)
        with pytest.raises(ValueError, match="receiver_index"):
            incast_paths(topo, placement, receiver_index=4)


class TestPortNames:
    def test_name_matches_trace_convention(self):
        topo = make_topo()
        port = topo.ports[0]
        assert port.name == f"{port.kind.value}[{port.index}]"

    def test_names_are_unique(self):
        topo = make_topo()
        names = [port.name for port in topo.ports]
        assert len(names) == len(set(names))
