"""The long-running admission-control service loop.

Single-threaded, virtual-clock: callers submit admissions, departures
and fault events (each durably intent-logged before it is queued), and
:meth:`AdmissionService.tick` advances the service one scheduling round
-- all pending faults, then all departures, then one admission batch.
Clock discipline is the caller's job (the load generator drives virtual
time; ``python -m repro serve`` ticks as fast as it can), which keeps
every run bit-reproducible.

Robustness properties, in one place:

* **backpressure**: the bounded ingress queue bounces admissions with a
  retry-after hint once full (`submit_admission` returns it);
* **shedding**: under forced overshoot (crash-recovery re-enqueue) the
  queue is trimmed back to capacity, oldest deadline first, and every
  victim is answered with a retry-after; control traffic is never shed;
* **deadlines**: every admission carries one; items past it are expired
  unprocessed;
* **graceful shard degradation**: a fault that cordons a whole shard
  re-queues the in-flight admission batch so it re-runs against the
  post-fault books;
* **crash consistency**: write-ahead intent log + periodic snapshot;
  a ``kill -9`` restarts to bit-identical placement books (see
  :mod:`repro.service.wal` for the replay contract).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.stats import percentile
from repro.core.tenant import TenantRequest
from repro.faults.model import FaultEvent, FaultTarget
from repro.obs.events import (FaultInjected, ServiceDecision,
                              ServiceIngress, ServiceSnapshot)
from repro.service.cluster import ShardedCluster
from repro.service.queue import BoundedIngressQueue, IngressItem, Priority
from repro.service.snapshot import dump_request, restore_request
from repro.service.wal import SnapshotStore, WriteAheadLog, recovery_plan
from repro.topology.tree import TreeTopology

__all__ = ["AdmissionService", "ServiceMetrics"]


class ServiceMetrics:
    """SLO counters and distributions for one service run."""

    def __init__(self) -> None:
        self.admitted = 0
        #: Rejected by the admission math (ran to completion).
        self.rejected_admission = 0
        #: Bounced at the ingress queue (backpressure).
        self.rejected_backpressure = 0
        self.shed = 0
        self.expired = 0
        self.departed = 0
        self.faults = 0
        self.ticks = 0
        #: Virtual seconds from enqueue to decision, per completed
        #: admission attempt (the admission-latency SLO series).
        self.admission_latencies: List[float] = []
        self.snapshots = 0
        self.replayed = 0

    def latency_percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile admission latency (``q`` in [0, 100]).

        Delegates to :func:`repro.analysis.stats.percentile` so the
        service SLO numbers use the same nearest-rank convention as
        every other percentile in the repo (an out-of-range ``q``
        raises instead of silently indexing).  ``None`` when no
        admissions have completed yet.
        """
        if not self.admission_latencies:
            if not 0 <= q <= 100:
                raise ValueError(f"q must be in [0, 100], got {q}")
            return None
        return percentile(self.admission_latencies, q)

    def to_dict(self, queue: Optional[BoundedIngressQueue] = None
                ) -> Dict[str, Any]:
        """Counters + latency percentiles (+ queue high-water marks)."""
        out: Dict[str, Any] = {
            "admitted": self.admitted,
            "rejected_admission": self.rejected_admission,
            "rejected_backpressure": self.rejected_backpressure,
            "shed": self.shed,
            "expired": self.expired,
            "departed": self.departed,
            "faults": self.faults,
            "ticks": self.ticks,
            "snapshots": self.snapshots,
            "replayed": self.replayed,
            "p50_admission_latency": self.latency_percentile(50.0),
            "p99_admission_latency": self.latency_percentile(99.0),
        }
        if queue is not None:
            out["max_queue_depth"] = queue.max_depth
            out["max_admit_depth"] = queue.max_admit_depth
        return out


class AdmissionService:
    """Admission control as an always-on, crash-consistent service.

    Constructing the service **is** recovery: if ``data_dir`` holds a
    snapshot and/or write-ahead log from a previous life, the books are
    restored bit-identically and open intents re-enqueued before the
    first ``submit_*`` call is accepted.

    Args:
        topology: the cluster to manage.
        data_dir: durable state directory (WAL + snapshot).
        queue_capacity: ingress queue depth bound.
        batch_size: admissions processed per tick.
        admission_timeout: default deadline budget (virtual seconds)
            granted to each admission.
        snapshot_every: checkpoint the books after this many completed
            items (0 disables periodic snapshots).
        shard_down_threshold: see :class:`ShardedCluster`.
        tracer: optional obs sink; attached *after* replay, so recovery
            does not re-emit the previous life's events.
    """

    def __init__(self, topology: TreeTopology, data_dir,
                 queue_capacity: int = 256, batch_size: int = 16,
                 admission_timeout: float = 5.0,
                 snapshot_every: int = 200,
                 shard_down_threshold: float = 0.5,
                 retry_evicted: bool = True, tracer=None) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.batch_size = batch_size
        self.admission_timeout = admission_timeout
        self.snapshot_every = snapshot_every
        self.cluster = ShardedCluster(
            topology, shard_down_threshold=shard_down_threshold,
            retry_evicted=retry_evicted)
        self.queue = BoundedIngressQueue(queue_capacity)
        self.metrics = ServiceMetrics()
        self.snapshots = SnapshotStore(self.data_dir / "snapshot.json")
        self._in_flight: List[IngressItem] = []
        self._done_count = 0
        self._done_since_snapshot = 0
        self.tracer = None
        #: Optional callback ``(item, outcome, now)`` fired on every
        #: completed decision -- the closed-loop load generator's
        #: feedback channel for retry/backoff.
        self.on_decision = None
        self.wal = WriteAheadLog(self.data_dir / "wal.jsonl")
        self._recover()
        self.tracer = tracer

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        snapshot = self.snapshots.load()
        folded = 0
        if snapshot is not None:
            self.cluster.restore_state(snapshot["cluster"])
            folded = int(snapshot.get("done_count", 0))
        redo, reenqueue, total_done = recovery_plan(self.wal.path, folded)
        for record in redo:
            self._redo(record)
        self._done_count = total_done
        self.metrics.replayed = len(redo)
        for record in reenqueue:
            self.queue.offer(self._item_from_enq(record), force=True)

    def _redo(self, record: Dict[str, Any]) -> None:
        done = record["done"]
        kind, outcome = record["kind"], done["outcome"]
        if kind == "admit":
            if outcome == "admitted":
                request = restore_request(record["payload"]["request"])
                self.cluster.adopt(request, int(done["owner"]),
                                   [int(s) for s in done["vm_servers"]])
        elif kind == "depart":
            if outcome == "departed":
                self.cluster.depart(int(record["payload"]["tenant_id"]),
                                    now=done["time"])
        elif kind == "fault":
            self.cluster.apply_fault(self._event_from_payload(
                record["payload"]), now=done["time"])

    def _item_from_enq(self, record: Dict[str, Any]) -> IngressItem:
        kind = record["kind"]
        payload = record["payload"]
        if kind == "admit":
            return IngressItem(
                Priority.ADMIT, record["time"],
                restore_request(payload["request"]), seq=record["seq"],
                deadline=record.get("deadline"),
                attempt=int(payload.get("attempt", 0)))
        if kind == "depart":
            return IngressItem(Priority.DEPARTURE, record["time"],
                               int(payload["tenant_id"]),
                               seq=record["seq"])
        return IngressItem(Priority.FAULT, record["time"],
                           self._event_from_payload(payload),
                           seq=record["seq"])

    @staticmethod
    def _event_from_payload(payload: Dict[str, Any]) -> FaultEvent:
        return FaultEvent(time=payload["time"],
                          target=FaultTarget.parse(payload["target"]),
                          action=payload["action"],
                          factor=payload["factor"])

    # -- ingress -------------------------------------------------------------

    def submit_admission(self, request: TenantRequest, now: float,
                         deadline: Optional[float] = None,
                         attempt: int = 0,
                         source: Optional[int] = None
                         ) -> Tuple[str, Optional[float]]:
        """Offer an admission request; returns ``(status, retry_after)``
        where status is ``"queued"`` or ``"rejected"`` (backpressure)."""
        if deadline is None:
            deadline = now + self.admission_timeout
        seq = self.wal.log_enq(
            "admit", now,
            {"request": dump_request(request), "attempt": attempt},
            deadline=deadline, source=source)
        item = IngressItem(Priority.ADMIT, now, request, seq=seq,
                           deadline=deadline, attempt=attempt)
        retry_after = self.queue.offer(item)
        if retry_after is not None:
            self._log_done(seq, now, "rejected", reason="backpressure",
                           retry_after=retry_after)
            self.metrics.rejected_backpressure += 1
            self._emit_ingress(now, seq, "admit", "rejected",
                               retry_after)
            return "rejected", retry_after
        self._emit_ingress(now, seq, "admit", "queued", None)
        return "queued", None

    def submit_departure(self, tenant_id: int, now: float,
                         source: Optional[int] = None) -> None:
        """Queue a tenant departure (never rejected, never shed)."""
        seq = self.wal.log_enq("depart", now, {"tenant_id": tenant_id},
                               source=source)
        self.queue.offer(IngressItem(Priority.DEPARTURE, now, tenant_id,
                                     seq=seq))
        self._emit_ingress(now, seq, "depart", "queued", None)

    def submit_fault(self, event: FaultEvent,
                     now: Optional[float] = None,
                     source: Optional[int] = None) -> None:
        """Queue a fault/repair event (never rejected, never shed)."""
        if now is None:
            now = event.time
        payload = {"time": event.time, "target": event.target.spec,
                   "action": event.action, "factor": event.factor}
        seq = self.wal.log_enq("fault", now, payload, source=source)
        self.queue.offer(IngressItem(Priority.FAULT, now, event,
                                     seq=seq))
        self._emit_ingress(now, seq, "fault", "queued", None)

    # -- the scheduling round ------------------------------------------------

    def tick(self, now: float) -> Dict[str, int]:
        """One scheduling round at virtual time ``now``.

        Processes every pending fault, then every pending departure,
        then up to ``batch_size`` admissions as one amortized batch.
        Returns counts per outcome for this round.
        """
        self.metrics.ticks += 1
        counts = {"admitted": 0, "rejected": 0, "shed": 0, "expired": 0,
                  "departed": 0, "faults": 0}
        while self.queue._faults or self.queue._departures:
            item = self.queue.pop()
            if item.priority is Priority.FAULT:
                self._process_fault(item, now)
                counts["faults"] += 1
            else:
                self._process_departure(item, now)
                counts["departed"] += 1
        # Trim forced overshoot (crash-recovery re-enqueue) back to the
        # bound; oldest deadline goes first.
        for item in self.queue.shed(self.queue.capacity):
            retry_after = self.queue.retry_after(item.attempt)
            self._log_done(item.seq, now, "shed",
                           retry_after=retry_after)
            self.metrics.shed += 1
            counts["shed"] += 1
            self._emit_decision(now, item, "shed")
        batch = self.queue.pop_admissions(self.batch_size)
        live: List[IngressItem] = []
        for item in batch:
            if item.deadline is not None and item.deadline < now:
                self._log_done(item.seq, now, "expired")
                self.metrics.expired += 1
                counts["expired"] += 1
                self._emit_decision(now, item, "expired")
            else:
                live.append(item)
        self._in_flight = list(live)
        placements = self.cluster.place_batch(
            [item.payload for item in live], now=now)
        still_in_flight = {id(item) for item in self._in_flight}
        for item, placement in zip(live, placements):
            if id(item) not in still_in_flight:
                continue  # re-queued by a mid-batch shard cordon
            request = item.payload
            if placement is not None:
                owner = self.cluster.owner[request.tenant_id]
                self._log_done(item.seq, now, "admitted", owner=owner,
                               vm_servers=list(placement.vm_servers))
                self.metrics.admitted += 1
                counts["admitted"] += 1
                outcome = "admitted"
            else:
                self._log_done(item.seq, now, "rejected",
                               reason="admission")
                self.metrics.rejected_admission += 1
                counts["rejected"] += 1
                outcome = "rejected"
            self.metrics.admission_latencies.append(
                now - item.enqueued_at)
            self._emit_decision(now, item, outcome)
        self._in_flight = []
        self._maybe_snapshot(now)
        return counts

    def _process_fault(self, item: IngressItem, now: float) -> None:
        event: FaultEvent = item.payload
        before = set(self.cluster.cordoned_shards)
        self.cluster.apply_fault(event, now=now)
        if self.cluster.cordoned_shards - before:
            self._requeue_in_flight()
        self._log_done(item.seq, now, "fault", target=event.target.spec)
        self.metrics.faults += 1
        if self.tracer is not None:
            self.tracer.emit(FaultInjected(time=now,
                                           target=event.target.spec,
                                           action=event.action,
                                           factor=event.factor))
        self._emit_decision(now, item, "fault")

    def _process_departure(self, item: IngressItem, now: float) -> None:
        tenant_id: int = item.payload
        try:
            self.cluster.depart(tenant_id, now=now)
            outcome = "departed"
        except KeyError:
            outcome = "unknown"
        self._log_done(item.seq, now, outcome)
        self.metrics.departed += 1
        self._emit_decision(now, item, outcome)

    def _requeue_in_flight(self) -> None:
        """Push the in-flight admission batch back into the queue.

        Called when a fault cordons a whole shard: decisions taken for
        the rest of the batch must see the post-fault books, so the
        batch re-runs.  Intents stay open (no ``done`` yet), so the WAL
        needs no compensation record.
        """
        items, self._in_flight = self._in_flight, []
        for item in items:
            self.queue.offer(item, force=True)

    # -- persistence ---------------------------------------------------------

    def _log_done(self, seq: int, now: float, outcome: str,
                  **extra: Any) -> None:
        self.wal.log_done(seq, now, outcome, **extra)
        self._done_count += 1
        self._done_since_snapshot += 1

    def _maybe_snapshot(self, now: float) -> None:
        if (self.snapshot_every > 0
                and self._done_since_snapshot >= self.snapshot_every):
            self.snapshot(now)

    def snapshot(self, now: float) -> str:
        """Checkpoint the books; returns their digest."""
        state = {"time": now, "done_count": self._done_count,
                 "cluster": self.cluster.dump_state()}
        self.snapshots.save(state)
        self._done_since_snapshot = 0
        self.metrics.snapshots += 1
        digest = self.cluster.state_digest()
        if self.tracer is not None:
            self.tracer.emit(ServiceSnapshot(time=now,
                                             last_seq=self._done_count,
                                             digest=digest))
        return digest

    def state_digest(self) -> str:
        """The books' identity certificate (see
        :meth:`ShardedCluster.state_digest`)."""
        return self.cluster.state_digest()

    def close(self) -> None:
        """Graceful shutdown: close the write-ahead log."""
        self.wal.close()

    # -- obs -----------------------------------------------------------------

    def _emit_ingress(self, now: float, seq: int, op: str, outcome: str,
                      retry_after: Optional[float]) -> None:
        if self.tracer is not None:
            self.tracer.emit(ServiceIngress(
                time=now, seq=seq, op=op, outcome=outcome,
                depth=len(self.queue), retry_after=retry_after))

    def _emit_decision(self, now: float, item: IngressItem,
                       outcome: str) -> None:
        if self.on_decision is not None:
            self.on_decision(item, outcome, now)
        if self.tracer is not None:
            op = {Priority.ADMIT: "admit",
                  Priority.DEPARTURE: "depart",
                  Priority.FAULT: "fault"}[item.priority]
            tenant_id = None
            if item.priority is Priority.ADMIT:
                tenant_id = item.payload.tenant_id
            elif item.priority is Priority.DEPARTURE:
                tenant_id = item.payload
            self.tracer.emit(ServiceDecision(
                time=now, seq=item.seq, op=op, outcome=outcome,
                latency=now - item.enqueued_at, tenant_id=tenant_id))
