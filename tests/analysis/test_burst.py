"""The Fig. 5 burst-convergence arithmetic."""

import pytest

from repro import units
from repro.analysis.burst import burst_convergence, worst_port_backlog
from repro.core.guarantees import NetworkGuarantee
from repro.topology import TreeTopology


@pytest.fixture
def topo():
    return TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        buffer_bytes=300 * units.KB)


@pytest.fixture
def guarantee():
    return NetworkGuarantee(bandwidth=units.gbps(1), burst=100 * units.KB,
                            delay=units.msec(1), peak_rate=units.gbps(10))


class TestPaperNumbers:
    def test_bandwidth_aware_441_needs_400kb(self, topo, guarantee):
        backlog, worst = worst_port_backlog(topo, {0: 4, 1: 4, 2: 1},
                                            guarantee)
        # 8 VMs x 100 KB arriving from two 10G servers into one 10G port.
        assert worst.burst_bytes == pytest.approx(800 * units.KB)
        assert worst.arrival_rate == pytest.approx(units.gbps(20))
        assert backlog == pytest.approx(400 * units.KB)
        assert worst.overflows

    def test_balanced_333_needs_300kb(self, topo, guarantee):
        backlog, worst = worst_port_backlog(topo, {0: 3, 1: 3, 2: 3},
                                            guarantee)
        assert worst.burst_bytes == pytest.approx(600 * units.KB)
        assert backlog == pytest.approx(300 * units.KB)
        assert not worst.overflows


class TestGeneralBehaviour:
    def test_line_rate_arrival_never_queues(self, topo):
        slow = NetworkGuarantee(bandwidth=units.mbps(100),
                                burst=100 * units.KB,
                                peak_rate=units.gbps(10))
        # One sender behind one NIC: arrives at 10G, drains at 10G.
        bursts = burst_convergence(topo, {0: 1, 1: 1}, slow)
        assert all(b.backlog_bytes == 0.0 for b in bursts)

    def test_single_server_placement_rejected(self, topo, guarantee):
        with pytest.raises(ValueError):
            worst_port_backlog(topo, {0: 9}, guarantee)

    def test_cross_rack_ports_included(self, guarantee):
        wide = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=2,
                            slots_per_server=8, link_rate=units.gbps(10))
        bursts = burst_convergence(wide, {0: 4, 2: 4}, guarantee)
        kinds = {b.port.kind.value for b in bursts}
        assert "tor-up" in kinds
        assert "agg-down" in kinds

    def test_peak_rate_caps_arrival(self, topo):
        gentle = NetworkGuarantee(bandwidth=units.mbps(100),
                                  burst=100 * units.KB,
                                  peak_rate=units.gbps(2))
        bursts = burst_convergence(topo, {0: 2, 1: 2, 2: 2}, gentle)
        for b in bursts:
            assert b.arrival_rate <= 4 * units.gbps(2) + 1e-6
