"""Tenant requests, placements, and the SiloController facade."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.silo import SiloController
from repro.core.tenant import Placement, TenantClass, TenantRequest
from repro.topology import TreeTopology


def guarantee(**kwargs):
    defaults = dict(bandwidth=units.gbps(0.5), burst=15 * units.KB,
                    delay=units.msec(1), peak_rate=units.gbps(10))
    defaults.update(kwargs)
    return NetworkGuarantee(**defaults)


class TestTenantRequest:
    def test_ids_are_unique(self):
        a = TenantRequest(n_vms=2, guarantee=guarantee())
        b = TenantRequest(n_vms=2, guarantee=guarantee())
        assert a.tenant_id != b.tenant_id

    def test_default_name(self):
        request = TenantRequest(n_vms=2, guarantee=guarantee())
        assert request.name == f"tenant-{request.tenant_id}"

    def test_best_effort_may_omit_guarantee(self):
        request = TenantRequest(n_vms=2, guarantee=None,
                                tenant_class=TenantClass.BEST_EFFORT)
        assert not request.wants_delay

    def test_guaranteed_class_requires_guarantee(self):
        with pytest.raises(ValueError):
            TenantRequest(n_vms=2, guarantee=None,
                          tenant_class=TenantClass.CLASS_A)

    def test_needs_vms(self):
        with pytest.raises(ValueError):
            TenantRequest(n_vms=0, guarantee=guarantee())


class TestPlacement:
    def test_vm_count_must_match(self):
        request = TenantRequest(n_vms=3, guarantee=guarantee())
        with pytest.raises(ValueError):
            Placement(request=request, vm_servers=[0, 1])

    def test_vms_per_server(self):
        request = TenantRequest(n_vms=4, guarantee=guarantee())
        placement = Placement(request=request, vm_servers=[0, 0, 1, 2])
        assert placement.vms_per_server() == {0: 2, 1: 1, 2: 1}

    def test_server_pairs(self):
        request = TenantRequest(n_vms=3, guarantee=guarantee())
        placement = Placement(request=request, vm_servers=[0, 1, 1])
        assert set(placement.server_pairs()) == {(0, 1), (1, 0)}


class TestSiloController:
    @pytest.fixture
    def controller(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                            slots_per_server=4,
                            link_rate=units.gbps(10))
        return SiloController(topo)

    def test_admit_and_release(self, controller):
        request = TenantRequest(n_vms=6, guarantee=guarantee(),
                                tenant_class=TenantClass.CLASS_A)
        admitted = controller.admit(request)
        assert admitted is not None
        assert admitted.pacer_config.bandwidth == units.gbps(0.5)
        assert controller.occupancy > 0
        controller.release(request.tenant_id)
        assert controller.occupancy == 0

    def test_latency_bound_query(self, controller):
        request = TenantRequest(n_vms=4, guarantee=guarantee())
        controller.admit(request)
        bound = controller.message_latency_bound(request.tenant_id,
                                                 10 * units.KB)
        assert bound == pytest.approx(request.guarantee
                                      .message_latency_bound(10 * units.KB))

    def test_latency_bound_unknown_tenant(self, controller):
        with pytest.raises(KeyError):
            controller.message_latency_bound(999999, 1.0)

    def test_release_unknown(self, controller):
        with pytest.raises(KeyError):
            controller.release(999999)

    def test_rejection_returns_none(self, controller):
        huge = TenantRequest(n_vms=1000, guarantee=guarantee())
        assert controller.admit(huge) is None

    def test_worst_queue_bound_tracks_admissions(self, controller):
        base = controller.worst_queue_bound()
        request = TenantRequest(n_vms=8, guarantee=guarantee())
        controller.admit(request)
        assert controller.worst_queue_bound() >= base
