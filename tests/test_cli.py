"""The command-line interface."""

import argparse
import csv
import json
import os
import shlex
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO = Path(__file__).resolve().parent.parent


def campaign_artifacts(out_dir, cell=0):
    """Map artifact file name -> path for one cell of a campaign dir."""
    manifest = json.loads((out_dir / "manifest.json").read_text())
    return {path.rsplit("/", 1)[-1]: out_dir / path
            for path in manifest["cells"][cell]["artifacts"]}


class TestAdmit:
    def test_admit_prints_placement_and_bounds(self, capsys):
        code = main(["admit", "--vms", "6", "--pods", "1",
                     "--racks-per-pod", "2", "--servers-per-rack", "4",
                     "--slots", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ADMITTED 6 VMs" in out
        assert "latency bound" in out

    def test_admit_rejects_oversized_tenant(self, capsys):
        code = main(["admit", "--vms", "1000", "--pods", "1",
                     "--racks-per-pod", "1", "--servers-per-rack", "2",
                     "--slots", "4"])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out


class TestBounds:
    def test_bounds_table(self, capsys):
        code = main(["bounds", "--bandwidth-mbps", "250",
                     "--burst-kb", "15", "--delay-us", "1000",
                     "--bmax-gbps", "1"])
        out = capsys.readouterr().out
        assert code == 0
        # Rows for small and large messages, monotone bounds.
        lines = [l for l in out.splitlines() if "KB" in l and "ms" in l]
        assert len(lines) >= 8


class TestPace:
    def test_pace_reports_wire_split(self, capsys):
        code = main(["pace", "--rate-gbps", "2", "--packets", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "void" in out
        assert "pacing error" in out


class TestChurn:
    def test_churn_runs_three_policies(self, capsys):
        code = main(["churn", "--pods", "1", "--racks-per-pod", "2",
                     "--servers-per-rack", "4", "--slots", "4",
                     "--horizon", "10", "--occupancy", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        for policy in ("locality", "oktopus", "silo"):
            assert policy in out


class TestTrace:
    def test_trace_emits_plottable_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "run"
        code = main(["trace", "--duration-ms", "5", "--seed", "3",
                     "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "p99=" in out
        artifacts = campaign_artifacts(out_dir)
        events = artifacts["events.jsonl"]
        latency = artifacts["latency.csv"]
        queues = artifacts["queues.csv"]
        admission = artifacts["admission.csv"]
        for artifact in (events, latency, queues, admission):
            assert artifact.exists(), artifact
        # Every event line is a JSON object with a registered kind.
        lines = events.read_text().splitlines()
        assert lines
        kinds = {json.loads(l)["kind"] for l in lines}
        assert "flow.finish" in kinds
        assert "admission" in kinds
        # The latency CSV alone reconstructs per-tenant percentiles.
        rows = list(csv.DictReader(latency.open()))
        assert rows
        assert {"tenant_id", "latency"} <= set(rows[0])
        assert all(float(r["latency"]) > 0 for r in rows)
        # The queue CSV gives (port, time, depth) triples.
        qrows = list(csv.DictReader(queues.open()))
        assert qrows
        assert {"port", "time", "mean", "max"} <= set(qrows[0])

    def test_trace_without_out_uses_ring_buffer(self, capsys):
        code = main(["trace", "--duration-ms", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "traced" in out and "events" in out

    def test_churn_trace_out_writes_per_policy_files(self, capsys,
                                                     tmp_path):
        prefix = str(tmp_path / "churn")
        code = main(["churn", "--pods", "1", "--racks-per-pod", "2",
                     "--servers-per-rack", "4", "--slots", "4",
                     "--horizon", "5", "--occupancy", "0.5",
                     "--trace-out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "admitted=" in out  # the audit summary line
        for policy in ("locality", "oktopus", "silo"):
            assert (tmp_path / f"churn.{policy}.events.jsonl").exists()
            assert (tmp_path / f"churn.{policy}.admission.csv").exists()
            assert (tmp_path / f"churn.{policy}.util.csv").exists()

    def test_pace_trace_out_writes_stamp_events(self, capsys, tmp_path):
        path = str(tmp_path / "pace.jsonl")
        code = main(["pace", "--rate-gbps", "2", "--packets", "50",
                     "--trace-out", path])
        assert code == 0
        kinds = [json.loads(l)["kind"]
                 for l in open(path).read().splitlines()]
        assert "pacer.stamp" in kinds
        assert "pacer.void" in kinds


SMALL_TOPO = ["--pods", "1", "--racks-per-pod", "2",
              "--servers-per-rack", "4", "--slots", "4"]


class TestFaults:
    def test_faults_campaign_emits_csvs(self, capsys, tmp_path):
        out_dir = tmp_path / "f"
        code = main(["faults", *SMALL_TOPO, "--duration-ms", "50",
                     "--seed", "7", "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fault events" in out
        artifacts = campaign_artifacts(out_dir)
        faults = list(csv.DictReader(open(artifacts["faults.csv"])))
        assert {"time", "target", "action", "factor", "affected",
                "recovered", "degraded", "evicted"} <= set(faults[0])
        recovery = list(csv.DictReader(open(artifacts["recovery.csv"])))
        for row in recovery:
            assert row["outcome"] in ("recovered", "degraded", "evicted")
        # Every recovery event also landed in the JSONL stream.
        kinds = [json.loads(l)["kind"]
                 for l in open(artifacts["events.jsonl"])]
        assert kinds.count("fault.recovery") >= len(recovery)

    def test_same_seed_runs_are_byte_identical(self, capsys, tmp_path):
        def run(out_dir):
            assert main(["faults", *SMALL_TOPO, "--duration-ms", "50",
                         "--seed", "7", "--out", str(out_dir)]) == 0
            capsys.readouterr()
            artifacts = campaign_artifacts(out_dir)
            return (artifacts["faults.csv"].read_bytes(),
                    artifacts["recovery.csv"].read_bytes())

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert first == second
        assert first[0] and first[1]

    def test_different_seed_changes_the_schedule(self, capsys, tmp_path):
        def run(out_dir, seed):
            assert main(["faults", *SMALL_TOPO, "--duration-ms", "50",
                         "--seed", seed, "--out", str(out_dir)]) == 0
            capsys.readouterr()
            return campaign_artifacts(out_dir)["faults.csv"].read_bytes()

        assert run(tmp_path / "a", "7") != run(tmp_path / "b", "8")

    def test_empty_schedule_touches_nothing(self, capsys, tmp_path):
        out_dir = tmp_path / "f"
        code = main(["faults", *SMALL_TOPO, "--faults", "none",
                     "--duration-ms", "10", "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed 0 fault events" in out
        recovery = campaign_artifacts(out_dir)["recovery.csv"]
        assert list(csv.DictReader(open(recovery))) == []

    def test_churn_with_faults_writes_recovery_csvs(self, capsys,
                                                    tmp_path):
        prefix = str(tmp_path / "churn")
        code = main(["churn", *SMALL_TOPO, "--horizon", "5",
                     "--occupancy", "0.5", "--seed", "2",
                     "--faults", "poisson:mtbf_ms=500,mttr_ms=200",
                     "--trace-out", prefix])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults: affected=" in out
        for policy in ("locality", "oktopus", "silo"):
            path = tmp_path / f"churn.{policy}.recovery.csv"
            assert path.exists(), path

    def test_trace_with_faults_reports_and_dumps_schedule(self, capsys,
                                                          tmp_path):
        out_dir = tmp_path / "tr"
        code = main(["trace", "--duration-ms", "5", "--seed", "3",
                     "--faults", "poisson:mtbf_ms=2,mttr_ms=1",
                     "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults: applied=" in out
        faults = campaign_artifacts(out_dir)["faults.csv"]
        rows = list(csv.DictReader(open(faults)))
        assert rows
        assert {"time", "target", "action", "factor"} <= set(rows[0])

class TestCampaignCommand:
    def test_list_prints_registered_sweeps(self, capsys):
        assert main(["campaign", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig15", "fig16", "table1", "failure-recovery"):
            assert name in out

    def test_needs_exactly_one_spec_source_and_an_out(self, capsys,
                                                      tmp_path):
        assert main(["campaign", "--out", str(tmp_path / "c")]) == 2
        assert main(["campaign", "--name", "fig15-micro", "--spec", "x",
                     "--out", str(tmp_path / "c")]) == 2
        assert main(["campaign", "--name", "fig15-micro"]) == 2

    def test_named_sweep_crashes_and_resumes(self, capsys, tmp_path):
        out_dir = tmp_path / "c"
        code = main(["campaign", "--name", "fig15-micro",
                     "--out", str(out_dir), "--max-cells", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stopped after 2/6 cells" in out
        # A partial run leaves checkpoints but no manifest.
        assert not (out_dir / "manifest.json").exists()
        assert len(list((out_dir / "cells").glob("*.json"))) == 2
        code = main(["campaign", "--name", "fig15-micro",
                     "--out", str(out_dir), "--resume"])
        assert code == 0
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert len(manifest["cells"]) == 6


class TestReportCommand:
    @staticmethod
    def _write_fig15_campaign(campaigns):
        cells = [{"params": {"load": load, "policy": policy},
                  "result": {"total": 0.5}}
                 for load in ("moderate", "high")
                 for policy in ("locality", "oktopus", "silo")]
        fig15 = campaigns / "fig15"
        fig15.mkdir(parents=True)
        (fig15 / "merged.json").write_text(json.dumps({"cells": cells}))

    def test_check_flags_stale_doc_and_update_fixes_it(self, capsys,
                                                       tmp_path):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("# doc\n\n<!-- begin:fig15 -->\nstale\n"
                       "<!-- end:fig15 -->\n")
        campaigns = tmp_path / "campaigns"
        self._write_fig15_campaign(campaigns)
        args = ["report", "--doc", str(doc), "--campaigns",
                str(campaigns)]
        assert main([*args, "--check"]) == 1
        assert "stale" in doc.read_text()  # --check never writes
        assert main(args) == 0
        assert "| locality | 50.0% | 50.0% |" in doc.read_text()
        assert main([*args, "--check"]) == 0


class TestChurnCampaign:
    def test_churn_out_merges_multi_seed_series(self, capsys, tmp_path):
        out_dir = tmp_path / "c"
        code = main(["churn", *SMALL_TOPO, "--horizon", "5",
                     "--occupancy", "0.5", "--seeds", "1", "2",
                     "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "pooled over 2 seeds" in out
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert len(manifest["cells"]) == 6  # 3 policies x 2 seeds
        for policy in ("locality", "oktopus", "silo"):
            merged = out_dir / f"merged.util.{policy}.csv"
            rows = list(csv.DictReader(open(merged)))
            assert rows
            assert {"time", "count", "mean", "max"} <= set(rows[0])

    def test_churn_same_seed_is_byte_identical_across_processes(
            self, tmp_path):
        # Tenant ids come from a process-global counter, so cross-run
        # identity is checked in fresh interpreters.
        def run(sub):
            prefix = str(tmp_path / sub / "c")
            (tmp_path / sub).mkdir()
            subprocess.run(
                [sys.executable, "-m", "repro", "churn", *SMALL_TOPO,
                 "--horizon", "5", "--occupancy", "0.5", "--seed", "4",
                 "--faults", "poisson:mtbf_ms=500,mttr_ms=200",
                 "--trace-out", prefix],
                check=True, capture_output=True)
            return b"".join(
                open(f"{prefix}.{p}.{kind}", "rb").read()
                for p in ("locality", "oktopus", "silo")
                for kind in ("admission.csv", "recovery.csv", "util.csv"))

        assert run("a") == run("b")


def readme_cli_commands():
    """The commands between README's ``cli-examples`` markers."""
    text = (REPO / "README.md").read_text(encoding="utf-8")
    block = text.split("<!-- cli-examples:begin -->")[1]
    block = block.split("<!-- cli-examples:end -->")[0]
    commands, pending = [], ""
    for line in block.splitlines():
        line = line.strip()
        if not line or line.startswith(("#", "```")):
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        commands.append(pending + line)
        pending = ""
    return commands


class TestSpecErrorContract:
    """Malformed specs exit 2 with a one-line diagnostic that names
    the offending field -- never a traceback."""

    def check(self, capsys, argv, *needles):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert err.startswith("error: bad ")
        assert "Traceback" not in err
        for needle in needles:
            assert needle in err, (needle, err)

    def test_bad_inline_faults_key(self, capsys):
        self.check(capsys,
                   ["churn", *SMALL_TOPO, "--horizon", "5",
                    "--faults", "poisson:mtbfms=5"],
                   "--faults", "mtbfms")

    def test_bad_inline_faults_fragment(self, capsys):
        self.check(capsys,
                   ["trace", "--duration-ms", "5",
                    "--faults", "poisson:mtbf_ms"],
                   "--faults", "want k=v")

    def test_bad_faults_file_target(self, capsys, tmp_path):
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps(
            {"events": [{"time": 1.0, "target": "servr:0",
                         "action": "down"}]}))
        self.check(capsys,
                   ["faults", *SMALL_TOPO, "--duration-ms", "10",
                    "--faults", str(spec), "--out",
                    str(tmp_path / "out")],
                   "--faults", "servr:0")

    def test_missing_faults_file(self, capsys, tmp_path):
        self.check(capsys,
                   ["serve", "--data-dir", str(tmp_path / "d"),
                    "--horizon", "1",
                    "--faults", str(tmp_path / "nope.json")],
                   "--faults", "nope.json")

    def test_bad_campaign_spec_field(self, capsys, tmp_path):
        spec = tmp_path / "sweep.json"
        spec.write_text(json.dumps(
            {"name": "x", "scenario": "churn_cell",
             "grids": {"occupancy": [0.5]}}))
        self.check(capsys,
                   ["campaign", "--spec", str(spec),
                    "--out", str(tmp_path / "c")],
                   "--spec", "grids")

    def test_unknown_named_sweep(self, capsys, tmp_path):
        self.check(capsys,
                   ["campaign", "--name", "no-such-sweep",
                    "--out", str(tmp_path / "c")],
                   "--name", "no-such-sweep")

    def test_no_traceback_on_stderr_via_subprocess(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "churn", "--horizon", "2",
             "--faults", "poisson:mtbfms=5"],
            capture_output=True, text=True, cwd=REPO, env=env)
        assert proc.returncode == 2
        assert proc.stderr.count("\n") == 1
        assert "Traceback" not in proc.stderr


class TestServe:
    def serve_argv(self, data_dir, *extra):
        return ["serve", "--data-dir", str(data_dir), *SMALL_TOPO,
                "--arrival-rate", "20", "--horizon", "2",
                "--seed", "5", *extra]

    def test_serve_prints_json_summary(self, capsys, tmp_path):
        code = main(self.serve_argv(tmp_path / "svc"))
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        assert summary["metrics"]["admitted"] > 0
        assert summary["digest"]
        assert (tmp_path / "svc" / "wal.jsonl").is_file()

    def test_kill_restart_check_digest(self, tmp_path):
        env = dict(os.environ, PYTHONPATH="src")
        data_dir = tmp_path / "svc"
        argv = [sys.executable, "-m", "repro"] + self.serve_argv(
            data_dir, "--faults",
            "poisson:mtbf_ms=400,mttr_ms=250,targets=server")
        killed = subprocess.run(argv + ["--kill-after", "15"],
                                capture_output=True, text=True,
                                cwd=REPO, env=env)
        assert killed.returncode == -signal.SIGKILL
        assert (data_dir / "digest.txt").is_file()
        reborn = subprocess.run(argv + ["--check-digest"],
                                capture_output=True, text=True,
                                cwd=REPO, env=env)
        assert reborn.returncode == 0, reborn.stderr
        assert "recovery OK" in reborn.stderr
        summary = json.loads(reborn.stdout)
        assert summary["digest"]

    def test_check_digest_without_kill_exits_2(self, capsys, tmp_path):
        code = main(self.serve_argv(tmp_path / "svc",
                                    "--check-digest"))
        err = capsys.readouterr().err
        assert code == 2
        assert "no pre-kill digest" in err


class TestReadmeExamples:
    """README's CLI section stays runnable and complete."""

    def test_every_subcommand_has_an_example(self):
        sub = next(a for a in build_parser()._actions
                   if isinstance(a, argparse._SubParsersAction))
        documented = {shlex.split(c)[3] for c in readme_cli_commands()}
        assert documented == set(sub.choices)

    @pytest.mark.parametrize(
        "command", readme_cli_commands(),
        ids=lambda c: shlex.split(c)[3])
    def test_example_runs_verbatim(self, command, tmp_path):
        argv = shlex.split(command.replace("/tmp/repro-demo",
                                           str(tmp_path)))
        assert argv[:3] == ["python", "-m", "repro"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p)
        # cwd=REPO so `report --check` sees campaigns/ + EXPERIMENTS.md.
        proc = subprocess.run([sys.executable, *argv[1:]], cwd=REPO,
                              env=env, capture_output=True, text=True,
                              timeout=300)
        assert proc.returncode == 0, proc.stderr


class TestWhatIf:
    """The surrogate estimator subcommand: model loading, calibration,
    and the spec-error contract for both sources."""

    MODEL = REPO / "campaigns" / "whatif-error" / "model.json"
    CALIBRATION = REPO / "campaigns" / "whatif-error" / "calibration"

    def check_spec_error(self, capsys, argv, *needles):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert err.startswith("error: bad ")
        assert "Traceback" not in err
        for needle in needles:
            assert needle in err, (needle, err)

    def test_needs_exactly_one_source(self, capsys):
        assert main(["whatif"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["whatif", "--model", str(self.MODEL),
                     "--calibrate", str(self.CALIBRATION)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_missing_model_is_a_spec_error(self, capsys, tmp_path):
        self.check_spec_error(
            capsys, ["whatif", "--model", str(tmp_path / "nope.json")],
            "--model", "nope.json")

    def test_unsupported_model_format_is_a_spec_error(self, capsys,
                                                      tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": 99}))
        self.check_spec_error(capsys,
                              ["whatif", "--model", str(bad)],
                              "--model", "format")

    def test_bad_calibration_dir_is_a_spec_error(self, capsys,
                                                 tmp_path):
        self.check_spec_error(
            capsys, ["whatif", "--calibrate", str(tmp_path)],
            "--calibrate", "neither")

    def test_committed_model_scores_a_placement(self, capsys):
        code = main(["whatif", "--model", str(self.MODEL),
                     "--message-kb", "25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "25KB messages" in out
        assert "p99=" in out
        assert "worst-case bound" in out

    def test_calibrate_fits_and_saves(self, capsys, tmp_path):
        model_path = tmp_path / "model.json"
        code = main(["whatif", "--calibrate", str(self.CALIBRATION),
                     "--save-model", str(model_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "calibrated on 1 trace(s)" in out
        assert model_path.is_file()
        # The saved model round-trips through --model.
        assert main(["whatif", "--model", str(model_path)]) == 0
