"""Tenant jobs and their flows for the fluid simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.tenant import Placement, TenantRequest

#: Flows count as drained below this many bytes: sub-microbyte residue
#: from rate * dt accounting, far below one packet, never real payload.
#: Must match ``repro.flowsim.sim._DONE_EPS``.
_DONE_EPS = 1e-6


class FlowTable:
    """Columnar storage for the mutable per-flow fluid state.

    ``remaining`` / ``rate`` / ``updated`` live in parallel numpy arrays
    indexed by a slot id, so the simulator can advance or re-rate whole
    batches of flows as array operations instead of per-object attribute
    writes.  :class:`FlowState` objects adopted into a table become
    views: their scalar fields proxy the arrays.  Released slots go on a
    free list and are recycled.

    numpy float64 element-wise arithmetic is IEEE double arithmetic, so
    values stored here are bit-identical to the scalar attributes they
    replace; callers must not cache the column arrays across an
    :meth:`adopt` (growth reallocates them).
    """

    __slots__ = ("remaining", "rate", "updated", "_free", "_high")

    def __init__(self, capacity: int = 256) -> None:
        capacity = max(int(capacity), 1)
        self.remaining = np.zeros(capacity, dtype=np.float64)
        self.rate = np.zeros(capacity, dtype=np.float64)
        self.updated = np.zeros(capacity, dtype=np.float64)
        self._free: List[int] = []
        self._high = 0  # next never-used slot

    def __len__(self) -> int:
        return self._high - len(self._free)

    def _alloc(self) -> int:
        if self._free:
            return self._free.pop()
        if self._high == len(self.remaining):
            new_cap = 2 * self._high
            for name in ("remaining", "rate", "updated"):
                column = getattr(self, name)
                grown = np.zeros(new_cap, dtype=np.float64)
                grown[:self._high] = column
                setattr(self, name, grown)
        slot = self._high
        self._high += 1
        return slot

    def adopt(self, flow: "FlowState") -> None:
        """Move ``flow``'s scalar state into the table."""
        if flow._table is not None:
            raise ValueError("flow already attached to a table")
        slot = self._alloc()
        self.remaining[slot] = flow._remaining
        self.rate[slot] = flow._rate
        self.updated[slot] = flow._updated
        flow._table = self
        flow._slot = slot

    def release(self, flow: "FlowState") -> None:
        """Detach ``flow``, copying its state back to scalars."""
        if flow._table is not self:
            raise ValueError("flow not attached to this table")
        slot = flow._slot
        flow._remaining = float(self.remaining[slot])
        flow._rate = float(self.rate[slot])
        flow._updated = float(self.updated[slot])
        flow._table = None
        flow._slot = -1
        self._free.append(slot)


class FlowState:
    """One fluid flow: a VM pair moving ``remaining`` bytes.

    ``links`` are the port ids the flow crosses (used both for max-min
    sharing and utilization accounting); ``rate`` is the current fluid
    rate, re-assigned by the simulator's sharing policy.

    Standalone flows (the reference simulator, unit tests) keep
    ``remaining``/``rate``/``updated`` as plain attributes; flows adopted
    into a :class:`FlowTable` read and write the table's columns through
    the same properties.
    """

    __slots__ = ("tenant_id", "src_vm", "dst_vm", "links", "nominal_rate",
                 "epoch", "key", "_table", "_slot",
                 "_remaining", "_rate", "_updated")

    def __init__(self, tenant_id: int, src_vm: int, dst_vm: int,
                 links: Tuple[int, ...], remaining: float,
                 rate: float = 0.0, nominal_rate: float = 0.0,
                 updated: float = 0.0, epoch: int = 0) -> None:
        self.tenant_id = tenant_id
        self.src_vm = src_vm
        self.dst_vm = dst_vm
        self.links = links
        #: The reserved (hose-split) rate assigned at admission, before
        #: any fault capping; 0 for flows whose rate is dynamically
        #: shared.
        self.nominal_rate = nominal_rate
        #: Simulator bookkeeping: bumped on every rate change to
        #: invalidate finish events scheduled under the old rate.
        self.epoch = epoch
        #: Sharing-solver key assigned by the owning simulator (None for
        #: standalone flows).
        self.key = None
        self._table: Optional[FlowTable] = None
        self._slot = -1
        self._remaining = remaining
        self._rate = rate
        #: Simulator bookkeeping: virtual time ``remaining`` was last
        #: brought up to date (flows advance lazily between rate
        #: changes).
        self._updated = updated

    @property
    def remaining(self) -> float:
        """Bytes still to deliver (table column when adopted)."""
        table = self._table
        if table is None:
            return self._remaining
        return table.remaining[self._slot]

    @remaining.setter
    def remaining(self, value: float) -> None:
        """Set the bytes still to deliver."""
        table = self._table
        if table is None:
            self._remaining = value
        else:
            table.remaining[self._slot] = value

    @property
    def rate(self) -> float:
        """Current fluid rate (table column when adopted)."""
        table = self._table
        if table is None:
            return self._rate
        return table.rate[self._slot]

    @rate.setter
    def rate(self, value: float) -> None:
        """Set the current fluid rate."""
        table = self._table
        if table is None:
            self._rate = value
        else:
            table.rate[self._slot] = value

    @property
    def updated(self) -> float:
        """Virtual time ``remaining`` was last advanced to."""
        table = self._table
        if table is None:
            return self._updated
        return table.updated[self._slot]

    @updated.setter
    def updated(self, value: float) -> None:
        """Set the last-advanced timestamp."""
        table = self._table
        if table is None:
            self._updated = value
        else:
            table.updated[self._slot] = value

    @property
    def done(self) -> bool:
        """Whether the flow has delivered all its bytes."""
        return self.remaining <= _DONE_EPS

    def __repr__(self) -> str:
        return (f"FlowState(tenant_id={self.tenant_id}, "
                f"src_vm={self.src_vm}, dst_vm={self.dst_vm}, "
                f"links={self.links!r}, remaining={self.remaining!r}, "
                f"rate={self.rate!r}, nominal_rate={self.nominal_rate!r}, "
                f"updated={self.updated!r}, epoch={self.epoch})")


@dataclass
class TenantJob:
    """A tenant's unit of work: flows plus a minimum compute time.

    The job (and the tenant) finishes when every flow has drained *and*
    the compute time has elapsed; the tenant then departs and frees its
    slots and reservations (section 6.3's model).
    """

    request: TenantRequest
    placement: Placement
    flows: List[FlowState]
    compute_time: float
    arrival: float
    finish: Optional[float] = None

    @property
    def tenant_id(self) -> int:
        """The owning tenant's id."""
        return self.request.tenant_id

    @property
    def network_done(self) -> bool:
        """Whether every flow of the job has finished."""
        return all(flow.done for flow in self.flows)

    def total_bytes(self) -> float:
        """Bytes still to deliver across the job's flows."""
        return sum(f.remaining for f in self.flows)

    @property
    def duration(self) -> Optional[float]:
        """Arrival-to-finish duration, or None while running."""
        if self.finish is None:
            return None
        return self.finish - self.arrival
