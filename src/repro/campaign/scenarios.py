"""Built-in cell functions and named sweeps.

Every reproduced-figure grid that used to live as a private loop in a
benchmark or CLI command is defined here exactly once: a *scenario*
function that runs one cell from its parameters and seed, and a named
:func:`~repro.campaign.registry.sweep` factory building the full grid
(the benchmark suite, ``python -m repro campaign --name ...`` and CI
all fetch the same object).  Seeds are spec-level: scenario functions
never invent their own -- that is what keeps a serial benchmark run,
an 8-worker CLI campaign and a resumed crash recovery byte-identical.

Scenario result contract: JSON-serializable dicts (the ``fig12``
packet campaign is the exception -- it returns rich in-process objects
and is only run with ``workers=0``).  Scenarios accepting
``artifact_dir`` write their obs sinks and CSVs there when the runner
provides one; each worker process owns its cell's sink, so parallel
runs never interleave trace streams.
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro import units
from repro.campaign.registry import scenario, sweep
from repro.campaign.spec import SweepSpec
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import Placement, TenantClass, TenantRequest

__all__ = [
    "POLICY_MANAGERS", "fig15_cell", "fig16_cell", "fig16_scale_cell",
    "table1_cell",
    "failure_recovery_cell", "fig12_scheme_cell", "churn_cell",
    "trace_cell", "faults_cell", "service_soak_cell",
    "whatif_error_cell", "hybrid_cell",
    "run_campaign_scheme", "SchemeResult",
    "mechanism_compare_cell", "MECHANISM_WORKLOADS", "COMPARE_MECHANISMS",
    "write_csv", "write_recovery_csv",
]


def _policy_manager(policy: str):
    """(manager class, sharing mode) for a placement policy name."""
    from repro.placement import (
        LocalityPlacementManager,
        OktopusPlacementManager,
        SiloPlacementManager,
    )
    managers = {
        "locality": (LocalityPlacementManager, "maxmin"),
        "oktopus": (OktopusPlacementManager, "reserved"),
        "silo": (SiloPlacementManager, "reserved"),
    }
    return managers[policy]


#: Policy names in the order the figure sweeps report them.
POLICY_MANAGERS = ("locality", "oktopus", "silo")


def _two_pod_topology(slots_per_server: int = 4):
    """The 320-slot two-pod tree every section 6.3 sweep runs on."""
    from repro.topology import TreeTopology
    return TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=10,
                        slots_per_server=slots_per_server,
                        link_rate=units.gbps(10), oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


# ---------------------------------------------------------------------------
# CSV helpers shared by the artifact-writing scenarios and the CLI
# ---------------------------------------------------------------------------

def write_csv(path: str, columns, rows) -> None:
    """Dump rows of cells as CSV; ``None`` cells render empty.

    Cells are written with ``str()`` (``repr`` round-trip for floats),
    so same-seed runs produce byte-identical files.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(columns) + "\n")
        for row in rows:
            handle.write(",".join("" if cell is None else str(cell)
                                  for cell in row) + "\n")


_RECOVERY_COLUMNS = ("tenant_id", "n_vms", "tenant_class", "outcome",
                     "lost_at", "recovered_at", "time_to_recover",
                     "guarantee_seconds_lost")


def write_recovery_csv(path: str, report) -> None:
    """Dump a :class:`RecoveryReport` as the standard per-tenant CSV."""
    write_csv(path, _RECOVERY_COLUMNS,
              ([getattr(row, column) for column in _RECOVERY_COLUMNS]
               for row in report.rows))


# ---------------------------------------------------------------------------
# Fig. 15 -- admitted requests by policy and load
# ---------------------------------------------------------------------------

#: Arrival-rate multipliers calibrated to land the reserved policies
#: near the paper's 75% / 90% mean occupancies.
FIG15_LOAD_BOOSTS = {"moderate": 2.2, "high": 4.0}


def _section63_workload_config(permutation_x: float):
    """The workload shape shared by the Fig. 15/16 sweeps.

    Class-A delay is scaled so it binds placement to a rack of *this*
    topology, as the paper's 1 ms bound confined tenants to a sub-tree
    of its fabric.
    """
    from repro.flowsim import WorkloadConfig
    return WorkloadConfig(b_flow_bytes=250 * units.MB,
                          a_flow_bytes=5 * units.MB,
                          mean_compute_time=8.0,
                          a_delay=600 * units.MICROS,
                          permutation_x=permutation_x,
                          mean_vms=10, max_vms=16)


@scenario("fig15_policy")
def fig15_cell(policy: str, load: str, horizon: float,
               seed: int) -> Dict[str, float]:
    """One Fig. 15 cell: a policy's admission under one offered load."""
    from repro.flowsim import ClusterSim, TenantWorkload
    manager_cls, sharing = _policy_manager(policy)
    topo = _two_pod_topology()
    manager = manager_cls(topo)
    workload = TenantWorkload.for_occupancy(
        _section63_workload_config(3), 0.5, topo.n_slots, seed=seed)
    workload.arrival_rate *= FIG15_LOAD_BOOSTS[load]
    sim = ClusterSim(manager, sharing=sharing)
    stats = sim.run(workload, until=horizon)
    return {
        "total": manager.admitted_fraction(),
        "class_a": manager.admitted_fraction(TenantClass.CLASS_A),
        "class_b": manager.admitted_fraction(TenantClass.CLASS_B),
        "occupancy": stats.mean_occupancy,
    }


@sweep("fig15")
def fig15_sweep() -> SweepSpec:
    """The full Fig. 15 grid: 2 loads x 3 policies at seed 31."""
    return SweepSpec(
        name="fig15", scenario="fig15_policy",
        grid={"load": ["moderate", "high"],
              "policy": list(POLICY_MANAGERS)},
        seeds=(31,), fixed={"horizon": 150.0})


@sweep("fig15-micro")
def fig15_micro_sweep() -> SweepSpec:
    """A seconds-scale Fig. 15 grid for CI smoke and identity checks."""
    return SweepSpec(
        name="fig15-micro", scenario="fig15_policy",
        grid={"load": ["moderate", "high"],
              "policy": list(POLICY_MANAGERS)},
        seeds=(31,), fixed={"horizon": 25.0})


# ---------------------------------------------------------------------------
# Fig. 16 -- network utilization vs offered load and traffic density
# ---------------------------------------------------------------------------

@scenario("fig16_cell")
def fig16_cell(policy: str, boost: float, permutation_x: float,
               horizon: float, seed: int) -> Dict[str, float]:
    """One Fig. 16 cell: utilization at one load x density point."""
    from repro.flowsim import ClusterSim, TenantWorkload
    manager_cls, sharing = _policy_manager(policy)
    topo = _two_pod_topology()
    manager = manager_cls(topo)
    workload = TenantWorkload.for_occupancy(
        _section63_workload_config(permutation_x), 0.5, topo.n_slots,
        seed=seed)
    workload.arrival_rate *= boost
    sim = ClusterSim(manager, sharing=sharing)
    stats = sim.run(workload, until=horizon)
    return {"utilization": stats.network_utilization,
            "occupancy": stats.mean_occupancy}


#: Offered-load multipliers for the Fig. 16a sweep, light to heavy.
FIG16_BOOSTS = (0.8, 1.5, 2.2, 4.0)
#: Class-B traffic densities; 3.0 is the Fig. 16a operating point and
#: the rest sweep Fig. 16b.
FIG16_PERMUTATIONS = (0.5, 1.0, 2.0, 3.0, 4.0)


@sweep("fig16")
def fig16_sweep() -> SweepSpec:
    """The full load x density x policy product (both 16a and 16b live
    as slices of it: 16a fixes ``permutation_x=3.0``, 16b fixes
    ``boost=4.0``)."""
    return SweepSpec(
        name="fig16", scenario="fig16_cell",
        grid={"boost": list(FIG16_BOOSTS),
              "permutation_x": list(FIG16_PERMUTATIONS),
              "policy": list(POLICY_MANAGERS)},
        seeds=(47,), fixed={"horizon": 120.0})


@sweep("fig16-micro")
def fig16_micro_sweep() -> SweepSpec:
    """A reduced Fig. 16 grid for CI smoke and --quick benchmarks."""
    return SweepSpec(
        name="fig16-micro", scenario="fig16_cell",
        grid={"boost": [0.8, 4.0],
              "permutation_x": [0.5, 3.0],
              "policy": list(POLICY_MANAGERS)},
        seeds=(47,), fixed={"horizon": 30.0})


#: Server counts for the paper-scale sweep -> (pods, racks per pod);
#: 10 servers/rack and 4 slots/server throughout, so 32000 servers is
#: the paper's own 32K evaluation scale.
FIG16_SCALE_SHAPES = {2000: (8, 25), 8000: (16, 50), 32000: (32, 100)}


@scenario("fig16_scale_cell")
def fig16_scale_cell(policy: str, servers: int, boost: float,
                     permutation_x: float, horizon: float,
                     seed: int) -> Dict[str, float]:
    """One paper-scale Fig. 16 cell: the 16a operating point on a
    datacenter-sized tree.

    Same workload shape and load multiplier as :func:`fig16_cell`, with
    the arrival rate scaled to the larger slot pool by
    ``TenantWorkload.for_occupancy``.  Tractable at 32K servers because
    the fluid simulator's incremental max-min solver re-waterfills only
    the touched component per event and flow state advances as numpy
    array ops (see ``repro.flowsim.sim``).
    """
    from repro.flowsim import ClusterSim, TenantWorkload
    from repro.topology import TreeTopology
    manager_cls, sharing = _policy_manager(policy)
    pods, racks = FIG16_SCALE_SHAPES[servers]
    topo = TreeTopology(n_pods=pods, racks_per_pod=racks,
                        servers_per_rack=10, slots_per_server=4,
                        link_rate=units.gbps(10), oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    manager = manager_cls(topo)
    workload = TenantWorkload.for_occupancy(
        _section63_workload_config(permutation_x), 0.5, topo.n_slots,
        seed=seed)
    workload.arrival_rate *= boost
    sim = ClusterSim(manager, sharing=sharing)
    stats = sim.run(workload, until=horizon)
    durations = stats.job_durations
    return {
        "utilization": float(stats.network_utilization),
        "occupancy": float(stats.mean_occupancy),
        "admitted": float(manager.admitted_fraction()),
        "admitted_class_a":
            float(manager.admitted_fraction(TenantClass.CLASS_A)),
        "admitted_class_b":
            float(manager.admitted_fraction(TenantClass.CLASS_B)),
        "finished_jobs": stats.finished_jobs,
        "mean_job_duration": (float(sum(durations) / len(durations))
                              if durations else 0.0),
        "peak_concurrent_flows": stats.peak_concurrent_flows,
    }


@sweep("fig16-32k")
def fig16_32k_sweep() -> SweepSpec:
    """Fig. 16a's operating point (boost 4.0, x = 3.0) swept from 2K
    servers to the paper's 32K, all three policies."""
    return SweepSpec(
        name="fig16-32k", scenario="fig16_scale_cell",
        grid={"servers": sorted(FIG16_SCALE_SHAPES),
              "policy": list(POLICY_MANAGERS)},
        seeds=(47,),
        fixed={"boost": 4.0, "permutation_x": 3.0, "horizon": 12.0})


# ---------------------------------------------------------------------------
# Table 1 -- late messages vs bandwidth multiple x burst allowance
# ---------------------------------------------------------------------------

TABLE1_MESSAGE = 15 * units.KB
TABLE1_AVG_BANDWIDTH = units.mbps(100)
TABLE1_PEAK = units.gbps(1)
TABLE1_DELAY = units.msec(1)
#: Floating-point slack when scoring a latency (seconds scale ~1e-4)
#: against its bound: far below one ulp of the quantities compared, so
#: equality-after-rounding never counts as late.
_TABLE1_LATE_EPS = 1e-12
#: The paper's grid.
TABLE1_BANDWIDTH_MULTIPLIERS = (1.0, 1.4, 1.8, 2.2, 2.6, 3.0)
TABLE1_BURST_MULTIPLIERS = (1, 3, 5, 7, 9)


@scenario("table1_cell")
def table1_cell(bw_mult: float, burst_mult: float, n_messages: int,
                seed: int) -> Dict[str, float]:
    """One Table 1 cell: fraction of messages later than the guarantee.

    Message latency here is what the token-bucket hierarchy alone
    imposes (transmission through the shaper + the delay guarantee),
    exactly the coupling Table 1 isolates; network queueing is bounded
    separately by placement.
    """
    from repro.pacer.hierarchy import PacerConfig, VMPacer
    rng = random.Random(seed)
    bandwidth = bw_mult * TABLE1_AVG_BANDWIDTH
    burst = burst_mult * TABLE1_MESSAGE
    pacer = VMPacer(PacerConfig(bandwidth=bandwidth, burst=burst,
                                peak_rate=TABLE1_PEAK))
    # Table 1 scores messages against equation 1's guarantee at the
    # *guaranteed* bandwidth: M / B_guaranteed + d.  (The tighter burst-
    # aware bound of section 4.1 equals the uncongested latency exactly,
    # which would count any queueing as late.)
    bound = TABLE1_MESSAGE / bandwidth + TABLE1_DELAY
    mean_gap = TABLE1_MESSAGE / TABLE1_AVG_BANDWIDTH

    now = 0.0
    late = 0
    packets = (int(TABLE1_MESSAGE // units.MTU)
               + (1 if TABLE1_MESSAGE % units.MTU else 0))
    for _ in range(n_messages):
        now += rng.expovariate(1.0 / mean_gap)
        last_release = now
        remaining = TABLE1_MESSAGE
        for _ in range(packets):
            size = min(units.MTU, remaining)
            remaining -= size
            last_release = pacer.stamp("peer", size, now)
        # Latency: last byte released, serialized at Bmax, plus the
        # guaranteed in-network delay.
        latency = ((last_release - now) + units.MTU / TABLE1_PEAK
                   + TABLE1_DELAY)
        if latency > bound + _TABLE1_LATE_EPS:
            late += 1
    return {"late_fraction": late / n_messages}


@sweep("table1")
def table1_sweep() -> SweepSpec:
    """The Table 1 grid; each cell gets its own spec-derived seed."""
    return SweepSpec(
        name="table1", scenario="table1_cell",
        grid={"burst_mult": list(TABLE1_BURST_MULTIPLIERS),
              "bw_mult": list(TABLE1_BANDWIDTH_MULTIPLIERS)},
        seeds=(0,), derive_cell_seeds=True,
        fixed={"n_messages": 4000})


# ---------------------------------------------------------------------------
# Failure-recovery sweep (beyond-paper extension)
# ---------------------------------------------------------------------------

def fill_to_occupancy(manager, occupancy: float, seed: int):
    """Admit workload draws until ``occupancy`` of the slots are used.

    Tenant ids are assigned explicitly (1..n) so identical seeds give
    identical clusters regardless of interpreter history.  Returns
    ``(tenants placed, slots used)``.
    """
    from repro.flowsim import TenantWorkload, WorkloadConfig
    workload = TenantWorkload(WorkloadConfig(), arrival_rate=1.0,
                              seed=seed)
    target = occupancy * manager.topology.n_slots
    placed = used = misses = 0
    next_id = 1
    while used < target and misses < 50:
        draw, _, _ = workload._sample_request()
        request = TenantRequest(n_vms=draw.n_vms, guarantee=draw.guarantee,
                                tenant_class=draw.tenant_class,
                                tenant_id=next_id)
        next_id += 1
        if manager.place(request, now=0.0) is None:
            misses += 1
            continue
        misses = 0
        placed += 1
        used += request.n_vms
    return placed, used


@scenario("failure_recovery")
def failure_recovery_cell(policy: str, mtbf_ms: float, occupancy: float,
                          mttr_s: float, horizon_s: float,
                          seed: int) -> Dict[str, object]:
    """One recovery cell: fill, replay a crash schedule, self-heal.

    Returns pooled-friendly counters plus the raw time-to-recover list
    (the sweep merge pools these over seeds with
    :func:`repro.campaign.merge.sum_counters` / ``pool_values``).
    """
    from repro.faults import FaultSchedule
    from repro.placement import ClusterController
    manager_cls, _sharing = _policy_manager(policy)
    topology = _two_pod_topology(slots_per_server=8)
    manager = manager_cls(topology)
    fill_to_occupancy(manager, occupancy, seed)
    schedule = FaultSchedule.poisson(
        topology, mtbf=mtbf_ms * 1e-3, mttr=mttr_s,
        horizon=horizon_s, seed=seed, target_kinds=("server",))
    controller = ClusterController(manager, retry_evicted=True)
    for event in schedule:
        controller.apply(event, event.time)
    controller.finalize(horizon_s)
    report = controller.report()
    return {
        "affected": len(report.rows),
        "recovered": sum(1 for row in report.rows
                         if row.outcome == "recovered"),
        "degraded": sum(1 for row in report.rows
                        if row.outcome == "degraded"),
        "evicted": sum(1 for row in report.rows
                       if row.outcome == "evicted"),
        "guarantee_seconds_lost": report.guarantee_seconds_lost,
        "recover_times": [row.time_to_recover for row in report.rows
                          if row.time_to_recover is not None],
    }


#: The deterministic sweep grid (MTBF ms, descending = rising rate).
RECOVERY_MTBF_MS = (50.0, 10.0, 2.5)
RECOVERY_SEEDS = (1, 2, 3)
RECOVERY_OCCUPANCY = 0.85
RECOVERY_MTTR_S = 0.05
RECOVERY_HORIZON_S = 0.2


@sweep("failure-recovery")
def failure_recovery_sweep() -> SweepSpec:
    """Failure-rate sweep pooled over seeds {1, 2, 3} (Silo vs Oktopus)."""
    return SweepSpec(
        name="failure-recovery", scenario="failure_recovery",
        grid={"mtbf_ms": list(RECOVERY_MTBF_MS),
              "policy": ["silo", "oktopus"]},
        seeds=RECOVERY_SEEDS,
        fixed={"occupancy": RECOVERY_OCCUPANCY,
               "mttr_s": RECOVERY_MTTR_S,
               "horizon_s": RECOVERY_HORIZON_S})


# ---------------------------------------------------------------------------
# The section 6.2 packet campaign (Figs. 12-14, Tables 3/4)
# ---------------------------------------------------------------------------

#: Scaled-down stand-in for the paper's 10 racks x 40 servers x 8 VMs:
#: the same shape (oversubscribed tree, shallow buffers), sized so the
#: whole six-scheme campaign runs in a few minutes of wall time.
CAMPAIGN_SCHEMES = ("silo", "tcp", "dctcp", "hull", "okto", "okto+")

CLASS_A_GUARANTEE = NetworkGuarantee(
    bandwidth=units.gbps(0.25), burst=15 * units.KB,
    delay=units.msec(1), peak_rate=units.gbps(1))
CLASS_B_GUARANTEE = NetworkGuarantee(
    bandwidth=units.gbps(1.0), burst=1.5 * units.KB)

CLASS_A_MESSAGE = 15 * units.KB
#: Epoch chosen so the all-to-one aggregate stays within the receiver's
#: hose guarantee (5 senders x 15 KB / 3 ms = 25 MB/s < B = 31.25 MB/s):
#: the workload is guarantee-compliant, as the paper's tenants are.
CLASS_A_EPOCH = units.msec(3.0)
CAMPAIGN_DURATION = 0.08
N_CLASS_A = 3
N_CLASS_B = 2
#: Tenant size deliberately indivisible by the 4 VM slots per server, so
#: the locality baseline interleaves tenants across servers and racks --
#: which is what creates cross-tenant contention at the paper's scale.
VMS_PER_TENANT_A = 6
VMS_PER_TENANT_B = 11


@dataclass
class SchemeResult:
    """Everything the Fig. 12-14 / Table 4 benches need from one run."""

    scheme: str
    metrics: object
    class_a_tenants: List[int]
    class_b_tenants: List[int]
    class_a_estimate: float
    class_b_estimates: Dict[int, float]
    drops: int
    rto_fractions: Dict[int, float] = field(default_factory=dict)


def _place_campaign_tenants(scheme: str, topo):
    """Admit the campaign tenants with the scheme's own placement rule.

    Silo and Oktopus(+) place through their managers.  The unmanaged
    baselines (TCP/DCTCP/HULL) get *striped* placement -- tenants
    interleaved across servers -- which recreates, at this scaled-down
    size, the pervasive port sharing that a 90%-occupied 3200-VM fabric
    exhibits under any placement (at 40 slots, strict locality packing
    would accidentally give each tenant private servers, which no real
    multi-tenant cloud provides).
    """
    from repro.placement import (OktopusPlacementManager,
                                 SiloPlacementManager)
    if scheme == "silo":
        manager = SiloPlacementManager(topo)
    elif scheme in ("okto", "okto+"):
        manager = OktopusPlacementManager(topo)
    else:
        manager = None

    # Interleaved arrival order (a, b, a, b, a): tenants arrive mixed in
    # a real cloud, so greedy managers end up sharing servers across
    # classes -- the situation Figs. 12-14 measure.
    requests = []
    for i in range(N_CLASS_A + N_CLASS_B):
        if i % 2 == 0 and i // 2 < N_CLASS_A:
            requests.append(("a", TenantRequest(
                n_vms=VMS_PER_TENANT_A, guarantee=CLASS_A_GUARANTEE,
                tenant_class=TenantClass.CLASS_A)))
        else:
            requests.append(("b", TenantRequest(
                n_vms=VMS_PER_TENANT_B, guarantee=CLASS_B_GUARANTEE,
                tenant_class=TenantClass.CLASS_B)))

    placements = []
    if manager is not None:
        for kind, request in requests:
            placement = manager.place(request)
            if placement is None:
                raise RuntimeError(f"campaign tenant rejected "
                                   f"under {scheme}")
            placements.append((kind, request, placement))
        return placements

    # Striped placement for the unmanaged baselines.
    slot_cursor = 0
    for kind, request in requests:
        servers = []
        for _ in range(request.n_vms):
            servers.append(slot_cursor % topo.n_servers)
            slot_cursor += 1
        placements.append((kind, request,
                           Placement(request=request, vm_servers=servers)))
    return placements


@scenario("fig12_scheme")
def run_campaign_scheme(scheme: str, seed: int = 1234) -> SchemeResult:
    """One scheme's run of the section 6.2 workload.

    Returns rich in-process objects (a live ``MetricsCollector``), so
    this scenario only runs with ``workers=0`` -- its results are
    neither JSON-serializable nor meant to be checkpointed.
    """
    from repro.phynet import MetricsCollector, PacketNetwork
    from repro.phynet.apps import BulkApp, EpochBurstApp
    from repro.topology import TreeTopology
    from repro.workloads import Fixed
    from repro.workloads.patterns import all_to_all_pairs
    topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=5,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    placements = _place_campaign_tenants(scheme, topo)
    net = PacketNetwork(topo, scheme=scheme)
    metrics = MetricsCollector()
    rng = random.Random(seed)

    paced = scheme in ("silo", "okto", "okto+")
    vm_counter = 0
    apps = []
    class_a, class_b = [], []
    class_b_estimates = {}
    for kind, request, placement in placements:
        guarantee = request.guarantee
        if scheme == "okto":
            # Oktopus: bandwidth reservation only, no burst allowance.
            guarantee = NetworkGuarantee(
                bandwidth=guarantee.bandwidth, burst=units.MTU,
                delay=guarantee.delay,
                peak_rate=guarantee.bandwidth)
        vm_ids = []
        for server in placement.vm_servers:
            net.add_vm(vm_counter, request.tenant_id, server,
                       guarantee=guarantee if paced else None,
                       paced=paced)
            vm_ids.append(vm_counter)
            vm_counter += 1
        if kind == "a":
            class_a.append(request.tenant_id)
            app = EpochBurstApp(net, metrics, request.tenant_id, vm_ids,
                                Fixed(CLASS_A_MESSAGE),
                                epoch=CLASS_A_EPOCH, rng=rng,
                                jitter=20 * units.MICROS)
            app.start()
        else:
            class_b.append(request.tenant_id)
            app = BulkApp(net, metrics, request.tenant_id,
                          all_to_all_pairs(vm_ids),
                          chunk_size=256 * units.KB)
            app.start()
            class_b_estimates[request.tenant_id] = (
                256 * units.KB
                / (CLASS_B_GUARANTEE.bandwidth / (VMS_PER_TENANT_B - 1)))
        apps.append(app)

    net.sim.run(until=CAMPAIGN_DURATION)

    estimate = CLASS_A_GUARANTEE.message_latency_bound(CLASS_A_MESSAGE)
    result = SchemeResult(
        scheme=scheme, metrics=metrics,
        class_a_tenants=class_a, class_b_tenants=class_b,
        class_a_estimate=estimate,
        class_b_estimates=class_b_estimates,
        drops=net.port_stats()["drops"])
    for tenant in class_a:
        result.rto_fractions[tenant] = metrics.rto_message_fraction(tenant)
    return result


@sweep("fig12")
def fig12_sweep() -> SweepSpec:
    """The six-scheme section 6.2 packet campaign at the shared seed.

    In-process only (``workers=0``): cells return live metrics objects.
    """
    return SweepSpec(
        name="fig12", scenario="fig12_scheme",
        grid={"scheme": list(CAMPAIGN_SCHEMES)}, seeds=(1234,))


# ---------------------------------------------------------------------------
# The three-way mechanism campaign (Silo vs SWP vs EyeQ)
# ---------------------------------------------------------------------------

#: The Fig. 12-14 message-latency pressure ladder, reused for the
#: mechanism comparison.  Each workload keeps the section 6.2 tenant
#: mix and topology and varies only the contention class-A messages
#: face: ``fig11`` has no cross traffic at all (every mechanism's easy
#: case), ``fig12`` is the standard mixed workload, ``fig13``
#: synchronizes the class-A bursts exactly (worst-case incast, the
#: paper's RTO pressure test), and ``fig14`` quadruples the bulk chunk
#: size so best-effort queues stay saturated.
MECHANISM_WORKLOADS = {
    "fig11": {"bulk": False, "jitter": 20 * units.MICROS,
              "chunk": 256 * units.KB},
    "fig12": {"bulk": True, "jitter": 20 * units.MICROS,
              "chunk": 256 * units.KB},
    "fig13": {"bulk": True, "jitter": 0.0, "chunk": 256 * units.KB},
    "fig14": {"bulk": True, "jitter": 20 * units.MICROS,
              "chunk": units.MB},
}

#: Mechanisms the three-way campaign sweeps (``none`` is benchmarked
#: separately as the overhead baseline).
COMPARE_MECHANISMS = ("silo", "swp", "eyeq")

#: Downsampled tail-CDF resolution committed per campaign cell.
_CDF_POINTS = 33


def _latency_cdf_us(latencies: List[float]) -> List[List[float]]:
    """(latency_us, cumulative fraction) pairs, downsampled for JSON.

    Keeps at most :data:`_CDF_POINTS` evenly spaced quantiles and
    always the maximum, so the committed artifact stays small while the
    tail remains exact.
    """
    from repro.analysis.stats import cdf_points
    points = cdf_points(latencies)
    if len(points) > _CDF_POINTS:
        step = (len(points) - 1) / (_CDF_POINTS - 1)
        points = [points[round(i * step)] for i in range(_CDF_POINTS)]
    return [[value * 1e6, fraction] for value, fraction in points]


@scenario("mechanism_compare")
def mechanism_compare_cell(mechanism: str, workload: str,
                           duration: float = CAMPAIGN_DURATION,
                           seed: int = 1234) -> Dict:
    """One (mechanism, workload) cell of the three-way tail campaign.

    Builds the entire stack -- network, hypervisor pacing, transports,
    control loops -- through the named
    :class:`~repro.mechanisms.base.Mechanism`, runs the section 6.2
    tenant mix under the selected contention workload, and reports
    class-A message-latency tails against the tenants' contracted
    bound.  Placement follows the mechanism: Silo places through its
    delay-aware admission manager, host-level mechanisms (SWP, EyeQ)
    get the striped placement an unmanaged cloud would.  Returns plain
    JSON, so the sweep runs under any worker count.
    """
    from repro.analysis.stats import percentile
    from repro.mechanisms import get_mechanism
    from repro.phynet import MetricsCollector
    from repro.phynet.apps import BulkApp, EpochBurstApp
    from repro.topology import TreeTopology
    from repro.workloads import Fixed
    from repro.workloads.patterns import all_to_all_pairs
    shape = MECHANISM_WORKLOADS[workload]
    mech = get_mechanism(mechanism)
    topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=5,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    placements = _place_campaign_tenants(
        "silo" if mech.uses_admission else "tcp", topo)
    net = mech.build_network(topo)
    metrics = MetricsCollector()
    rng = random.Random(seed)

    vm_counter = 0
    apps = []
    class_a, class_b = [], []
    for kind, request, placement in placements:
        vm_ids = []
        for server in placement.vm_servers:
            mech.add_vm(net, vm_counter, request.tenant_id, server,
                        guarantee=request.guarantee)
            vm_ids.append(vm_counter)
            vm_counter += 1
        if kind == "a":
            class_a.append(request.tenant_id)
            app = EpochBurstApp(
                net, metrics, request.tenant_id, vm_ids,
                Fixed(CLASS_A_MESSAGE), epoch=CLASS_A_EPOCH, rng=rng,
                jitter=shape["jitter"],
                transport_class=mech.transport_class(),
                transport_kwargs=mech.transport_kwargs())
            app.start()
        else:
            class_b.append(request.tenant_id)
            if not shape["bulk"]:
                continue
            app = BulkApp(net, metrics, request.tenant_id,
                          all_to_all_pairs(vm_ids),
                          chunk_size=shape["chunk"],
                          transport_class=mech.transport_class(),
                          transport_kwargs=mech.transport_kwargs())
            app.start()
        apps.append(app)

    mech.start(net)
    net.sim.run(until=duration)

    a_records = [r for r in metrics.records if r.tenant_id in class_a]
    a_done = [r for r in a_records if r.completed]
    late = sum(1 for r in a_records
               if not r.completed
               or r.latency > CLASS_A_GUARANTEE.message_latency_bound(
                   r.size))
    latencies = [r.latency for r in a_done]
    percentiles = ({label: percentile(latencies, q) * 1e6
                    for label, q in (("p50", 50.0), ("p90", 90.0),
                                     ("p99", 99.0), ("p999", 99.9))}
                   if latencies else {})
    b_bytes = sum(r.size for r in metrics.records
                  if r.tenant_id in class_b and r.completed)
    stats = net.port_stats()
    return {
        "mechanism": mechanism, "workload": workload, "seed": seed,
        "duration": duration,
        "bound_us": CLASS_A_GUARANTEE.message_latency_bound(
            CLASS_A_MESSAGE) * 1e6,
        "messages": len(a_records),
        "incomplete": len(a_records) - len(a_done),
        "late": late,
        "late_fraction": late / len(a_records) if a_records else None,
        "guarantee_met": bool(a_records) and late == 0,
        "latency_us": percentiles,
        "max_latency_us": max(latencies) * 1e6 if latencies else None,
        "cdf_us": _latency_cdf_us(latencies) if latencies else [],
        "class_b_goodput_mbps": b_bytes / duration / units.MB,
        "port": {"drops": stats["drops"],
                 "class_drops": stats["class_drops"],
                 "class_pushouts": stats["class_pushouts"]},
        "counters": mech.counters(net),
    }


@sweep("mechanism-compare")
def mechanism_compare_sweep() -> SweepSpec:
    """The full three-way campaign: 4 workloads x 3 mechanisms."""
    return SweepSpec(
        name="mechanism-compare", scenario="mechanism_compare",
        grid={"workload": list(MECHANISM_WORKLOADS),
              "mechanism": list(COMPARE_MECHANISMS)},
        seeds=(1234,), fixed={"duration": CAMPAIGN_DURATION})


@sweep("mechanism-compare-micro")
def mechanism_compare_micro_sweep() -> SweepSpec:
    """CI smoke slice: the mixed workload only, at a quarter duration."""
    return SweepSpec(
        name="mechanism-compare-micro", scenario="mechanism_compare",
        grid={"mechanism": list(COMPARE_MECHANISMS)},
        seeds=(1234,), fixed={"workload": "fig12", "duration": 0.02})


# ---------------------------------------------------------------------------
# CLI scenarios: churn / trace / faults as campaign cells
# ---------------------------------------------------------------------------

def _cli_topology(pods: int, racks_per_pod: int, servers_per_rack: int,
                  slots: int, link_gbps: float, oversubscription: float,
                  buffer_kb: float):
    """Build the CLI's tree topology from its flag values."""
    from repro.topology import TreeTopology
    return TreeTopology(
        n_pods=pods, racks_per_pod=racks_per_pod,
        servers_per_rack=servers_per_rack, slots_per_server=slots,
        link_rate=units.gbps(link_gbps),
        oversubscription=oversubscription,
        buffer_bytes=buffer_kb * units.KB)


def _artifact_path(artifact_dir: Optional[str],
                   artifact_prefix: Optional[str],
                   legacy_tag: Optional[str], name: str) -> Optional[str]:
    """Resolve one artifact file's path, or None when tracing is off.

    Campaign cells get a per-cell ``artifact_dir`` and write plain
    names; the legacy prefix mode reproduces the historical
    ``<prefix>[.<tag>].<name>`` naming byte-for-byte.
    """
    if artifact_dir is not None:
        return os.path.join(artifact_dir, name)
    if artifact_prefix is not None:
        if legacy_tag is not None:
            return f"{artifact_prefix}.{legacy_tag}.{name}"
        return f"{artifact_prefix}.{name}"
    return None


@scenario("churn_policy")
def churn_cell(policy: str, occupancy: float, horizon: float, seed: int,
               pods: int, racks_per_pod: int, servers_per_rack: int,
               slots: int, link_gbps: float, oversubscription: float,
               buffer_kb: float, faults: Optional[str] = None,
               artifact_dir: Optional[str] = None,
               artifact_prefix: Optional[str] = None) -> Dict[str, object]:
    """One ``repro churn`` cell: a policy's run over the tenant stream.

    With an artifact destination the cell writes the policy's event
    JSONL, link-utilization CSV, admission-audit CSV and (under
    faults) recovery CSV; the utilization series additionally rides
    along in the result as bucket rows so the campaign merge can
    aggregate it across seeds.
    """
    from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
    from repro.placement.audit import AdmissionAudit
    manager_cls, sharing = _policy_manager(policy)
    topo = _cli_topology(pods, racks_per_pod, servers_per_rack, slots,
                         link_gbps, oversubscription, buffer_kb)
    manager = manager_cls(topo)
    audit = AdmissionAudit()
    manager.audit = audit
    traced = artifact_dir is not None or artifact_prefix is not None
    sink = None
    if traced:
        from repro.obs import JsonlSink
        sink = JsonlSink(_artifact_path(artifact_dir, artifact_prefix,
                                        policy, "events.jsonl"))
        manager.tracer = sink
    workload = TenantWorkload.for_occupancy(
        WorkloadConfig(), occupancy, topo.n_slots, seed=seed)
    schedule = None
    if faults:
        from repro.faults import FaultSchedule
        schedule = FaultSchedule.from_spec(faults, topo, horizon=horizon,
                                           seed=seed)
    sim = ClusterSim(manager, sharing=sharing, tracer=sink,
                     faults=schedule)
    if traced:
        sim.monitor_utilization(interval=horizon / 200.0)
    stats = sim.run(workload, until=horizon)
    result: Dict[str, object] = {
        "policy": policy,
        "admitted": manager.admitted_fraction(),
        "occupancy": stats.mean_occupancy,
        "utilization": stats.network_utilization,
        "jobs": stats.finished_jobs,
        "audit": audit.summary(),
    }
    if sim.controller is not None:
        sim.controller.finalize(horizon)
        report = sim.controller.report()
        result["faults"] = {
            "affected": report.affected,
            "recovered": report.count("recovered"),
            "degraded": report.count("degraded"),
            "evicted": report.count("evicted"),
            "killed_jobs": stats.evicted_jobs,
            "rerouted": stats.rerouted_jobs,
        }
        if traced:
            write_recovery_csv(
                _artifact_path(artifact_dir, artifact_prefix, policy,
                               "recovery.csv"), report)
    if traced:
        from repro.campaign.merge import bucket_rows
        sim.utilization_series.write_csv(
            _artifact_path(artifact_dir, artifact_prefix, policy,
                           "util.csv"))
        audit.write_csv(_artifact_path(artifact_dir, artifact_prefix,
                                       policy, "admission.csv"))
        sink.close()
        result["util_series"] = bucket_rows(sim.utilization_series)
    return result


@scenario("trace_run")
def trace_cell(vms: int, bandwidth_mbps: float, burst_kb: float,
               delay_us: float, bmax_gbps: Optional[float],
               class_a: int, class_b: int, message_kb: float,
               epoch_us: float, duration_ms: float,
               queue_interval_us: float, seed: int,
               pods: int, racks_per_pod: int, servers_per_rack: int,
               slots: int, link_gbps: float, oversubscription: float,
               buffer_kb: float, faults: Optional[str] = None,
               mechanism: str = "silo",
               artifact_dir: Optional[str] = None,
               artifact_prefix: Optional[str] = None) -> Dict[str, object]:
    """One ``repro trace`` cell: a fully traced packet-level run.

    Class-A tenants run synchronized all-to-one epoch bursts, class-B
    tenants run bulk transfers.  Admission and placement always go
    through the Silo controller (the contract being traced), but the
    data path -- network scheme, hypervisor pacing, transports, control
    loops -- is built through the named
    :class:`~repro.mechanisms.base.Mechanism`, so the same traced
    workload can run under ``silo``, ``swp``, ``eyeq`` or ``none``.
    With an artifact destination the cell dumps the complete event
    stream (JSONL) plus per-message latency, per-port queue depth and
    per-request admission CSVs.
    """
    from repro.core.silo import SiloController
    from repro.mechanisms import get_mechanism
    from repro.obs import JsonlSink, RingBufferSink
    from repro.phynet.apps import BulkApp, EpochBurstApp
    from repro.phynet.metrics import MetricsCollector
    from repro.placement.audit import AdmissionAudit
    from repro.workloads.distributions import Fixed

    topo = _cli_topology(pods, racks_per_pod, servers_per_rack, slots,
                         link_gbps, oversubscription, buffer_kb)
    traced = artifact_dir is not None or artifact_prefix is not None
    if traced:
        sink = JsonlSink(_artifact_path(artifact_dir, artifact_prefix,
                                        None, "events.jsonl"))
    else:
        sink = RingBufferSink()
    mech = get_mechanism(mechanism)
    silo = SiloController(topo)
    audit = AdmissionAudit()
    silo.placement_manager.audit = audit
    silo.placement_manager.tracer = sink
    net = mech.build_network(topo, tracer=sink)
    queue_series = net.monitor_queues(
        interval=queue_interval_us * units.MICROS)
    metrics = MetricsCollector(tracer=sink)
    rng = random.Random(seed)

    next_vm = 0

    def admit_and_place(request):
        nonlocal next_vm
        admitted = silo.admit(request)
        if admitted is None:
            return None, []
        vm_ids = []
        for server in admitted.placement.vm_servers:
            mech.add_vm(net, next_vm, admitted.tenant_id, server,
                        guarantee=request.guarantee,
                        pacer_config=(admitted.pacer_config
                                      if mech.uses_admission else None))
            vm_ids.append(next_vm)
            next_vm += 1
        return admitted, vm_ids

    guarantee = NetworkGuarantee(
        bandwidth=units.mbps(bandwidth_mbps), burst=burst_kb * units.KB,
        delay=delay_us * units.MICROS,
        peak_rate=(units.gbps(bmax_gbps) if bmax_gbps is not None
                   else None))
    message_bytes = message_kb * units.KB
    bounds = {}
    for _ in range(class_a):
        request = TenantRequest(n_vms=vms, guarantee=guarantee,
                                tenant_class=TenantClass.CLASS_A)
        admitted, vm_ids = admit_and_place(request)
        if admitted is None:
            continue
        bounds[admitted.tenant_id] = request.guarantee \
            .message_latency_bound(message_bytes)
        app = EpochBurstApp(net, metrics, admitted.tenant_id, vm_ids,
                            Fixed(message_bytes),
                            epoch=epoch_us * units.MICROS, rng=rng,
                            transport_class=mech.transport_class(),
                            transport_kwargs=mech.transport_kwargs())
        app.start()
    bulk_guarantee = NetworkGuarantee(
        bandwidth=units.mbps(bandwidth_mbps),
        burst=burst_kb * units.KB, delay=None,
        peak_rate=(units.gbps(bmax_gbps) if bmax_gbps is not None
                   else None))
    for _ in range(class_b):
        request = TenantRequest(n_vms=vms, guarantee=bulk_guarantee,
                                tenant_class=TenantClass.CLASS_B)
        admitted, vm_ids = admit_and_place(request)
        if admitted is None:
            continue
        pairs = list(zip(vm_ids[0::2], vm_ids[1::2]))
        app = BulkApp(net, metrics, admitted.tenant_id, pairs,
                      transport_class=mech.transport_class(),
                      transport_kwargs=mech.transport_kwargs())
        app.start()

    duration = duration_ms * 1e-3
    injector = None
    if faults:
        from repro.faults import FaultSchedule, NetworkFaultInjector
        schedule = FaultSchedule.from_spec(faults, topo, horizon=duration,
                                           seed=seed)
        injector = NetworkFaultInjector(net, schedule)
    mech.start(net)
    net.sim.run(until=duration)

    tenants = []
    for tenant_id in metrics.tenants():
        latencies = metrics.latencies(tenant_id)
        p99 = (metrics.latency_percentile(99.0, tenant_id)
               if latencies else float("nan"))
        bound = bounds.get(tenant_id)
        late = (metrics.fraction_late(bound, tenant_id)
                if bound is not None else float("nan"))
        tenants.append({"tenant_id": tenant_id,
                        "messages": len(latencies),
                        "p99_us": None if math.isnan(p99)
                        else units.to_usec(p99),
                        "late": None if math.isnan(late) else late})
    stats = net.port_stats()
    result: Dict[str, object] = {
        "mechanism": mechanism,
        "admission": audit.summary(),
        "tenants": tenants,
        "ports": {"drops": stats["drops"],
                  "pushouts": stats["pushouts"],
                  "max_queue_bytes": stats["max_queue_bytes"]},
        "mechanism_counters": mech.counters(net),
    }
    if injector is not None:
        result["faults"] = {"applied": injector.applied,
                            "fault_drops": stats["fault_drops"]}
        if traced:
            write_csv(_artifact_path(artifact_dir, artifact_prefix, None,
                                     "faults.csv"),
                      ("time", "target", "action", "factor"),
                      ((e.time, e.target.spec, e.action, e.factor)
                       for e in injector.schedule))

    if traced:
        columns = ("tenant_id", "src_vm", "dst_vm", "size", "start",
                   "finish", "latency", "rto_events")
        write_csv(_artifact_path(artifact_dir, artifact_prefix, None,
                                 "latency.csv"), columns,
                  ([row[c] for c in columns]
                   for row in metrics.latency_rows()))
        with open(_artifact_path(artifact_dir, artifact_prefix, None,
                                 "queues.csv"), "w",
                  encoding="utf-8") as handle:
            handle.write("port,time,count,mean,min,max,last\n")
            for name, series in queue_series.items():
                for b in series.buckets():
                    handle.write(f"{name},{b.start},{b.count},{b.mean},"
                                 f"{b.vmin},{b.vmax},{b.last}\n")
        audit.write_csv(_artifact_path(artifact_dir, artifact_prefix,
                                       None, "admission.csv"))
        sink.close()
    else:
        result["traced_events"] = sink.emitted
    return result


@scenario("whatif_error")
def whatif_error_cell(message_kb: float, class_a: int, seed: int,
                      vms: int, bandwidth_mbps: float, burst_kb: float,
                      delay_us: float, bmax_gbps: Optional[float],
                      class_b: int, epoch_us: float, duration_ms: float,
                      queue_interval_us: float,
                      pods: int, racks_per_pod: int,
                      servers_per_rack: int, slots: int,
                      link_gbps: float, oversubscription: float,
                      buffer_kb: float,
                      artifact_dir: Optional[str] = None,
                      artifact_prefix: Optional[str] = None
                      ) -> Dict[str, object]:
    """One estimator-vs-packet-sim what-if validation cell.

    Runs the fig11-style traced scenario twice: once at a seed derived
    with ``derive_seed(seed, "whatif-cal")`` to calibrate the surrogate
    (held out -- the calibration trace never sees the target seed's
    epoch phases) and once at the cell seed as ground truth.  The
    surrogate is fit on the first trace, queried for the same
    placements, and compared against the second trace's observed
    class-A latency quantiles.  Wall-clock speedup is deliberately NOT
    part of the result (it would break byte-identical merges); the
    committed floor lives in ``benchmarks/bench_whatif.py``.
    """
    import contextlib
    import tempfile

    from repro.analysis.stats import percentile
    from repro.analysis.surrogate import (REPORT_QUANTILES,
                                          fit_whatif_model,
                                          quantile_label)
    from repro.campaign.spec import derive_seed
    from repro.core.silo import SiloController
    from repro.core.tenant import reset_tenant_ids
    from repro.obs.traces import find_trace_artifacts

    params = dict(vms=vms, bandwidth_mbps=bandwidth_mbps,
                  burst_kb=burst_kb, delay_us=delay_us,
                  bmax_gbps=bmax_gbps, class_a=class_a, class_b=class_b,
                  message_kb=message_kb, epoch_us=epoch_us,
                  duration_ms=duration_ms,
                  queue_interval_us=queue_interval_us, pods=pods,
                  racks_per_pod=racks_per_pod,
                  servers_per_rack=servers_per_rack, slots=slots,
                  link_gbps=link_gbps, oversubscription=oversubscription,
                  buffer_kb=buffer_kb)
    message_bytes = message_kb * units.KB
    with contextlib.ExitStack() as stack:
        if artifact_dir is None:
            base = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="whatif-error-"))
        else:
            base = artifact_dir
        cal_dir = os.path.join(base, "calibration")
        target_dir = os.path.join(base, "target")
        os.makedirs(cal_dir, exist_ok=True)
        os.makedirs(target_dir, exist_ok=True)
        reset_tenant_ids()
        trace_cell(seed=derive_seed(seed, "whatif-cal"),
                   artifact_dir=cal_dir, **params)
        reset_tenant_ids()
        trace_cell(seed=seed, artifact_dir=target_dir, **params)

        guarantee = NetworkGuarantee(
            bandwidth=units.mbps(bandwidth_mbps),
            burst=burst_kb * units.KB, delay=delay_us * units.MICROS,
            peak_rate=(units.gbps(bmax_gbps) if bmax_gbps is not None
                       else None))
        topo = _cli_topology(pods, racks_per_pod, servers_per_rack,
                             slots, link_gbps, oversubscription,
                             buffer_kb)
        reset_tenant_ids()
        silo = SiloController(topo)
        placements = []
        for _ in range(class_a):
            request = TenantRequest(n_vms=vms, guarantee=guarantee,
                                    tenant_class=TenantClass.CLASS_A)
            admitted = silo.admit(request)
            if admitted is not None:
                placements.append(admitted.placement)

        model = fit_whatif_model(topo, placements, guarantee,
                                 message_bytes,
                                 find_trace_artifacts(cal_dir))
        estimates = [model.estimate(topo, placement, message_bytes)
                     for placement in placements]
        observed = [record.latency
                    for artifact in find_trace_artifacts(target_dir)
                    for record in artifact.latencies()
                    if record.size == message_bytes]

    sim: Dict[str, float] = {}
    est: Dict[str, float] = {}
    for q in REPORT_QUANTILES:
        label = quantile_label(q)
        sim[f"{label}_us"] = units.to_usec(percentile(observed, q))
        est[f"{label}_us"] = units.to_usec(
            sum(e.quantiles[q] for e in estimates) / len(estimates))
    return {
        "message_kb": message_kb,
        "class_a": class_a,
        "messages": len(observed),
        "sim": sim,
        "est": est,
        "rel_error_p99": abs(est["p99_us"] - sim["p99_us"])
        / sim["p99_us"],
        "bound_us": units.to_usec(estimates[0].bound),
    }


@sweep("whatif-error")
def whatif_error_sweep() -> SweepSpec:
    """The committed estimator-error grid rendered into EXPERIMENTS.md.

    Fig11-style scenarios (epoch-burst class-A tenants sharing the
    fabric with a bulk class-B tenant) across message sizes, tenant
    counts and held-out seeds; the acceptance floor is a median
    relative p99 error of at most 15% versus the packet simulator.
    """
    return SweepSpec(
        name="whatif-error", scenario="whatif_error",
        grid={"message_kb": [15.0, 25.0], "class_a": [2, 3]},
        seeds=(1, 2, 3),
        fixed=dict(vms=12, bandwidth_mbps=1000.0, burst_kb=15.0,
                   delay_us=1000.0, bmax_gbps=1.0, class_b=1,
                   epoch_us=2000.0, duration_ms=40.0,
                   queue_interval_us=100.0, pods=2, racks_per_pod=4,
                   servers_per_rack=10, slots=8, link_gbps=10.0,
                   oversubscription=5.0, buffer_kb=312.0))


@scenario("faults_campaign")
def faults_cell(policy: str, occupancy: float, faults: str,
                duration_ms: float, seed: int,
                pods: int, racks_per_pod: int, servers_per_rack: int,
                slots: int, link_gbps: float, oversubscription: float,
                buffer_kb: float,
                artifact_dir: Optional[str] = None,
                artifact_prefix: Optional[str] = None
                ) -> Dict[str, object]:
    """One ``repro faults`` cell: fill, break, self-heal, report.

    Fills the cluster to ``occupancy`` with the standard tenant mix,
    replays a seeded fault schedule through the recovery controller,
    and reports each tenant's fate plus SLO-violation totals.  With an
    artifact destination the fault timeline and per-tenant report land
    in ``faults.csv`` / ``recovery.csv`` (same-seed byte-identical).
    """
    from repro.faults import FaultSchedule
    from repro.placement import ClusterController
    from repro.placement.audit import AdmissionAudit

    manager_cls, _sharing = _policy_manager(policy)
    topo = _cli_topology(pods, racks_per_pod, servers_per_rack, slots,
                         link_gbps, oversubscription, buffer_kb)
    manager = manager_cls(topo)
    audit = AdmissionAudit()
    manager.audit = audit
    traced = artifact_dir is not None or artifact_prefix is not None
    sink = None
    if traced:
        from repro.obs import JsonlSink
        sink = JsonlSink(_artifact_path(artifact_dir, artifact_prefix,
                                        None, "events.jsonl"))
        manager.tracer = sink

    placed, placed_slots = fill_to_occupancy(manager, occupancy, seed)
    # Snapshot before the replay: recovery re-placements run through the
    # same manager and would otherwise inflate the fill-phase counters.
    fill_audit = audit.summary()

    duration = duration_ms * 1e-3
    schedule = FaultSchedule.from_spec(faults, topo, horizon=duration,
                                       seed=seed)
    controller = ClusterController(manager, tracer=sink,
                                   retry_evicted=True)
    fault_rows = []
    for event in schedule:
        outcomes = controller.apply(event, event.time)
        counts = {"recovered": 0, "degraded": 0, "evicted": 0}
        for outcome in outcomes.values():
            counts[outcome] += 1
        fault_rows.append((event.time, event.target.spec, event.action,
                           event.factor, len(outcomes),
                           counts["recovered"], counts["degraded"],
                           counts["evicted"]))
    controller.finalize(duration)
    report = controller.report()

    if traced:
        write_csv(_artifact_path(artifact_dir, artifact_prefix, None,
                                 "faults.csv"),
                  ("time", "target", "action", "factor", "affected",
                   "recovered", "degraded", "evicted"), fault_rows)
        write_recovery_csv(_artifact_path(artifact_dir, artifact_prefix,
                                          None, "recovery.csv"), report)
        sink.close()
    mttr = report.mean_time_to_recover
    return {
        "policy": policy,
        "filled_tenants": placed,
        "filled_slots": placed_slots,
        "total_slots": topo.n_slots,
        "fill_audit": fill_audit,
        "n_events": len(schedule),
        "affected": report.affected,
        "recovered": report.count("recovered"),
        "degraded": report.count("degraded"),
        "evicted": report.count("evicted"),
        "guarantee_seconds_lost": report.guarantee_seconds_lost,
        "mean_ttr_s": mttr,
    }


# ---------------------------------------------------------------------------
# The admission-service soak (chaos) campaign
# ---------------------------------------------------------------------------

@scenario("service_soak")
def service_soak_cell(arrival_rate: float, horizon: float, faults: str,
                      kill_tick: int, seed: int,
                      pods: int = 2, racks_per_pod: int = 2,
                      servers_per_rack: int = 3, slots: int = 4,
                      link_gbps: float = 10.0,
                      oversubscription: float = 5.0,
                      buffer_kb: float = 312.0,
                      queue_capacity: int = 16,
                      artifact_dir: Optional[str] = None
                      ) -> Dict[str, object]:
    """One admission-service soak cell with a mid-run simulated crash.

    Drives the service with the seeded closed-loop load generator and a
    fault schedule, abandons it without any shutdown path at
    ``kill_tick`` (the WAL flushes per record, so this is exactly what
    a ``kill -9`` leaves behind), restarts from the same data
    directory, and reports whether the recovered books are bit-identical
    (``recovery_identical``) before resuming the same event stream to
    completion.
    """
    import shutil
    import tempfile

    from repro.faults import FaultSchedule
    from repro.service import AdmissionService, ClosedLoopLoadGen

    topo = _cli_topology(pods, racks_per_pod, servers_per_rack, slots,
                         link_gbps, oversubscription, buffer_kb)
    schedule = FaultSchedule.from_spec(faults, topo, horizon=horizon,
                                       seed=seed)
    if artifact_dir is not None:
        data_dir = os.path.join(artifact_dir, "service")
        cleanup = None
    else:
        data_dir = tempfile.mkdtemp(prefix="service-soak-")
        cleanup = data_dir
    if os.path.isdir(data_dir):  # a retried cell must not inherit state
        shutil.rmtree(data_dir)

    def build_service() -> AdmissionService:
        return AdmissionService(topo, data_dir,
                                queue_capacity=queue_capacity)

    def build_loadgen(service: AdmissionService) -> ClosedLoopLoadGen:
        return ClosedLoopLoadGen(service, arrival_rate, horizon,
                                 seed=seed,
                                 fault_events=list(schedule.events))

    service = build_service()
    pre_kill: Dict[str, str] = {}

    def chaos(tick_index: int, now: float) -> bool:
        if tick_index >= kill_tick:
            pre_kill["digest"] = service.state_digest()
            return False
        return True

    build_loadgen(service).run(on_tick=chaos)
    if "digest" not in pre_kill:  # run drained before the kill tick
        pre_kill["digest"] = service.state_digest()
    # Simulated kill -9: drop the service without close()/snapshot.
    del service

    service = build_service()
    recovered_digest = service.state_digest()
    replayed = service.metrics.replayed
    summary = build_loadgen(service).run()
    service.close()
    if cleanup is not None:
        shutil.rmtree(cleanup, ignore_errors=True)
    metrics = dict(summary["metrics"])
    return {
        "recovery_identical": recovered_digest == pre_kill["digest"],
        "replayed": replayed,
        "queue_capacity": queue_capacity,
        "final_digest": summary["digest"],
        "gave_up": summary["gave_up"],
        **{key: metrics[key]
           for key in ("admitted", "rejected_admission",
                       "rejected_backpressure", "shed", "expired",
                       "departed", "faults", "max_queue_depth",
                       "max_admit_depth")},
    }


SERVICE_SOAK_FAULTS = "poisson:mtbf_ms=400,mttr_ms=250,targets=server"


@sweep("service-soak")
def service_soak_sweep() -> SweepSpec:
    """Service soak at moderate and 2x-overload arrival rates, with a
    server-fault storm and a mid-run crash/recovery identity check."""
    return SweepSpec(
        name="service-soak", scenario="service_soak",
        grid={"arrival_rate": [15.0, 40.0]},
        seeds=(1, 2),
        fixed={"horizon": 2.0, "faults": SERVICE_SOAK_FAULTS,
               "kill_tick": 23, "queue_capacity": 16})


# ---------------------------------------------------------------------------
# Hybrid fidelity: packet foreground inside a fluid background
# ---------------------------------------------------------------------------

@scenario("hybrid_cell")
def hybrid_cell(policy: str, fg_app: str, fg_vms: int,
                fg_bandwidth_mbps: float, occupancy: float,
                horizon: float, fg_horizon_ms: float, seed: int,
                pods: int, racks_per_pod: int, servers_per_rack: int,
                slots: int, link_gbps: float, oversubscription: float,
                buffer_kb: float, fg_burst_kb: float = 15.0,
                fg_delay_us: float = 1000.0,
                fg_offset: Union[float, str, None] = None,
                bg_flow_mb: float = 250.0, bg_compute_s: float = 4.0,
                faults: Optional[str] = None,
                artifact_dir: Optional[str] = None) -> Dict[str, object]:
    """One ``repro hybrid`` cell: a packet-fidelity foreground tenant
    inside a fluid background cluster.

    The foreground tenant (class A, ``fg_vms`` VMs, the given hose
    guarantee) is admitted at ``t=0`` through the policy's placement
    manager; the background churns to ``occupancy`` for ``horizon``
    fluid seconds; the packet window replays the residual-capacity
    series from ``fg_offset`` (default: mid-run; ``"peak"`` aligns with
    the recorded background-usage peak) for ``fg_horizon_ms``.
    ``bg_flow_mb`` / ``bg_compute_s`` scale the background job size
    (the section 6.3 defaults churn on a seconds timescale; a
    millisecond-scale packet window wants a churnier background to
    sample).  ``faults`` applies to the background cluster.  With an
    ``artifact_dir`` the cell writes the foreground per-message latency
    CSV.
    """
    from repro.core.tenant import reset_tenant_ids
    from repro.flowsim import TenantWorkload, WorkloadConfig
    from repro.hybrid import ForegroundTenant, HybridSim

    reset_tenant_ids()
    manager_cls, sharing = _policy_manager(policy)
    topo = _cli_topology(pods, racks_per_pod, servers_per_rack, slots,
                         link_gbps, oversubscription, buffer_kb)
    manager = manager_cls(topo)
    guarantee = NetworkGuarantee(
        bandwidth=units.mbps(fg_bandwidth_mbps),
        burst=fg_burst_kb * units.KB,
        delay=fg_delay_us * units.MICROS,
        peak_rate=units.gbps(1.0))
    foreground = ForegroundTenant(
        request=TenantRequest(n_vms=fg_vms, guarantee=guarantee,
                              tenant_class=TenantClass.CLASS_A),
        app=fg_app)
    config = WorkloadConfig(b_flow_bytes=bg_flow_mb * units.MB,
                            a_flow_bytes=bg_flow_mb * units.MB / 25.0,
                            mean_compute_time=bg_compute_s)
    workload = TenantWorkload.for_occupancy(config, occupancy,
                                            topo.n_slots, seed=seed)
    schedule = None
    if faults:
        from repro.faults import FaultSchedule
        schedule = FaultSchedule.from_spec(faults, topo, horizon=horizon,
                                           seed=seed)
    sim = HybridSim(manager, [foreground], sharing=sharing,
                    scheme="silo", faults=schedule)
    outcome = sim.run(workload, until=horizon, fg_offset=fg_offset,
                      fg_horizon=fg_horizon_ms * 1e-3, seed=seed)
    result = outcome.to_dict()
    result["policy"] = policy
    result["bg_admitted"] = manager.admitted_fraction()
    if fg_app == "burst":
        bound = guarantee.message_latency_bound(foreground.message_bytes)
        for tenant in result["foreground"]:
            late = outcome.metrics.fraction_late(bound,
                                                 tenant["tenant_id"])
            tenant["late"] = None if math.isnan(late) else late
    if artifact_dir is not None:
        columns = ("tenant_id", "src_vm", "dst_vm", "size", "start",
                   "finish", "latency", "rto_events")
        write_csv(os.path.join(artifact_dir, "latency.csv"), columns,
                  ([row[c] for c in columns]
                   for row in outcome.metrics.latency_rows()))
    return result


@sweep("hybrid-smoke")
def hybrid_smoke_sweep() -> SweepSpec:
    """Packet-in-fluid smoke grid for CI and the identity checks.

    Both foreground apps under one reserved-sharing (silo) and one
    maxmin-sharing (locality) background, on a deliberately small-rack
    two-pod topology (2 slots/server, 4 slots/rack) with a
    transfer-dominated background (80 MB flows, 50 ms compute): most
    background tenants must span racks, so the foreground's rack
    uplinks carry real background traffic and the residual replay has
    something to say.  Small enough for CI, but it exercises the whole
    coupling: shared admission, the usage recorder on both sharing
    paths, and the packet window's residual replay.
    """
    return SweepSpec(
        name="hybrid-smoke", scenario="hybrid_cell",
        grid={"fg_app": ["memcached", "burst"],
              "policy": ["silo", "locality"]},
        seeds=(11,),
        fixed={"fg_vms": 6, "fg_bandwidth_mbps": 100.0,
               "occupancy": 0.7, "horizon": 8.0, "fg_horizon_ms": 20.0,
               "fg_offset": "peak",
               "bg_flow_mb": 80.0, "bg_compute_s": 0.05,
               "pods": 2, "racks_per_pod": 4, "servers_per_rack": 2,
               "slots": 2, "link_gbps": 10.0, "oversubscription": 5.0,
               "buffer_kb": 312.0})
