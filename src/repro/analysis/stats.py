"""Small, dependency-light statistics helpers.

The evaluation reports percentiles and CDFs of message latencies; these
helpers use the same nearest-rank convention throughout so table rows in
the benchmarks are directly comparable with each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile; ``q`` in [0, 100].

    Raises ``ValueError`` on empty input: silently returning 0 would turn
    a broken experiment into a plausible-looking result.
    """
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty data")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    # The rank floor also covers q so small that q / 100 * n underflows
    # to 0.0 -- without it the ceil would index data[-1] (the maximum).
    rank = max(1, math.ceil(q / 100.0 * len(data)))
    return data[min(rank, len(data)) - 1]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    data = list(values)
    if not data:
        raise ValueError("mean of empty data")
    return sum(data) / len(data)


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs, suitable for plotting a CDF."""
    data = sorted(values)
    n = len(data)
    return [(v, (i + 1) / n) for i, v in enumerate(data)]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary used by the benchmark tables."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    p999: float
    maximum: float


def summarize(values: Iterable[float]) -> Summary:
    """Count/mean/extreme/percentile summary of a sample."""
    data = sorted(values)
    if not data:
        raise ValueError("summary of empty data")
    return Summary(
        count=len(data),
        mean=sum(data) / len(data),
        median=percentile(data, 50),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
        p999=percentile(data, 99.9),
        maximum=data[-1],
    )
