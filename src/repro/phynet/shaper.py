"""Event-driven hierarchical shaper: the pacer as it runs in the hypervisor.

:class:`~repro.pacer.hierarchy.VMPacer` stamps packets in FIFO order, which
is exact for a single stream (and is how the Fig. 10 microbenchmarks use
it).  A VM talking to several destinations needs real scheduler semantics:
per-destination queues whose head packets compete for the shared tenant and
peak buckets, served in *eligibility* order -- otherwise one backlogged
destination would delay traffic to idle destinations through the shared
buckets.

:class:`VMShaper` implements exactly that: it holds one FIFO per
destination, computes for each head packet the earliest instant all three
Fig. 8 buckets allow it out, releases the globally earliest, and re-arms.
Aggregate output conforms to ``{B, S}``, per-destination output to its
hose rate ``B_d``, and consecutive releases are spaced at ``Bmax``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, Optional

from repro.pacer.hierarchy import PacerConfig
from repro.pacer.token_bucket import TokenBucket
from repro.phynet.engine import Simulator

#: Slack when testing head-packet eligibility against the current clock:
#: absorbs float error from the schedule()/now round trip.  Simulation
#: times stay near zero, so an absolute epsilon is the right shape here
#: (a relative one would vanish at t=0).
_TIME_EPS = 1e-12


class VMShaper:
    """Hierarchical token-bucket scheduler for one VM's egress."""

    def __init__(self, sim: Simulator, config: PacerConfig,
                 release: Callable[[Any], None]):
        self.sim = sim
        self.config = config
        self._release = release
        self._queues: Dict[Hashable, Deque[Any]] = {}
        self._dest_buckets: Dict[Hashable, TokenBucket] = {}
        self._tenant = TokenBucket(config.bandwidth, config.burst,
                                   sim.now)
        self._peak = TokenBucket(config.peak_rate, config.packet_size,
                                 sim.now)
        self._generation = 0
        self._armed_at: Optional[float] = None
        self.backlog = 0.0
        self._dest_backlog: Dict[Hashable, float] = {}
        #: Optional :class:`repro.obs.TimeSeries` recording the shaper's
        #: total backlog (bytes awaiting their token-bucket stamps) on
        #: every submit/release.
        self.backlog_series = None

    # -- configuration ------------------------------------------------------

    def destination_bucket(self, destination: Hashable) -> TokenBucket:
        """The per-destination token bucket, created on first use."""
        bucket = self._dest_buckets.get(destination)
        if bucket is None:
            bucket = TokenBucket(self.config.bandwidth, self.config.burst,
                                 self.sim.now)
            self._dest_buckets[destination] = bucket
        return bucket

    def set_destination_rate(self, destination: Hashable,
                             rate: float) -> None:
        """Apply a hose coordination decision (Fig. 8's ``B_i``)."""
        self.destination_bucket(destination).set_rate(rate, self.sim.now)
        self._reschedule()

    # -- data path -------------------------------------------------------------

    def destination_backlog(self, destination: Hashable) -> float:
        """Bytes queued in the shaper for one destination."""
        return self._dest_backlog.get(destination, 0.0)

    def submit(self, packet: Any) -> None:
        """Queue a packet for its destination and re-evaluate the schedule."""
        queue = self._queues.get(packet.dst)
        if queue is None:
            queue = deque()
            self._queues[packet.dst] = queue
        queue.append(packet)
        self.backlog += packet.size
        self._dest_backlog[packet.dst] = (
            self._dest_backlog.get(packet.dst, 0.0) + packet.size)
        if self.backlog_series is not None:
            self.backlog_series.record(self.sim.now, self.backlog)
        self._reschedule()

    def _head_eligible_at(self, destination: Hashable, size: float) -> float:
        """Earliest time all three buckets allow a head packet out.

        Token balances only grow until a debit, so the per-bucket earliest
        times can be combined with ``max``.
        """
        now = self.sim.now
        t = self.destination_bucket(destination).would_stamp(size, now)
        t = max(t, self._tenant.would_stamp(size, now))
        return max(t, self._peak.would_stamp(size, now))

    def _best_candidate(self) -> Optional[Hashable]:
        best_dest = None
        best_time = None
        for destination, queue in self._queues.items():
            if not queue:
                continue
            eligible = self._head_eligible_at(destination, queue[0].size)
            if best_time is None or eligible < best_time:
                best_time = eligible
                best_dest = destination
        return best_dest

    def _reschedule(self) -> None:
        destination = self._best_candidate()
        if destination is None:
            return
        queue = self._queues[destination]
        eligible = self._head_eligible_at(destination, queue[0].size)
        if self._armed_at is not None and self._armed_at <= eligible:
            return  # an earlier-or-equal wakeup is already pending
        self._generation += 1
        self._armed_at = eligible
        self.sim.schedule(max(0.0, eligible - self.sim.now), self._fire,
                          self._generation)

    def _fire(self, generation: int) -> None:
        if generation != self._generation:
            return
        self._armed_at = None
        destination = self._best_candidate()
        if destination is None:
            return
        queue = self._queues[destination]
        packet = queue[0]
        now = self.sim.now
        if self._head_eligible_at(destination, packet.size) > now + _TIME_EPS:
            self._reschedule()
            return
        queue.popleft()
        self.backlog -= packet.size
        self._dest_backlog[destination] -= packet.size
        self.destination_bucket(destination).stamp(packet.size, now)
        self._tenant.stamp(packet.size, now)
        self._peak.stamp(packet.size, now)
        if self.backlog_series is not None:
            self.backlog_series.record(now, self.backlog)
        self._release(packet)
        self._reschedule()
