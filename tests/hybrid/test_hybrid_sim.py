"""HybridSim end-to-end contract on a tiny topology.

These are the unit-level checks for the packet-in-fluid coupling:
window placement (default / explicit / ``"peak"``), shared-admission
rejection counting, and the shape of :class:`HybridResult`.  The
campaign-level byte-identity of ``hybrid-smoke`` is CI's job.
"""

import json

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest, reset_tenant_ids
from repro.flowsim import TenantWorkload, WorkloadConfig
from repro.hybrid import ForegroundTenant, HybridSim
from repro.hybrid.recorder import PortUsageRecorder
from repro.hybrid.sim import _peak_offset
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology


def build_topology():
    return TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=2,
                        slots_per_server=2, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


def guarantee():
    return NetworkGuarantee(bandwidth=units.mbps(100),
                            burst=15 * units.KB,
                            delay=1000 * units.MICROS,
                            peak_rate=units.gbps(1))


def foreground(n_vms=4, app="memcached"):
    return ForegroundTenant(
        request=TenantRequest(n_vms=n_vms, guarantee=guarantee(),
                              tenant_class=TenantClass.CLASS_A),
        app=app)


def background(topo, seed=1):
    config = WorkloadConfig(a_flow_bytes=1 * units.MB,
                            b_flow_bytes=4 * units.MB,
                            mean_compute_time=0.05,
                            mean_vms=4.0, max_vms=8)
    return TenantWorkload.for_occupancy(config, 0.5, topo.n_slots,
                                        seed=seed)


class TestPeakOffset:
    def recorder(self, entries):
        recorder = PortUsageRecorder(entries.keys())
        for port, series in entries.items():
            for now, new in series:
                recorder.record((port,), old=recorder.used_at(port, now),
                                new=new, now=now)
        return recorder

    def test_picks_total_usage_argmax(self):
        recorder = self.recorder({1: [(1.0, 2.0), (2.0, 5.0), (3.0, 1.0)],
                                  2: [(2.0, 1.0)]})
        assert _peak_offset(recorder, until=8.0, fg_horizon=0.5) == 2.0

    def test_tie_breaks_toward_earliest(self):
        recorder = self.recorder({1: [(1.0, 5.0), (3.0, 5.0)]})
        assert _peak_offset(recorder, until=8.0, fg_horizon=0.5) == 1.0

    def test_clamped_so_window_fits_horizon(self):
        recorder = self.recorder({1: [(7.9, 5.0)]})
        assert _peak_offset(recorder, until=8.0, fg_horizon=1.0) == 7.0

    def test_untouched_ports_fall_back_to_midpoint(self):
        recorder = PortUsageRecorder([1, 2])
        assert _peak_offset(recorder, until=8.0, fg_horizon=0.5) == 4.0


class TestValidation:
    def test_needs_a_foreground_tenant(self):
        with pytest.raises(ValueError, match="foreground"):
            HybridSim(SiloPlacementManager(build_topology()), [])

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown foreground app"):
            foreground(app="quicsim")

    def test_offset_outside_horizon_rejected(self):
        reset_tenant_ids()
        topo = build_topology()
        sim = HybridSim(SiloPlacementManager(topo), [foreground()])
        with pytest.raises(ValueError, match="fg_offset"):
            sim.run(background(topo), until=1.0, fg_offset=2.0)


class TestRun:
    def run(self, fg_offset="peak", until=1.0, tenants=None):
        reset_tenant_ids()
        topo = build_topology()
        sim = HybridSim(SiloPlacementManager(topo),
                        tenants or [foreground()])
        return sim.run(background(topo), until=until,
                       fg_offset=fg_offset, fg_horizon=5e-3, seed=3)

    def test_memcached_foreground_reports_messages(self):
        result = self.run()
        assert result.rejected == 0
        assert result.watched_ports > 0
        (fg,) = result.foreground
        assert fg["app"] == "memcached" and fg["vms"] == 4
        assert fg["messages"] > 0
        assert fg["p50_us"] > 0 and fg["p99_us"] >= fg["p50_us"]
        assert 0.0 <= result.fg_offset <= 1.0
        assert result.background.finished_jobs >= 0

    def test_default_offset_is_midpoint(self):
        assert self.run(fg_offset=None).fg_offset == 0.5

    def test_oversized_foreground_counts_as_rejected(self):
        topo = build_topology()
        result = self.run(tenants=[foreground(),
                                   foreground(n_vms=topo.n_slots + 1)])
        assert result.rejected == 1
        assert len(result.foreground) == 1

    def test_to_dict_is_json_serializable(self):
        payload = self.run().to_dict()
        round_trip = json.loads(json.dumps(payload))
        assert round_trip["rejected_foreground"] == 0
        assert round_trip["fg_horizon"] == 5e-3
        assert set(round_trip["background"]) >= {"finished_jobs",
                                                 "mean_occupancy"}
