"""Statistics helpers used by the benchmark tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import cdf_points, mean, percentile, summarize
from repro.phynet.metrics import MessageRecord, MetricsCollector


class TestPercentile:
    def test_nearest_rank(self):
        data = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(data, 50) == 5
        assert percentile(data, 90) == 9
        assert percentile(data, 99) == 10
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_result_is_an_element(self, data, q):
        assert percentile(data, q) in data

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100),
           st.floats(min_value=0, max_value=100))
    def test_monotone_in_q(self, data, q1, q2):
        lo, hi = sorted((q1, q2))
        assert percentile(data, lo) <= percentile(data, hi)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_within_data_range(self, data, q):
        assert min(data) <= percentile(data, q) <= max(data)


class TestCdf:
    def test_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)),
                          (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50))
    def test_final_fraction_is_one(self, data):
        points = cdf_points(data)
        assert points[-1][1] == pytest.approx(1.0)
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)


class TestSummary:
    def test_summarize(self):
        summary = summarize(range(1, 101))
        assert summary.count == 100
        assert summary.median == 50
        assert summary.p99 == 99
        assert summary.maximum == 100

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50))
    def test_summarize_consistent_with_percentile(self, data):
        summary = summarize(data)
        assert summary.median == percentile(data, 50)
        assert summary.p99 == percentile(data, 99)
        assert summary.maximum == max(data)
        assert summary.count == len(data)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])


class TestMetricsCollector:
    def make_collector(self):
        collector = MetricsCollector()
        for i, latency in enumerate([0.001, 0.002, 0.003, 0.1]):
            record = collector.new_message(1, 0, 1, 1000.0, 0.0)
            record.finish = latency
            record.rto_events = 1 if latency > 0.05 else 0
        incomplete = collector.new_message(1, 0, 1, 1000.0, 0.0)
        return collector

    def test_fraction_late_counts_incomplete(self):
        collector = self.make_collector()
        # bound 0.05: one completed late + one never completed = 2 of 5.
        assert collector.fraction_late(0.05, 1) == pytest.approx(0.4)

    def test_rto_fraction(self):
        collector = self.make_collector()
        assert collector.rto_message_fraction(1) == pytest.approx(0.2)

    def test_outlier_class_uses_percentile_vs_estimate(self):
        collector = self.make_collector()
        ratio = collector.outlier_class(1, estimate=0.01, q=99.0)
        assert ratio == float("inf")  # the incomplete message dominates

    def test_latency_percentile(self):
        collector = self.make_collector()
        assert collector.latency_percentile(50, 1) == pytest.approx(0.002)

    def test_tenants(self):
        collector = self.make_collector()
        collector.new_message(7, 0, 1, 1.0, 0.0)
        assert collector.tenants() == [1, 7]

    def test_empty_record_sets_are_nan_not_zero(self):
        """Regression: metrics over an empty record set used to return
        0.0, which reads as "no SLO violations" for a tenant that never
        ran a single message.  They must be NaN (distinguishable)."""
        import math
        collector = MetricsCollector()
        assert math.isnan(collector.fraction_late(0.05))
        assert math.isnan(collector.fraction_late(0.05, tenant_id=1))
        assert math.isnan(collector.rto_message_fraction(1))
        assert math.isnan(collector.outlier_class(1, estimate=0.01))
        # A tenant with records is unaffected...
        collector.new_message(1, 0, 1, 1.0, 0.0).finish = 0.001
        assert collector.fraction_late(0.05, tenant_id=1) == 0.0
        # ...while an unknown tenant still reads as "no data".
        assert math.isnan(collector.fraction_late(0.05, tenant_id=2))

    def test_latency_rows_export(self):
        collector = self.make_collector()
        rows = list(collector.latency_rows())
        assert len(rows) == 4  # incomplete messages are not exported
        assert rows[0]["latency"] == pytest.approx(0.001)
        assert set(rows[0]) == {"tenant_id", "src_vm", "dst_vm", "size",
                                "start", "finish", "latency",
                                "rto_events"}
