"""Property-based tests for the network-calculus core.

These pin down the invariants the placement manager's soundness rests on:
concavity and monotonicity of curves, exactness of the algebra, and
conservativeness of the bounds.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netcalc.arrival import dual_rate, token_bucket
from repro.netcalc.bounds import backlog_bound, delay_bound
from repro.netcalc.curves import Curve
from repro.netcalc.service import constant_rate

rates = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)
bursts = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)

pieces = st.lists(st.tuples(rates, bursts), min_size=1, max_size=6)


def curve_from(piece_list):
    return Curve.from_pieces(piece_list)


@given(pieces, times)
def test_curve_equals_min_of_pieces(piece_list, t):
    curve = curve_from(piece_list)
    expected = min(r * t + b for r, b in piece_list)
    assert math.isclose(curve(t), expected, rel_tol=1e-9, abs_tol=1e-6)


@given(pieces, times, times)
def test_curves_are_nondecreasing(piece_list, t1, t2):
    curve = curve_from(piece_list)
    lo, hi = min(t1, t2), max(t1, t2)
    assert curve(lo) <= curve(hi) + 1e-9


@given(pieces, times, times)
def test_curves_are_concave(piece_list, t1, t2):
    curve = curve_from(piece_list)
    mid = (t1 + t2) / 2.0
    assert curve(mid) >= (curve(t1) + curve(t2)) / 2.0 - 1e-6


@given(pieces, pieces, times)
def test_addition_pointwise(p1, p2, t):
    a, b = curve_from(p1), curve_from(p2)
    total = a + b
    assert math.isclose(total(t), a(t) + b(t), rel_tol=1e-9, abs_tol=1e-6)


@given(pieces, pieces, times)
def test_minimum_pointwise(p1, p2, t):
    a, b = curve_from(p1), curve_from(p2)
    low = a.minimum(b)
    assert math.isclose(low(t), min(a(t), b(t)), rel_tol=1e-9,
                        abs_tol=1e-6)


@given(pieces, st.floats(min_value=0.0, max_value=10.0), times)
def test_shift_is_evaluation_shift(piece_list, delta, t):
    curve = curve_from(piece_list)
    shifted = curve.shift_earlier(delta)
    assert math.isclose(shifted(t), curve(t + delta), rel_tol=1e-9,
                        abs_tol=1e-6)


@given(rates, bursts, rates)
def test_token_bucket_bounds_formulae(rate, burst, capacity):
    """Closed forms S/C and S must match the generic computation."""
    arrival = token_bucket(rate, burst)
    service = constant_rate(capacity)
    if rate <= capacity:
        assert math.isclose(delay_bound(arrival, service), burst / capacity,
                            rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(backlog_bound(arrival, service), burst,
                            rel_tol=1e-9, abs_tol=1e-9)
    elif rate > capacity + 1e-9:
        # Rates within the stability epsilon of capacity are treated as
        # stable by the bound code; only assert divergence beyond it.
        assert delay_bound(arrival, service) == math.inf


@given(rates, bursts, rates, rates)
def test_dual_rate_is_bounded_by_token_bucket(rate, burst, peak, capacity):
    """The Bmax-limited curve never exceeds the plain token bucket, so its
    queue bounds are no worse -- the tightening Silo relies on."""
    peak = max(peak, rate)
    plain = token_bucket(rate, max(burst, 1.0))
    limited = dual_rate(rate, max(burst, 1.0), peak, packet_size=1.0)
    service = constant_rate(capacity)
    assert plain.dominates(limited)
    if rate <= capacity:
        # Relative slop: the bounds reach ~1e7 at tiny capacities, where
        # a float ulp already exceeds any absolute epsilon.
        b_plain = backlog_bound(plain, service)
        assert (backlog_bound(limited, service)
                <= b_plain + max(1e-6, 1e-12 * b_plain))
        d_plain = delay_bound(plain, service)
        assert (delay_bound(limited, service)
                <= d_plain + max(1e-9, 1e-12 * d_plain))


@given(st.lists(st.tuples(rates, bursts), min_size=1, max_size=5), rates)
def test_aggregate_bound_superadditive(sources, capacity):
    """Backlog of a sum is at least the backlog of any single source
    (admission per-port totals can only grow as tenants are added)."""
    curves = [token_bucket(r, b) for r, b in sources]
    total = curves[0]
    for c in curves[1:]:
        total = total + c
    service = constant_rate(capacity)
    if total.sustained_rate <= capacity:
        worst_single = max(backlog_bound(c, service) for c in curves)
        assert backlog_bound(total, service) >= worst_single - 1e-6
