"""Deterministic, seeded fault schedules and the clock that replays them.

A :class:`FaultSchedule` is an immutable, time-sorted list of
:class:`~repro.faults.model.FaultEvent` built one of three ways:

* **fixed** -- :meth:`FaultSchedule.from_events` with explicit events;
* **Poisson MTBF/MTTR** -- :meth:`FaultSchedule.poisson`: a cluster-wide
  failure process (inter-fault gaps exponential around the MTBF), each
  fault hitting a uniformly chosen component of the requested kinds and
  repairing after an exponential MTTR.  Fully determined by the seed;
* **scenario spec** -- :meth:`FaultSchedule.from_spec`: either an inline
  ``"poisson:mtbf_ms=10,mttr_ms=5,targets=link+server"`` shorthand or a
  path to a JSON file (``{"events": [...]}`` or ``{"poisson": {...}}``).

Both simulators consume a schedule through a :class:`FaultClock`: the
packet engine pre-schedules each event on its event loop, the fluid
simulator folds :meth:`FaultClock.next_time` into its next-event search
and pops due events with :meth:`FaultClock.pop_due`.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.model import (
    ACTION_DOWN,
    ACTION_UP,
    SWITCH_LEVELS,
    TARGET_LINK,
    TARGET_SERVER,
    TARGET_SWITCH,
    FaultEvent,
    FaultTarget,
)
from repro.topology.tree import TreeTopology

__all__ = ["FaultSchedule", "FaultClock", "eligible_targets"]

#: Target kinds the Poisson generator draws from by default.
DEFAULT_TARGET_KINDS = (TARGET_LINK, TARGET_SERVER)


def eligible_targets(topology: TreeTopology,
                     kinds: Sequence[str]) -> List[FaultTarget]:
    """Every failable component of the requested kinds, in a stable
    topology order (links by port id, then servers, then switches)."""
    targets: List[FaultTarget] = []
    for kind in kinds:
        if kind == TARGET_LINK:
            targets.extend(FaultTarget(TARGET_LINK, port.port_id)
                           for port in topology.ports)
        elif kind == TARGET_SERVER:
            targets.extend(FaultTarget(TARGET_SERVER, s)
                           for s in range(topology.n_servers))
        elif kind == TARGET_SWITCH:
            targets.extend(FaultTarget(TARGET_SWITCH, r, level="tor")
                           for r in range(topology.n_racks))
            targets.extend(FaultTarget(TARGET_SWITCH, p, level="agg")
                           for p in range(topology.n_pods))
            targets.append(FaultTarget(TARGET_SWITCH, 0, level="core"))
        else:
            raise ValueError(f"unknown target kind {kind!r}")
    return targets


class FaultSchedule:
    """An immutable time-sorted sequence of fault events."""

    def __init__(self, events: Iterable[FaultEvent]):
        ordered = sorted(events, key=lambda e: (e.time, e.target.spec,
                                                e.action))
        self.events: Tuple[FaultEvent, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        """Whether the schedule holds no events."""
        return not self.events

    def clock(self) -> "FaultClock":
        """A fresh replay cursor over this schedule."""
        return FaultClock(self)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[FaultEvent]) -> "FaultSchedule":
        """A schedule over an explicit event iterable."""
        return cls(events)

    @classmethod
    def poisson(cls, topology: TreeTopology, mtbf: float, mttr: float,
                horizon: float, seed: int = 0,
                target_kinds: Sequence[str] = DEFAULT_TARGET_KINDS,
                degrade_fraction: float = 0.0) -> "FaultSchedule":
        """Cluster-wide Poisson failure/repair process.

        One global process draws inter-fault gaps ``Exp(mtbf)``; each
        fault hits a uniformly chosen healthy component and repairs
        after ``Exp(mttr)``.  With probability ``degrade_fraction`` a
        fault is a partial rate degradation (uniform factor in
        ``[0.1, 0.9]``) rather than a full outage.  Repairs beyond the
        horizon are dropped: the component simply stays impaired at the
        end of the run.  The schedule is a pure function of the
        arguments, so same-seed runs replay identically.
        """
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        if not 0.0 <= degrade_fraction <= 1.0:
            raise ValueError("degrade_fraction must be in [0, 1]")
        targets = eligible_targets(topology, target_kinds)
        if not targets:
            raise ValueError("no eligible fault targets")
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        busy_until: Dict[str, float] = {}
        now = 0.0
        while True:
            now += rng.expovariate(1.0 / mtbf)
            if now >= horizon:
                break
            target = targets[rng.randrange(len(targets))]
            repair = now + rng.expovariate(1.0 / mttr)
            degraded = rng.random() < degrade_fraction
            factor = rng.uniform(0.1, 0.9) if degraded else 0.0
            if busy_until.get(target.spec, -1.0) >= now:
                # Component still under repair from an earlier fault;
                # the draw is consumed (keeps the stream deterministic)
                # but no overlapping fault is scheduled.
                continue
            busy_until[target.spec] = repair
            if degraded:
                events.append(FaultEvent.degrade(now, target, factor))
            else:
                events.append(FaultEvent.down(now, target))
            if repair < horizon:
                events.append(FaultEvent.up(repair, target))
        return cls(events)

    @classmethod
    def from_spec(cls, spec: str, topology: TreeTopology, horizon: float,
                  seed: int = 0) -> "FaultSchedule":
        """Build a schedule from a CLI spec string.

        ``"none"`` (or ``""``) is the empty schedule; a string starting
        with ``"poisson:"`` parses inline ``k=v`` pairs (``mtbf_ms``,
        ``mttr_ms``, ``targets`` joined by ``+``, ``degrade``); anything
        else is a path to a JSON scenario file.
        """
        spec = spec.strip()
        if not spec or spec == "none":
            return cls(())
        if spec.startswith("poisson:"):
            params = _parse_kv(spec[len("poisson:"):])
            return cls._poisson_from_params(params, topology, horizon,
                                            seed)
        with open(spec, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        if "events" in doc:
            events = [cls._event_from_json(entry)
                      for entry in doc["events"]]
            return cls(events)
        if "poisson" in doc:
            return cls._poisson_from_params(dict(doc["poisson"]), topology,
                                            horizon, seed)
        raise ValueError(
            f"scenario file {spec!r} needs an 'events' or 'poisson' key")

    @classmethod
    def _poisson_from_params(cls, params: Dict[str, object],
                             topology: TreeTopology, horizon: float,
                             seed: int) -> "FaultSchedule":
        mtbf_ms = float(params.pop("mtbf_ms", 10.0))
        mttr_ms = float(params.pop("mttr_ms", 5.0))
        raw_targets = params.pop("targets", "+".join(DEFAULT_TARGET_KINDS))
        degrade = float(params.pop("degrade", 0.0))
        if params:
            raise ValueError(f"unknown poisson spec keys {sorted(params)}")
        if isinstance(raw_targets, str):
            kinds: Sequence[str] = tuple(raw_targets.split("+"))
        else:
            kinds = tuple(raw_targets)
        return cls.poisson(topology, mtbf=mtbf_ms * 1e-3,
                           mttr=mttr_ms * 1e-3, horizon=horizon, seed=seed,
                           target_kinds=kinds, degrade_fraction=degrade)

    @staticmethod
    def _event_from_json(entry: Dict[str, object]) -> FaultEvent:
        target = FaultTarget.parse(str(entry["target"]))
        action = str(entry.get("action", ACTION_DOWN))
        default = {ACTION_DOWN: 0.0, ACTION_UP: 1.0}.get(action, 0.5)
        return FaultEvent(time=float(entry["time"]), target=target,
                          action=action,
                          factor=float(entry.get("factor", default)))


def _parse_kv(text: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad spec fragment {part!r} (want k=v)")
        key, value = part.split("=", 1)
        params[key.strip()] = value.strip()
    return params


class FaultClock:
    """Cursor over a schedule, shared by the simulators.

    ``next_time()`` is the next undelivered event's time (``inf`` when
    exhausted) -- fold it into the next-event search; ``pop_due(now)``
    delivers every event at or before ``now`` exactly once.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        """Whether every event has been popped."""
        return self._cursor >= len(self.schedule.events)

    def next_time(self) -> float:
        """Time of the next pending event (``inf`` when exhausted)."""
        if self.exhausted:
            return float("inf")
        return self.schedule.events[self._cursor].time

    def pop_due(self, now: float) -> List[FaultEvent]:
        """Pop and return every event due at or before ``now``."""
        events = self.schedule.events
        due: List[FaultEvent] = []
        while (self._cursor < len(events)
               and events[self._cursor].time <= now):
            due.append(events[self._cursor])
            self._cursor += 1
        return due
