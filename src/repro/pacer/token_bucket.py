"""Virtual token buckets.

The prototype's driver never holds packets against a hardware timer;
instead each packet is *timestamped* with the earliest moment it may leave
(section 5: "we use virtual token buckets, i.e. packets are not drained at
an absolute time, rather we timestamp when each packet needs to be sent
out").  :meth:`TokenBucket.stamp` implements exactly that: it debits the
bucket and returns the departure time, which later stages (chained buckets,
the void-packet scheduler) may only push further into the future.
"""

from __future__ import annotations

from repro import units


class TokenBucket:
    """A token bucket with ``rate`` bytes/s refill and ``capacity`` bytes.

    The bucket starts full.  Negative balances are allowed transiently while
    computing a stamp: a packet larger than the current tokens is stamped
    for the future moment the bucket will have refilled enough.
    """

    __slots__ = ("rate", "capacity", "_tokens", "_updated")

    def __init__(self, rate: float, capacity: float,
                 start_time: float = 0.0):
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        if capacity <= 0:
            raise ValueError("token bucket capacity must be positive")
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._updated = start_time

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(self.capacity,
                               self._tokens + self.rate * (now - self._updated))
            self._updated = now

    def tokens_at(self, now: float) -> float:
        """Token balance at time ``now`` without consuming anything.

        ``now`` earlier than the bucket's virtual clock (which a deficit
        stamp pushes into the future) reads the balance at the clock
        instead: the bucket has already committed those tokens.
        """
        if now <= self._updated:
            return min(self._tokens, self.capacity)
        return min(self.capacity,
                   self._tokens + self.rate * (now - self._updated))

    def stamp(self, size: float, now: float) -> float:
        """Debit ``size`` bytes and return the earliest departure time.

        If the bucket holds enough tokens the packet may leave at ``now``;
        otherwise the departure is deferred until the deficit refills.  The
        debit is applied either way, so back-to-back stamps space a packet
        train at exactly ``rate``.  A ``now`` before the bucket's virtual
        clock is clamped to it (the clock marks when already-stamped
        traffic has drained).
        """
        if size <= 0:
            raise ValueError("packet size must be positive")
        now = max(now, self._updated)
        self._refill(now)
        if self._tokens >= size:
            self._tokens -= size
            return now
        deficit = size - self._tokens
        wait = deficit / self.rate
        self._tokens = 0.0
        self._updated = now + wait
        return now + wait

    def would_stamp(self, size: float, now: float) -> float:
        """The departure time :meth:`stamp` would return, without debiting."""
        start = max(now, self._updated)
        tokens = self.tokens_at(start)
        if tokens >= size:
            return start if start > now else now
        return start + (size - tokens) / self.rate

    def deficit(self, now: float) -> float:
        """Bytes of already-stamped traffic still draining at ``now``.

        A deficit stamp pushes the bucket's virtual clock into the future;
        until the clock catches up, ``(clock - now) * rate`` bytes of
        committed traffic are outstanding.  This is the *virtual backlog*
        the observability layer records as "token-bucket backlog": the
        pacer never physically queues these bytes (they carry future
        timestamps instead), but they measure how far the source is
        running ahead of its guarantee.
        """
        if self._updated <= now:
            return 0.0
        return (self._updated - now) * self.rate

    def set_rate(self, rate: float, now: float) -> None:
        """Change the refill rate (used by the EyeQ-style coordination)."""
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self._refill(now)
        self.rate = rate

    def __repr__(self) -> str:
        return (f"TokenBucket({units.to_mbps(self.rate):.1f}Mbps, "
                f"{self.capacity:.0f}B)")
