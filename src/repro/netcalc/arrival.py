"""Standard arrival-curve constructors (paper Fig. 6a).

Silo characterizes a VM with guarantee ``{B, S, d}`` and burst rate ``Bmax``
by the dual-rate curve ``A'(t) = min(Bmax*t + L, B*t + S)``: the VM may hold
``S`` bytes of burst credit but drains it no faster than ``Bmax``; ``L`` is
one maximum-size packet, since even a perfectly paced source emits whole
packets.  The simpler token bucket ``A(t) = B*t + S`` is the curve the paper
uses for exposition and is an upper bound on the dual-rate curve.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.netcalc.curves import Curve


def token_bucket(rate: float, burst: float) -> Curve:
    """The curve ``A(t) = rate * t + burst`` (bytes/second, bytes)."""
    if rate < 0:
        raise ValueError("token bucket rate must be >= 0")
    if burst < 0:
        raise ValueError("token bucket burst must be >= 0")
    return Curve.affine(rate, burst)


def dual_rate(rate: float, burst: float, peak_rate: float,
              packet_size: float = units.MTU) -> Curve:
    """The ``Bmax``-limited arrival curve ``min(peak*t + L, rate*t + S)``.

    ``peak_rate`` must be at least ``rate``; when they are equal the curve
    degenerates to a token bucket with a one-packet burst.
    """
    if peak_rate < rate:
        raise ValueError(
            f"peak rate {peak_rate} must be >= sustained rate {rate}")
    if packet_size <= 0:
        raise ValueError("packet size must be positive")
    if peak_rate == rate or burst <= packet_size:
        return Curve.affine(rate, min(burst, packet_size))
    return Curve.from_pieces([
        (peak_rate, packet_size),
        (rate, burst),
    ])


def arrival_for_guarantee(bandwidth: float, burst: float,
                          peak_rate: Optional[float] = None,
                          packet_size: float = units.MTU) -> Curve:
    """Arrival curve for a Silo guarantee ``{B, S, Bmax}``.

    Uses the dual-rate form when a finite ``peak_rate`` is given, otherwise
    the plain token bucket (an infinite burst rate, matching the curve
    labelled ``A`` in the paper's Fig. 6a).
    """
    if peak_rate is None:
        return token_bucket(bandwidth, burst)
    return dual_rate(bandwidth, burst, peak_rate, packet_size)
