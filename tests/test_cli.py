"""The command-line interface."""

import pytest

from repro.cli import main


class TestAdmit:
    def test_admit_prints_placement_and_bounds(self, capsys):
        code = main(["admit", "--vms", "6", "--pods", "1",
                     "--racks-per-pod", "2", "--servers-per-rack", "4",
                     "--slots", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ADMITTED 6 VMs" in out
        assert "latency bound" in out

    def test_admit_rejects_oversized_tenant(self, capsys):
        code = main(["admit", "--vms", "1000", "--pods", "1",
                     "--racks-per-pod", "1", "--servers-per-rack", "2",
                     "--slots", "4"])
        assert code == 1
        assert "REJECTED" in capsys.readouterr().out


class TestBounds:
    def test_bounds_table(self, capsys):
        code = main(["bounds", "--bandwidth-mbps", "250",
                     "--burst-kb", "15", "--delay-us", "1000",
                     "--bmax-gbps", "1"])
        out = capsys.readouterr().out
        assert code == 0
        # Rows for small and large messages, monotone bounds.
        lines = [l for l in out.splitlines() if "KB" in l and "ms" in l]
        assert len(lines) >= 8


class TestPace:
    def test_pace_reports_wire_split(self, capsys):
        code = main(["pace", "--rate-gbps", "2", "--packets", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "void" in out
        assert "pacing error" in out


class TestChurn:
    def test_churn_runs_three_policies(self, capsys):
        code = main(["churn", "--pods", "1", "--racks-per-pod", "2",
                     "--servers-per-rack", "4", "--slots", "4",
                     "--horizon", "10", "--occupancy", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        for policy in ("locality", "oktopus", "silo"):
            assert policy in out
