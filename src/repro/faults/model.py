"""Typed fault events and the health state they fold into.

Silo's guarantees are computed against a static, healthy topology; this
module gives failures a first-class representation so every layer can
re-validate them on the *degraded* topology:

* a :class:`FaultTarget` names one physical component -- a directed link
  (by port id), a server, or a whole switch (ToR / aggregation / core);
* a :class:`FaultEvent` changes that component's health at a simulation
  time: ``down`` (capacity factor 0), ``degrade`` (partial rate,
  factor in ``(0, 1)``) or ``up`` (factor 1);
* a :class:`HealthState` folds applied events into the current per-port
  capacity factors and the set of crashed servers, expanding switch and
  server targets into the directed ports they own.

Targets serialize to stable spec strings (``"link:12"``, ``"server:3"``,
``"switch:agg:1"``) used by scenario files, trace events and CSV output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.topology.tree import TreeTopology

__all__ = [
    "TARGET_LINK", "TARGET_SERVER", "TARGET_SWITCH",
    "ACTION_DOWN", "ACTION_UP", "ACTION_DEGRADE",
    "SWITCH_LEVELS", "FaultTarget", "FaultEvent", "HealthState",
]

TARGET_LINK = "link"
TARGET_SERVER = "server"
TARGET_SWITCH = "switch"

ACTION_DOWN = "down"
ACTION_UP = "up"
ACTION_DEGRADE = "degrade"

#: Switch levels a :data:`TARGET_SWITCH` fault may name.
SWITCH_LEVELS = ("tor", "agg", "core")


@dataclass(frozen=True)
class FaultTarget:
    """One failable component of the topology.

    ``kind`` is ``"link"`` (``index`` = directed port id), ``"server"``
    (``index`` = server id) or ``"switch"`` (``level`` in
    :data:`SWITCH_LEVELS`; ``index`` = rack id for ToR, pod id for
    aggregation, ignored for the single logical core).
    """

    kind: str
    index: int
    level: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (TARGET_LINK, TARGET_SERVER, TARGET_SWITCH):
            raise ValueError(f"unknown fault target kind {self.kind!r}")
        if self.kind == TARGET_SWITCH and self.level not in SWITCH_LEVELS:
            raise ValueError(
                f"switch level must be one of {SWITCH_LEVELS}, "
                f"got {self.level!r}")
        if self.kind != TARGET_SWITCH and self.level:
            raise ValueError(f"{self.kind} targets take no level")
        if self.index < 0:
            raise ValueError("target index must be >= 0")

    @property
    def spec(self) -> str:
        """Stable string form, e.g. ``"link:12"`` or ``"switch:tor:0"``."""
        if self.kind == TARGET_SWITCH:
            return f"switch:{self.level}:{self.index}"
        return f"{self.kind}:{self.index}"

    @classmethod
    def parse(cls, spec: str) -> "FaultTarget":
        """Parse a target spec like ``server:3`` or ``link:tor_up:1``."""
        parts = spec.split(":")
        if parts[0] == TARGET_SWITCH:
            if len(parts) != 3:
                raise ValueError(f"bad switch target {spec!r} "
                                 "(want switch:<level>:<index>)")
            return cls(kind=TARGET_SWITCH, level=parts[1],
                       index=int(parts[2]))
        if len(parts) != 2 or parts[0] not in (TARGET_LINK, TARGET_SERVER):
            raise ValueError(f"bad fault target {spec!r}")
        return cls(kind=parts[0], index=int(parts[1]))

    def ports(self, topology: TreeTopology) -> List[int]:
        """The directed port ids this component owns.

        A link is one port; a crashed server takes both its NIC egress
        and the ToR port facing it; a switch takes every port on it.
        """
        if self.kind == TARGET_LINK:
            if not 0 <= self.index < len(topology.ports):
                raise ValueError(f"port {self.index} out of range")
            return [self.index]
        if self.kind == TARGET_SERVER:
            return [topology.nic_up(self.index).port_id,
                    topology.tor_down(self.index).port_id]
        if self.level == "tor":
            rack = self.index
            ids = [topology.tor_up(rack).port_id]
            ids.extend(topology.tor_down(s).port_id
                       for s in topology.servers_in_rack(rack))
            return ids
        if self.level == "agg":
            pod = self.index
            if not 0 <= pod < topology.n_pods:
                raise ValueError(f"pod {pod} out of range")
            ids = [topology.agg_up(pod).port_id]
            ids.extend(topology.agg_down(r).port_id
                       for r in topology.racks_in_pod(pod))
            return ids
        # The multi-rooted core is modelled as one logical switch: its
        # failure takes every core-facing downlink.
        return [topology.core_down(p).port_id
                for p in range(topology.n_pods)]

    def servers(self, topology: TreeTopology) -> List[int]:
        """Servers whose VMs are lost when this component fails.

        Only server crashes kill VMs; link and switch faults strand
        traffic but leave the endpoints running.
        """
        if self.kind == TARGET_SERVER:
            if not 0 <= self.index < topology.n_servers:
                raise ValueError(f"server {self.index} out of range")
            return [self.index]
        return []


@dataclass(frozen=True)
class FaultEvent:
    """One health change at one simulation time.

    ``factor`` is the component's capacity multiplier after the event:
    0 for ``down``, 1 for ``up``, in ``(0, 1)`` for ``degrade``.
    """

    time: float
    target: FaultTarget
    action: str
    factor: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.action == ACTION_DOWN:
            expected_ok = self.factor == 0.0
        elif self.action == ACTION_UP:
            expected_ok = self.factor == 1.0
        elif self.action == ACTION_DEGRADE:
            expected_ok = 0.0 < self.factor < 1.0
        else:
            raise ValueError(f"unknown fault action {self.action!r}")
        if not expected_ok:
            raise ValueError(
                f"action {self.action!r} is inconsistent with "
                f"factor {self.factor}")

    @classmethod
    def down(cls, time: float, target: FaultTarget) -> "FaultEvent":
        """An event taking ``target`` fully down at ``time``."""
        return cls(time=time, target=target, action=ACTION_DOWN,
                   factor=0.0)

    @classmethod
    def up(cls, time: float, target: FaultTarget) -> "FaultEvent":
        """A repair event restoring ``target`` at ``time``."""
        return cls(time=time, target=target, action=ACTION_UP, factor=1.0)

    @classmethod
    def degrade(cls, time: float, target: FaultTarget,
                factor: float) -> "FaultEvent":
        """An event scaling ``target``'s capacity to ``factor``."""
        return cls(time=time, target=target, action=ACTION_DEGRADE,
                   factor=factor)


class HealthState:
    """Current component health, folded from applied events.

    Per-port capacity factors compose across overlapping faults by
    taking the *minimum* of the owning components' factors (a degraded
    link inside a dead switch is dead), recomputed from the per-target
    factors on every change so repairs restore exactly the pre-fault
    state.
    """

    def __init__(self, topology: TreeTopology):
        self.topology = topology
        #: target spec -> its own factor (only non-healthy targets kept).
        self._target_factor: Dict[str, float] = {}
        #: target spec -> the ports it owns (cached expansion).
        self._target_ports: Dict[str, Tuple[int, ...]] = {}
        #: port id -> composed factor (absent = healthy 1.0).
        self.port_factor: Dict[int, float] = {}
        self.down_servers: Set[int] = set()

    def factor(self, port_id: int) -> float:
        """The capacity factor applied to a port (1.0 = healthy)."""
        return self.port_factor.get(port_id, 1.0)

    def is_down(self, port_id: int) -> bool:
        """Whether a port is fully down."""
        return self.port_factor.get(port_id, 1.0) <= 0.0

    @property
    def down_ports(self) -> Set[int]:
        """Ids of every fully-down port."""
        return {pid for pid, f in self.port_factor.items() if f <= 0.0}

    def apply(self, event: FaultEvent) -> Dict[int, float]:
        """Fold one event in; returns ``{port_id: new factor}`` for every
        port whose composed factor changed."""
        target = event.target
        spec = target.spec
        if spec not in self._target_ports:
            self._target_ports[spec] = tuple(target.ports(self.topology))
        if event.action == ACTION_UP:
            self._target_factor.pop(spec, None)
        else:
            self._target_factor[spec] = event.factor
        for server in target.servers(self.topology):
            if event.action == ACTION_UP:
                self.down_servers.discard(server)
            else:
                # A degraded server still hosts VMs; only a full crash
                # kills them.
                if event.action == ACTION_DOWN:
                    self.down_servers.add(server)
        changed: Dict[int, float] = {}
        for port_id in self._target_ports[spec]:
            new = self._composed_factor(port_id)
            old = self.port_factor.get(port_id, 1.0)
            if new != old:
                if new == 1.0:
                    del self.port_factor[port_id]
                else:
                    self.port_factor[port_id] = new
                changed[port_id] = new
        return changed

    def _composed_factor(self, port_id: int) -> float:
        factor = 1.0
        for spec, target_factor in self._target_factor.items():
            if port_id in self._target_ports[spec]:
                factor = min(factor, target_factor)
        return factor
