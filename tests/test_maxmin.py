"""Max-min fairness: axioms and edge cases."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxmin import max_min_fair, max_min_fair_reference


class TestBasics:
    def test_single_flow_gets_link(self):
        rates = max_min_fair({"f": (("l",), math.inf)}, {"l": 10.0})
        assert rates["f"] == pytest.approx(10.0)

    def test_equal_split(self):
        flows = {f"f{i}": (("l",), math.inf) for i in range(4)}
        rates = max_min_fair(flows, {"l": 10.0})
        for rate in rates.values():
            assert rate == pytest.approx(2.5)

    def test_demand_capped_flow_releases_share(self):
        flows = {"small": (("l",), 1.0), "big": (("l",), math.inf)}
        rates = max_min_fair(flows, {"l": 10.0})
        assert rates["small"] == pytest.approx(1.0)
        assert rates["big"] == pytest.approx(9.0)

    def test_two_link_bottleneck(self):
        # f1 crosses both links; f2 only the second.
        flows = {"f1": (("a", "b"), math.inf), "f2": (("b",), math.inf)}
        rates = max_min_fair(flows, {"a": 4.0, "b": 10.0})
        assert rates["f1"] == pytest.approx(4.0)
        assert rates["f2"] == pytest.approx(6.0)

    def test_linkless_flow_gets_demand(self):
        rates = max_min_fair({"f": ((), 7.0)}, {})
        assert rates["f"] == 7.0

    def test_linkless_elastic_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair({"f": ((), math.inf)}, {})

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            max_min_fair({"f": (("ghost",), 1.0)}, {})

    def test_zero_demand(self):
        rates = max_min_fair({"f": (("l",), 0.0)}, {"l": 10.0})
        assert rates["f"] == 0.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair({"f": (("l",), -1.0)}, {"l": 10.0})


class TestSaturationEpsilon:
    """The saturation test must use a *relative* epsilon.

    The seed flagged a link as saturated when its residual room fell
    below an absolute 1e-9.  At byte-scale capacities (5e8 bytes/s and
    up) float accumulation leaves ~1e-7 of residue on a fully allocated
    link, so saturation was never detected, no flow froze, and the
    defensive freeze-everything fallback pinned flows on *unrelated*
    links below their fair share.
    """

    # Minimized from a randomized fast-vs-reference divergence: "capped"
    # saturates l1 exactly at its demand; "elastic" must then grow on l4
    # until l4 saturates, not stay pinned at the l1 water level.
    GBPS_FLOWS = {
        "capped": (("l1", "l4"), 1.25e8),
        "elastic": (("l1",), math.inf),
        "other": (("l4",), 3.96e7),
    }
    GBPS_CAPS = {"l1": 5e8, "l4": 5e8}

    def test_gbps_scale_saturation_regression(self):
        rates = max_min_fair(self.GBPS_FLOWS, self.GBPS_CAPS)
        assert rates["capped"] == pytest.approx(1.25e8)
        assert rates["other"] == pytest.approx(3.96e7)
        # l1 has 5e8 - 1.25e8 left for the elastic flow alone.
        assert rates["elastic"] == pytest.approx(3.75e8)

    def test_gbps_scale_reference_agrees(self):
        fast = max_min_fair(self.GBPS_FLOWS, self.GBPS_CAPS)
        ref = max_min_fair_reference(self.GBPS_FLOWS, self.GBPS_CAPS)
        for flow_id in fast:
            assert fast[flow_id] == pytest.approx(ref[flow_id], rel=1e-6)

    def test_unit_scale_saturation(self):
        # The same shape at unit scale, where the absolute epsilon
        # happened to work -- the relative epsilon must not regress it.
        flows = {"capped": (("l1", "l4"), 0.125),
                 "elastic": (("l1",), math.inf),
                 "other": (("l4",), 0.0396)}
        caps = {"l1": 0.5, "l4": 0.5}
        for solver in (max_min_fair, max_min_fair_reference):
            rates = solver(flows, caps)
            assert rates["capped"] == pytest.approx(0.125)
            assert rates["elastic"] == pytest.approx(0.375)
            assert rates["other"] == pytest.approx(0.0396)


links = st.sampled_from(["a", "b", "c", "d"])
flow_defs = st.lists(
    st.tuples(st.sets(links, min_size=1, max_size=3),
              st.one_of(st.just(math.inf),
                        st.floats(min_value=0.1, max_value=100.0))),
    min_size=1, max_size=10)


@settings(max_examples=100, deadline=None)
@given(flow_defs)
def test_feasibility_and_demand_respect(defs):
    flows = {i: (tuple(links_), demand)
             for i, (links_, demand) in enumerate(defs)}
    capacities = {l: 10.0 for l in "abcd"}
    rates = max_min_fair(flows, capacities)
    # No link over capacity.
    for link in capacities:
        load = sum(rates[i] for i, (ls, _) in flows.items() if link in ls)
        assert load <= capacities[link] + 1e-6
    # No flow above demand; none negative.
    for i, (_, demand) in flows.items():
        assert -1e-9 <= rates[i] <= demand + 1e-6


@settings(max_examples=50, deadline=None)
@given(flow_defs)
def test_maxmin_bottleneck_condition(defs):
    """Every flow below its demand must cross a saturated link where it
    has a maximal share -- the defining property of max-min fairness."""
    flows = {i: (tuple(links_), demand)
             for i, (links_, demand) in enumerate(defs)}
    capacities = {l: 10.0 for l in "abcd"}
    rates = max_min_fair(flows, capacities)
    loads = {l: sum(rates[i] for i, (ls, _) in flows.items() if l in ls)
             for l in capacities}
    for i, (ls, demand) in flows.items():
        if rates[i] >= demand - 1e-6:
            continue
        bottlenecked = False
        for link in ls:
            if loads[link] >= capacities[link] - 1e-5:
                max_share = max(rates[j] for j, (ls2, _) in flows.items()
                                if link in ls2)
                if rates[i] >= max_share - 1e-5:
                    bottlenecked = True
                    break
        assert bottlenecked, f"flow {i} is rate-limited by nothing"


@settings(max_examples=100, deadline=None)
@given(flow_defs, st.sampled_from([1.0, 1e3, 5e8, 1.25e9]))
def test_water_level_matches_reference(defs, scale):
    """The water-level solver and the textbook rounds agree at every
    magnitude (demands scale with the link capacities)."""
    flows = {i: (tuple(links_),
                 demand * scale if math.isfinite(demand) else demand)
             for i, (links_, demand) in enumerate(defs)}
    capacities = {l: 10.0 * scale for l in "abcd"}
    fast = max_min_fair(flows, capacities)
    ref = max_min_fair_reference(flows, capacities)
    for i in flows:
        denom = max(abs(fast[i]), abs(ref[i]), 1e-12)
        assert abs(fast[i] - ref[i]) / denom <= 1e-6
