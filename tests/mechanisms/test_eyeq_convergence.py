"""EyeQ control loop converges to the allocate_hose_rates fixed point."""

import math

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.mechanisms import get_mechanism
from repro.mechanisms.eyeq import DEFAULT_FEEDBACK_INTERVAL, waterfill
from repro.pacer.eyeq import allocate_hose_rates
from repro.phynet.apps import BulkApp
from repro.phynet.metrics import MetricsCollector
from repro.topology import TreeTopology

#: Convergence tolerance: the loop estimates demand from noisy
#: per-interval arrival measurements, so it tracks the ideal max-min
#: split within a few percent rather than exactly.
TOLERANCE = 0.10

#: Bound on convergence time, in control intervals.  RTT-scale schemes
#: converge in tens of RTTs; a loop that needs more than 150 intervals
#: (30 ms simulated) is broken, not slow.
MAX_INTERVALS = 150


def guarantee(bandwidth):
    return NetworkGuarantee(bandwidth=bandwidth, burst=15 * units.KB,
                            delay=units.msec(1))


def run_incast(send_rates_mbps, recv_rate_mbps, duration):
    """N senders -> 1 receiver incast under the EyeQ mechanism."""
    topo = TreeTopology(n_pods=1, racks_per_pod=1,
                        servers_per_rack=len(send_rates_mbps) + 1,
                        slots_per_server=2, link_rate=units.gbps(1))
    mech = get_mechanism("eyeq")
    net = mech.build_network(topo)
    recv_g = guarantee(units.mbps(recv_rate_mbps))
    mech.add_vm(net, 0, tenant_id=1, server=0, guarantee=recv_g)
    send_gs = {}
    for i, rate in enumerate(send_rates_mbps):
        send_gs[i + 1] = guarantee(units.mbps(rate))
        mech.add_vm(net, i + 1, tenant_id=1, server=i + 1,
                    guarantee=send_gs[i + 1])
    metrics = MetricsCollector()
    app = BulkApp(net, metrics, tenant_id=1,
                  pairs=[(vm, 0) for vm in send_gs],
                  transport_class=mech.transport_class(),
                  transport_kwargs=mech.transport_kwargs())
    mech.start(net)
    app.start(0.0)
    net.sim.run(until=duration)
    expected = allocate_hose_rates(
        demands={(vm, 0): float("inf") for vm in send_gs},
        send_guarantees={vm: g.bandwidth for vm, g in send_gs.items()},
        recv_guarantees={0: recv_g.bandwidth})
    return mech, expected


class TestConvergence:
    def test_incast_converges_to_hose_max_min(self):
        """Heterogeneous senders: some sender-hose bound, some sharing."""
        duration = MAX_INTERVALS * DEFAULT_FEEDBACK_INTERVAL
        mech, expected = run_incast(
            send_rates_mbps=(900.0, 300.0, 150.0),
            recv_rate_mbps=600.0, duration=duration)
        for pair, want in expected.items():
            got = mech.controller.pair_rate(*pair)
            assert got is not None, f"pair {pair} never throttled"
            assert got == pytest.approx(want, rel=TOLERANCE), (
                f"pair {pair}: advertised {got / units.MB:.1f} MB/s, "
                f"max-min share {want / units.MB:.1f} MB/s")

    def test_equal_senders_split_the_receive_hose_evenly(self):
        duration = MAX_INTERVALS * DEFAULT_FEEDBACK_INTERVAL
        mech, expected = run_incast(
            send_rates_mbps=(800.0, 800.0, 800.0, 800.0),
            recv_rate_mbps=400.0, duration=duration)
        fair = units.mbps(400.0) / 4
        for pair, want in expected.items():
            assert want == pytest.approx(fair)
            got = mech.controller.pair_rate(*pair)
            assert got == pytest.approx(fair, rel=TOLERANCE)

    def test_feedback_really_crosses_the_network(self):
        duration = 20 * DEFAULT_FEEDBACK_INTERVAL
        mech, _ = run_incast(send_rates_mbps=(500.0, 500.0),
                             recv_rate_mbps=400.0, duration=duration)
        counters = mech.controller
        assert counters.feedback_messages > 0
        # Sender-side state only ever comes from delivered feedback
        # packets, so advertisements imply the control path worked.
        assert counters._advertised


class TestWaterfill:
    def test_elastic_demands_split_evenly(self):
        shares = waterfill(90.0, {"a": math.inf, "b": math.inf,
                                  "c": math.inf})
        assert shares == {"a": 30.0, "b": 30.0, "c": 30.0}

    def test_bounded_demands_cap_and_redistribute(self):
        shares = waterfill(90.0, {"a": 10.0, "b": math.inf,
                                  "c": math.inf})
        assert shares == {"a": 10.0, "b": 40.0, "c": 40.0}

    def test_undersubscribed_demands_are_granted_fully(self):
        shares = waterfill(100.0, {"a": 20.0, "b": 30.0})
        assert shares == {"a": 20.0, "b": 30.0}
