"""Network glue and application models."""

import random

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import BulkApp, EpochBurstApp, MemcachedApp
from repro.phynet.packet import PRIORITY_BEST_EFFORT
from repro.topology import TreeTopology
from repro.workloads import EtcWorkload, Fixed
from repro.workloads.patterns import all_to_all_pairs


def small_topo():
    return TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                        slots_per_server=6, link_rate=units.gbps(10))


class TestNetworkConstruction:
    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            PacketNetwork(small_topo(), scheme="carrier-pigeon")

    def test_vm_validation(self):
        net = PacketNetwork(small_topo())
        net.add_vm(0, 1, 0)
        with pytest.raises(ValueError):
            net.add_vm(0, 1, 1)  # duplicate id
        with pytest.raises(ValueError):
            net.add_vm(1, 1, 99)  # bad server
        with pytest.raises(ValueError):
            net.add_vm(2, 1, 0, paced=True)  # paced needs guarantee

    def test_routes_are_cached_and_shared(self):
        net = PacketNetwork(small_topo())
        net.add_vm(0, 1, 0)
        net.add_vm(1, 1, 1)
        assert net.route(0, 1) is net.route(0, 1)

    def test_hull_ports_have_phantom_queues(self):
        net = PacketNetwork(small_topo(), scheme="hull")
        port = next(iter(net.ports.values()))
        assert port.phantom_drain is not None
        assert port.phantom_drain < port.capacity

    def test_dctcp_ports_have_ecn(self):
        net = PacketNetwork(small_topo(), scheme="dctcp")
        port = next(iter(net.ports.values()))
        assert port.ecn_threshold is not None


class TestIntraServerDelivery:
    def test_same_server_bypasses_network(self):
        net = PacketNetwork(small_topo())
        net.add_vm(0, 1, 0)
        net.add_vm(1, 1, 0)
        metrics = MetricsCollector()
        flow = net.transport(0, 1)
        record = metrics.new_message(1, 0, 1, 1000.0, 0.0)
        flow.send_message(record)
        net.sim.run(until=0.01)
        assert record.completed
        assert all(p.stats.tx_packets == 0 for p in net.ports.values())


class TestEpochBurstApp:
    def test_messages_flow_every_epoch(self):
        net = PacketNetwork(small_topo())
        metrics = MetricsCollector()
        for i in range(4):
            net.add_vm(i, 1, i % 3)
        app = EpochBurstApp(net, metrics, 1, [0, 1, 2, 3],
                            Fixed(15 * units.KB),
                            epoch=units.msec(1), rng=random.Random(7))
        app.start(phase=0.0)
        net.sim.run(until=0.0105)
        # 3 senders x ~10 epochs.
        assert 27 <= len(metrics.completed(1)) <= 33

    def test_stop_halts_generation(self):
        net = PacketNetwork(small_topo())
        metrics = MetricsCollector()
        for i in range(3):
            net.add_vm(i, 1, i)
        app = EpochBurstApp(net, metrics, 1, [0, 1, 2],
                            Fixed(units.KB), epoch=units.msec(1),
                            rng=random.Random(7))
        app.start(phase=0.0)
        net.sim.run(until=0.0025)
        app.stop()
        count = len(metrics.records)
        net.sim.run(until=0.01)
        assert len(metrics.records) == count

    def test_needs_two_vms(self):
        net = PacketNetwork(small_topo())
        with pytest.raises(ValueError):
            EpochBurstApp(net, MetricsCollector(), 1, [0],
                          Fixed(1.0), units.msec(1), random.Random(1))


class TestBulkApp:
    def test_saturates_unpaced_link(self):
        net = PacketNetwork(small_topo())
        metrics = MetricsCollector()
        net.add_vm(0, 1, 0)
        net.add_vm(1, 1, 1)
        app = BulkApp(net, metrics, 1, [(0, 1)], chunk_size=256 * units.KB)
        app.start()
        net.sim.run(until=0.02)
        # One TCP flow on an uncontended 10G path: well above 5 Gbps.
        assert app.throughput(0.02) > units.gbps(5)

    def test_chunks_chain(self):
        net = PacketNetwork(small_topo())
        metrics = MetricsCollector()
        net.add_vm(0, 1, 0)
        net.add_vm(1, 1, 1)
        app = BulkApp(net, metrics, 1, [(0, 1)], chunk_size=10 * units.KB)
        app.start()
        net.sim.run(until=0.01)
        assert len(metrics.completed(1)) > 3


class TestMemcachedApp:
    def test_rpcs_complete_and_measure_full_roundtrip(self):
        net = PacketNetwork(small_topo())
        metrics = MetricsCollector()
        for i in range(4):
            net.add_vm(i, 1, i % 3)
        app = MemcachedApp(net, metrics, 1, server_vm=0,
                           client_vms=[1, 2, 3],
                           workload=EtcWorkload(),
                           rng=random.Random(3))
        app.start()
        net.sim.run(until=0.05)
        assert app.rpcs_completed > 100
        lats = metrics.latencies(1)
        # RPC latency includes request + response network time: at least
        # two one-way trips (the simulator models no end-host stack, so
        # the floor is microseconds, not the testbed's ~100 us).
        assert min(lats) > 2 * units.MICROS


class TestPriorities:
    def test_best_effort_marked_low_priority(self):
        net = PacketNetwork(small_topo())
        net.add_vm(0, 1, 0, priority=PRIORITY_BEST_EFFORT)
        net.add_vm(1, 1, 1, priority=PRIORITY_BEST_EFFORT)
        flow = net.transport(0, 1)
        assert flow.priority == PRIORITY_BEST_EFFORT


class TestHoseCoordination:
    def test_all_to_one_senders_share_receiver_hose(self):
        """Six paced senders converging on one receiver must end up with
        ~B/6 each after coordination."""
        topo = small_topo()
        net = PacketNetwork(topo, scheme="silo")
        metrics = MetricsCollector()
        g = NetworkGuarantee(bandwidth=units.gbps(1.2),
                             burst=1.5 * units.KB)
        for i in range(7):
            net.add_vm(i, 1, i % 3, guarantee=g, paced=True)
        pairs = [(i, 6) for i in range(6)]
        app = BulkApp(net, metrics, 1, pairs, chunk_size=units.MB)
        app.start()
        net.sim.run(until=0.05)
        # Aggregate at the receiver is capped by its hose, not 6x.
        assert app.throughput(0.05) <= units.gbps(1.4)
        assert app.throughput(0.05) >= units.gbps(0.8)
