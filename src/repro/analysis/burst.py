"""Worst-case burst convergence analysis (the paper's Fig. 5 arithmetic).

Section 4.2.1 sizes buffers with a deliberately simple model: if the VMs
behind ``k`` sender links simultaneously burst ``S_total`` bytes toward one
port, the bytes arrive at the senders' aggregate line rate ``R`` and drain
at the port rate ``C``, queuing ``S_total * (1 - C / R)`` bytes.  This
module reproduces exactly that arithmetic for a concrete placement so the
bandwidth-aware-vs-Silo contrast of Fig. 5 can be reported in the paper's
own terms (the full admission control uses the rigorous curves in
:mod:`repro.netcalc` instead, which also account for sustained bandwidth
and packet slack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.guarantees import NetworkGuarantee
from repro.topology.switch import Port
from repro.topology.tree import TreeTopology


@dataclass(frozen=True)
class PortBurst:
    """Worst-case simultaneous burst converging on one port."""

    port: Port
    burst_bytes: float
    arrival_rate: float

    @property
    def backlog_bytes(self) -> float:
        """Bytes the port must buffer while the burst arrives."""
        if self.arrival_rate <= self.port.capacity:
            return 0.0
        return self.burst_bytes * (1.0 - self.port.capacity
                                   / self.arrival_rate)

    @property
    def overflows(self) -> bool:
        """Whether the worst-case backlog exceeds the port's buffer."""
        return self.backlog_bytes > self.port.buffer_bytes


def burst_convergence(topology: TreeTopology,
                      assignment: Mapping[int, int],
                      guarantee: NetworkGuarantee) -> List[PortBurst]:
    """Per-port worst-case burst for one tenant's placement.

    ``assignment`` maps server id -> number of the tenant's VMs there.
    For every port that tenant traffic can cross, the worst case is all
    VMs on the sending side bursting ``S`` each toward the other side,
    arriving at ``min(m * Bmax, k_senders * link_rate)``.
    """
    n_total = sum(assignment.values())
    peak = guarantee.effective_peak_rate
    results: List[PortBurst] = []

    def record(port: Port, m_senders: int, k_servers: int) -> None:
        if m_senders <= 0 or m_senders >= n_total:
            return
        burst = m_senders * guarantee.burst
        rate = min(m_senders * peak,
                   max(k_servers, 1) * topology.link_rate)
        results.append(PortBurst(port=port, burst_bytes=burst,
                                 arrival_rate=rate))

    servers = sorted(assignment)
    racks: Dict[int, int] = {}
    rack_servers: Dict[int, int] = {}
    pods: Dict[int, int] = {}
    pod_servers: Dict[int, int] = {}
    for server, count in assignment.items():
        rack = topology.rack_of(server)
        pod = topology.pod_of(server)
        racks[rack] = racks.get(rack, 0) + count
        rack_servers[rack] = rack_servers.get(rack, 0) + 1
        pods[pod] = pods.get(pod, 0) + count
        pod_servers[pod] = pod_servers.get(pod, 0) + 1

    for server, count in assignment.items():
        record(topology.nic_up(server), count, 1)
        record(topology.tor_down(server), n_total - count,
               len(servers) - 1)
    if len(racks) > 1:
        for rack, count in racks.items():
            record(topology.tor_up(rack), count, rack_servers[rack])
            record(topology.agg_down(rack), n_total - count,
                   len(servers) - rack_servers[rack])
    if len(pods) > 1:
        for pod, count in pods.items():
            record(topology.agg_up(pod), count, pod_servers[pod])
            record(topology.core_down(pod), n_total - count,
                   len(servers) - pod_servers[pod])
    return results


def worst_port_backlog(topology: TreeTopology,
                       assignment: Mapping[int, int],
                       guarantee: NetworkGuarantee
                       ) -> Tuple[float, PortBurst]:
    """The hottest port under the Fig. 5 arithmetic.

    Returns ``(backlog_bytes, port_burst)`` for the port needing the most
    buffering.  Raises ``ValueError`` for single-server placements, which
    produce no network bursts at all.
    """
    bursts = burst_convergence(topology, assignment, guarantee)
    if not bursts:
        raise ValueError("placement produces no cross-server traffic")
    worst = max(bursts, key=lambda b: b.backlog_bytes)
    return worst.backlog_bytes, worst
