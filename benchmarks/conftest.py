"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and prints
it in the paper's terms; pytest-benchmark times the underlying experiment
once (``rounds=1``) since these are simulations, not micro-kernels.  The
heavyweight packet-level campaign behind Figs. 12-14 and Table 4 runs
once per session and is shared by those benchmarks through the
``fig12_campaign`` fixture.

The campaign itself -- workload constants, per-scheme cell function and
the seed -- lives in :mod:`repro.campaign.scenarios` as the registered
``fig12`` sweep, so the fixture, ``python -m repro campaign`` and any
future sweep all run the exact same definition.  The fixture runs it
in-process (``workers=0``): cells return live ``MetricsCollector``
objects, which are not JSON-checkpointable.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.campaign import get_sweep, run_campaign
# Re-exported for the benchmarks (bench_fig12-14, bench_table4) and for
# backward compatibility with the pre-campaign layout of this module.
from repro.campaign.scenarios import (  # noqa: F401
    CAMPAIGN_DURATION,
    CAMPAIGN_SCHEMES,
    CLASS_A_EPOCH,
    CLASS_A_GUARANTEE,
    CLASS_A_MESSAGE,
    CLASS_B_GUARANTEE,
    N_CLASS_A,
    N_CLASS_B,
    VMS_PER_TENANT_A,
    VMS_PER_TENANT_B,
    SchemeResult,
    run_campaign_scheme,
)


def run_once(benchmark, fn):
    """Time one execution of ``fn`` and return its result."""
    result_box = {}

    def wrapper():
        result_box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return result_box["result"]


def print_table(title: str, header: List[str],
                rows: List[List[str]]) -> None:
    """Print one figure/table in the aligned format the benches share."""
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    print(f"\n=== {title} ===")
    line = "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


_campaign_cache: Dict[str, SchemeResult] = {}


@pytest.fixture(scope="session")
def fig12_campaign():
    """All six schemes' results, computed once per session.

    The grid and seed come from the registered ``fig12`` sweep spec --
    there is no benchmark-private seeding.
    """
    if not _campaign_cache:
        result = run_campaign(get_sweep("fig12"))
        for record in result.records:
            _campaign_cache[dict(record.cell.params)["scheme"]] = \
                record.result
    return _campaign_cache
