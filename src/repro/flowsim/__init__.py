"""Flow-level (fluid) cluster simulator for datacenter-scale experiments.

Packet-level simulation cannot cover tens of thousands of servers over
minutes of tenant churn, so section 6.3's experiments use a flow-level
model, and so do we: flows are fluids with rates, either *reserved* from
the tenant's hose guarantee (Silo, Oktopus) or *max-min fair* over link
capacities (ideal TCP under locality placement).
"""

from repro.flowsim.job import FlowState, FlowTable, TenantJob
from repro.flowsim.reference import ReferenceClusterSim
from repro.flowsim.sim import ClusterSim, ClusterStats
from repro.flowsim.workload import TenantWorkload, WorkloadConfig

__all__ = [
    "FlowState",
    "FlowTable",
    "TenantJob",
    "ClusterSim",
    "ClusterStats",
    "ReferenceClusterSim",
    "TenantWorkload",
    "WorkloadConfig",
]
