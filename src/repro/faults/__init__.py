"""Deterministic fault injection shared by both simulators.

The subsystem splits into three layers:

* :mod:`repro.faults.model` -- typed fault targets/events and the
  :class:`~repro.faults.model.HealthState` that folds them into per-port
  capacity factors and crashed servers;
* :mod:`repro.faults.schedule` -- seeded, reproducible schedules (fixed
  lists, Poisson MTBF/MTTR processes, JSON scenario files) and the
  :class:`~repro.faults.schedule.FaultClock` cursor both simulators
  consume;
* :mod:`repro.faults.inject` -- the packet-engine adapter that replays a
  schedule against a ``PacketNetwork``.

The fluid simulator and the recovery controller integrate directly with
:class:`FaultClock` / :class:`HealthState`; see
:class:`repro.flowsim.sim.ClusterSim` and
:class:`repro.placement.controller.ClusterController`.
"""

from repro.faults.model import (
    ACTION_DEGRADE,
    ACTION_DOWN,
    ACTION_UP,
    SWITCH_LEVELS,
    TARGET_LINK,
    TARGET_SERVER,
    TARGET_SWITCH,
    FaultEvent,
    FaultTarget,
    HealthState,
)
from repro.faults.schedule import (
    DEFAULT_TARGET_KINDS,
    FaultClock,
    FaultSchedule,
    eligible_targets,
)
from repro.faults.inject import NetworkFaultInjector

__all__ = [
    "TARGET_LINK", "TARGET_SERVER", "TARGET_SWITCH",
    "ACTION_DOWN", "ACTION_UP", "ACTION_DEGRADE", "SWITCH_LEVELS",
    "FaultTarget", "FaultEvent", "HealthState",
    "FaultSchedule", "FaultClock", "eligible_targets",
    "DEFAULT_TARGET_KINDS", "NetworkFaultInjector",
]
