"""The Silo mechanism and the unpaced ``none`` baseline.

Silo is the paper's full stack: every VM sits behind the Fig. 8
token-bucket hierarchy (network-calculus pacing with burst allowance
``S`` and peak rate ``Bmax``), guaranteed traffic rides the high
802.1q priority class, and -- uniquely among the registered mechanisms
-- placement goes through delay-aware admission control, which is what
turns the pacer's per-hop burstiness bounds into an end-to-end delay
guarantee.

``none`` is the control group: plain TCP Reno, no pacing, no admission;
it calibrates both the simulation overhead of the other mechanisms
(``benchmarks/bench_mechanisms.py``) and the tail latency an unprotected
tenant suffers.
"""

from __future__ import annotations

from typing import Optional

from repro.core.guarantees import NetworkGuarantee
from repro.mechanisms.base import Mechanism, register_mechanism
from repro.pacer.hierarchy import PacerConfig
from repro.phynet.network import PacketNetwork, VirtualMachine

__all__ = ["SiloMechanism", "NoneMechanism"]


@register_mechanism
class SiloMechanism(Mechanism):
    """Network-calculus pacing + priorities + delay-aware admission."""

    name = "silo"
    scheme = "silo"
    uses_admission = True

    def add_vm(self, net: PacketNetwork, vm_id: int, tenant_id: int,
               server: int, guarantee: Optional[NetworkGuarantee],
               pacer_config: Optional[PacerConfig] = None
               ) -> VirtualMachine:
        """Place the VM behind a Silo pacer derived from its guarantee.

        ``pacer_config`` (from an admission decision) overrides the
        guarantee-derived default, exactly as ``repro trace`` wires the
        admitted pacer parameters.
        """
        return net.add_vm(vm_id, tenant_id, server, guarantee=guarantee,
                          paced=guarantee is not None,
                          pacer_config=pacer_config)


@register_mechanism
class NoneMechanism(Mechanism):
    """No SLO mechanism at all: plain TCP on drop-tail queues."""

    name = "none"
    scheme = "tcp"

    def add_vm(self, net: PacketNetwork, vm_id: int, tenant_id: int,
               server: int, guarantee: Optional[NetworkGuarantee],
               pacer_config: Optional[PacerConfig] = None
               ) -> VirtualMachine:
        """Place the VM unpaced; the guarantee is recorded but unenforced."""
        return net.add_vm(vm_id, tenant_id, server, guarantee=None,
                          paced=False)
