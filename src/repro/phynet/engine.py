"""Discrete-event simulation core.

A single binary heap of ``(time, sequence, callback, args)`` tuples.  The
monotonically increasing sequence number makes event ordering total and
deterministic: simultaneous events fire in scheduling order, so simulation
runs are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Simulator:
    """Event loop with O(log n) scheduling."""

    __slots__ = ("now", "tracer", "_queue", "_sequence", "_running")

    def __init__(self) -> None:
        self.now = 0.0
        #: Shared :class:`repro.obs.TraceSink` for every component driven
        #: by this loop; ``None`` (the default) disables tracing.
        self.tracer = None
        self._queue: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = itertools.count()
        self._running = False

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s into the past")
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._sequence), callback,
                        args))

    def schedule_at(self, when: float, callback: Callable[..., None],
                    *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule at {when} < now {self.now}")
        heapq.heappush(self._queue,
                       (when, next(self._sequence), callback, args))

    def run(self, until: Optional[float] = None) -> float:
        """Drain events until the queue empties or ``until`` is reached.

        Returns the virtual time at which the run stopped.  Events stamped
        exactly at ``until`` still fire.
        """
        self._running = True
        queue = self._queue
        try:
            while queue and self._running:
                when, _seq, callback, args = queue[0]
                if until is not None and when > until:
                    break
                heapq.heappop(queue)
                self.now = when
                callback(*args)
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Abort :meth:`run` after the current event."""
        self._running = False

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
