"""Regressions for two output-port bookkeeping bugs.

1. ECN marking fired one packet late: ``_mark_if_needed`` compared the
   queue depth *before* counting the arriving packet, so the packet that
   took the queue past K sailed through unmarked and the congestion
   signal lagged the queue by one arrival.
2. A port created mid-run started its phantom-queue drain clock at 0.0
   instead of the creation time, granting it the whole elapsed history as
   drain credit.
"""

from repro import units
from repro.phynet.engine import Simulator
from repro.phynet.packet import Packet
from repro.phynet.port import OutputPort


def packet(size=1500.0):
    return Packet(src=0, dst=1, size=size, route=[])


class TestMarkingCountsArrivingPacket:
    def test_first_packet_over_threshold_is_marked(self):
        """A single arrival that alone exceeds K must be marked."""
        sim = Simulator()
        port = OutputPort(sim, "t", units.gbps(10), 1e6,
                          ecn_threshold=1000.0)
        p = packet(size=1500.0)
        port.enqueue(p)
        assert p.ecn  # queue including p is 1500 > K=1000

    def test_exactly_the_crossing_packet_is_marked(self):
        """DCTCP marks on instantaneous occupancy at arrival: the packet
        that crosses K is the first one marked, not its successor."""
        sim = Simulator()
        port = OutputPort(sim, "t", units.gbps(10), 1e6,
                          ecn_threshold=2000.0)
        blocker = packet()  # takes the wire; leaves the queue empty
        port.enqueue(blocker)
        p2 = packet()  # queue (incl. itself): 1500 <= 2000
        p3 = packet()  # queue (incl. itself): 3000 > 2000
        port.enqueue(p2)
        port.enqueue(p3)
        assert not p2.ecn
        assert p3.ecn
        assert port.stats.ecn_marks == 1

    def test_phantom_counts_arriving_packet(self):
        sim = Simulator()
        capacity = units.gbps(10)
        port = OutputPort(sim, "t", capacity, 1e6,
                          phantom_drain=0.5 * capacity,
                          phantom_threshold=1000.0)
        p = packet(size=1500.0)
        port.enqueue(p)  # phantom including p: 1500 > 1000
        assert p.ecn


class TestPhantomClockStartsAtCreation:
    def test_port_created_mid_run(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        capacity = units.gbps(10)
        port = OutputPort(sim, "late", capacity, 1e6,
                          phantom_drain=0.5 * capacity,
                          phantom_threshold=100.0)
        # Regression: the drain clock used to start at t=0 regardless of
        # the port's creation time.
        assert port._phantom_updated == sim.now

    def test_phantom_accumulates_from_creation_not_zero(self):
        """Back-to-back line-rate arrivals right after a mid-run creation
        must grow the phantom queue exactly as they would at t=0."""
        def run(start_delay):
            sim = Simulator()
            if start_delay:
                sim.schedule(start_delay, lambda: None)
                sim.run()
            capacity = units.gbps(10)
            # Threshold deliberately off the phantom's exact trajectory
            # (multiples of 750) so float slop at a large time origin
            # cannot flip a comparison that sits on the boundary.
            port = OutputPort(sim, "t", capacity, 1e6,
                              phantom_drain=0.5 * capacity,
                              phantom_threshold=2800.0)
            base = sim.now
            packets = [packet() for _ in range(8)]
            for i, p in enumerate(packets):
                sim.schedule_at(base + i * 1500.0 / capacity,
                                port.enqueue, p)
            sim.run()
            return [p.ecn for p in packets]

        assert run(start_delay=0.0) == run(start_delay=5.0)
