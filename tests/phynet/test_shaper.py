"""The event-driven hierarchical shaper (Fig. 8 as a scheduler)."""

import pytest

from repro import units
from repro.pacer.hierarchy import PacerConfig
from repro.phynet.engine import Simulator
from repro.phynet.shaper import VMShaper


class FakePacket:
    __slots__ = ("dst", "size")

    def __init__(self, dst, size=units.MTU):
        self.dst = dst
        self.size = size


def build(bandwidth=units.gbps(2), burst=1.5 * units.KB,
          peak=None):
    sim = Simulator()
    released = []
    config = PacerConfig(bandwidth=bandwidth, burst=burst,
                         peak_rate=peak or bandwidth)
    shaper = VMShaper(sim, config,
                      release=lambda p: released.append((sim.now, p)))
    return sim, shaper, released


class TestSingleDestination:
    def test_burst_then_rate(self):
        sim, shaper, released = build(bandwidth=units.gbps(1),
                                      burst=3 * units.MTU,
                                      peak=units.gbps(10))
        for _ in range(6):
            shaper.submit(FakePacket("d"))
        sim.run(until=1.0)
        assert len(released) == 6
        times = [t for t, _ in released]
        # First packets ride the burst at Bmax spacing; later ones at B.
        late_gaps = [b - a for a, b in zip(times[3:], times[4:])]
        expected = units.MTU / units.gbps(1)
        for gap in late_gaps:
            assert gap == pytest.approx(expected, rel=1e-6)

    def test_fifo_per_destination(self):
        sim, shaper, released = build()
        first, second = FakePacket("d"), FakePacket("d")
        shaper.submit(first)
        shaper.submit(second)
        sim.run(until=1.0)
        assert [p for _, p in released] == [first, second]

    def test_backlog_accounting(self):
        sim, shaper, released = build(bandwidth=units.mbps(10))
        for _ in range(5):
            shaper.submit(FakePacket("d"))
        assert shaper.backlog > 0
        assert shaper.destination_backlog("d") == shaper.backlog
        sim.run(until=10.0)
        assert shaper.backlog == pytest.approx(0.0)
        assert shaper.destination_backlog("d") == pytest.approx(0.0)


class TestMultipleDestinations:
    def test_aggregate_conforms_to_tenant_bucket(self):
        bandwidth = units.gbps(2)
        sim, shaper, released = build(bandwidth=bandwidth)
        for i in range(300):
            shaper.submit(FakePacket(i % 5))
        sim.run(until=1.0)
        assert len(released) == 300
        times = [t for t, _ in released]
        span = times[-1] - times[0]
        sent = 300 * units.MTU
        assert sent <= bandwidth * span + shaper.config.burst + 2 * units.MTU

    def test_independent_destinations_do_not_couple(self):
        """A deeply backlogged destination must not delay a fresh packet
        to an idle destination beyond the shared buckets' constraint --
        the property the FIFO VMPacer lacks."""
        sim, shaper, released = build(bandwidth=units.gbps(2))
        shaper.set_destination_rate("slow", units.mbps(10))
        for _ in range(50):
            shaper.submit(FakePacket("slow"))
        # Let the slow queue become deeply backlogged.
        sim.run(until=0.001)
        released.clear()
        fresh = FakePacket("idle")
        shaper.submit(fresh)
        sim.run(until=0.002)
        fresh_times = [t for t, p in released if p is fresh]
        assert fresh_times, "idle-destination packet never released"
        # It left promptly (within a few packet times at B), not behind
        # the slow destination's multi-ms backlog.
        assert fresh_times[0] <= 0.001 + 10 * units.MTU / units.gbps(2)

    def test_per_destination_rates(self):
        sim, shaper, released = build(bandwidth=units.gbps(2))
        shaper.set_destination_rate("a", units.gbps(1))
        shaper.set_destination_rate("b", units.gbps(1))
        for _ in range(100):
            shaper.submit(FakePacket("a"))
            shaper.submit(FakePacket("b"))
        sim.run(until=1.0)
        for dest in ("a", "b"):
            times = [t for t, p in released if p.dst == dest]
            span = times[-1] - times[0]
            sent = len(times) * units.MTU
            # Conforms to the destination bucket: rate 1G, burst S.
            assert sent <= units.gbps(1) * span + shaper.config.burst \
                + 2 * units.MTU

    def test_peak_rate_spaces_all_releases(self):
        sim, shaper, released = build(bandwidth=units.gbps(2),
                                      burst=30 * units.KB,
                                      peak=units.gbps(5))
        for i in range(50):
            shaper.submit(FakePacket(i % 3))
        sim.run(until=1.0)
        times = sorted(t for t, _ in released)
        min_gap = units.MTU / units.gbps(5)
        for a, b in zip(times, times[1:]):
            assert b - a >= min_gap - 1e-12
