"""Service curves for switch ports.

A switch output port that drains at line rate ``R`` after at most ``T``
seconds of scheduling latency offers the *rate-latency* service curve
``beta(t) = R * max(0, t - T)``.  Datacenter ports in Silo's model are
simple FIFO line-rate servers, so ``T`` is zero or a small constant
(store-and-forward of one packet).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units


@dataclass(frozen=True)
class RateLatencyService:
    """Service curve ``beta(t) = rate * max(0, t - latency)``.

    ``rate`` in bytes/second, ``latency`` in seconds.
    """

    rate: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("service rate must be positive")
        if self.latency < 0:
            raise ValueError("service latency must be >= 0")

    def __call__(self, t: float) -> float:
        if t <= self.latency:
            return 0.0
        return self.rate * (t - self.latency)


def constant_rate(rate: float) -> RateLatencyService:
    """A pure line-rate server with no scheduling latency."""
    return RateLatencyService(rate=rate, latency=0.0)


def store_and_forward(rate: float,
                      packet_size: float = units.MTU) -> RateLatencyService:
    """A line-rate server that must receive a full packet before serving."""
    return RateLatencyService(rate=rate, latency=packet_size / rate)
