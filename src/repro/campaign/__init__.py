"""Parallel, resumable sweep campaigns.

This package turns the repo's reproduction sweeps into declarative
campaigns: a :class:`SweepSpec` describes a grid of parameters and
seeds for a registered scenario function, :func:`run_campaign` fans it
across worker processes with per-cell checkpoints, and the commit-order
merge makes an N-worker run byte-identical to the serial one.  See
``docs/CAMPAIGNS.md`` for the tutorial.
"""

from repro.campaign.merge import (bucket_rows, merge_bucket_rows,
                                  pool_values, pooled_stats, sum_counters)
from repro.campaign.registry import (get_scenario, get_sweep, list_sweeps,
                                     scenario, sweep)
from repro.campaign.runner import (CampaignResult, CellRecord, CellTimeout,
                                   run_campaign)
from repro.campaign.spec import Cell, SweepSpec, derive_seed

__all__ = [
    "Cell", "SweepSpec", "derive_seed",
    "scenario", "sweep", "get_scenario", "get_sweep", "list_sweeps",
    "run_campaign", "CampaignResult", "CellRecord", "CellTimeout",
    "sum_counters", "pool_values", "pooled_stats",
    "bucket_rows", "merge_bucket_rows",
]
