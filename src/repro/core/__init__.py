"""Tenant-facing API: guarantees, requests and the Silo controller."""

from repro.core.guarantees import NetworkGuarantee, message_latency_bound
from repro.core.tenant import TenantClass, TenantRequest, Placement
from repro.core.silo import SiloController

__all__ = [
    "NetworkGuarantee",
    "message_latency_bound",
    "TenantClass",
    "TenantRequest",
    "Placement",
    "SiloController",
]
