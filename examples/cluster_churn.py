#!/usr/bin/env python
"""Datacenter-scale tenant churn: admission and utilization trade-offs.

Runs the section 6.3 experiment at laptop scale: a Poisson stream of
class-A (delay-sensitive, all-to-one) and class-B (bandwidth-only,
permutation) tenants against three placement policies --

* locality packing with ideal-TCP max-min sharing (status quo),
* Oktopus bandwidth-only reservations,
* Silo's full bandwidth + delay + burst admission control,

and prints admitted fractions per class plus network utilization.

Run:  python examples/cluster_churn.py
"""

import time

from repro import units
from repro.core.tenant import TenantClass
from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
from repro.placement import (
    LocalityPlacementManager,
    OktopusPlacementManager,
    SiloPlacementManager,
)
from repro.topology import TreeTopology

HORIZON = 90.0  # simulated seconds
OCCUPANCY = 0.9


def run(name, manager_class, sharing):
    topology = TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=10,
                            slots_per_server=8,
                            link_rate=units.gbps(10),
                            oversubscription=5.0)
    manager = manager_class(topology)
    workload = TenantWorkload.for_occupancy(WorkloadConfig(), OCCUPANCY,
                                            topology.n_slots, seed=7)
    # The holding-time estimate is rough; push harder to hit the target.
    workload.arrival_rate *= 2.0
    sim = ClusterSim(manager, sharing=sharing)
    started = time.time()
    stats = sim.run(workload, until=HORIZON)
    print(f"{name:10s} admitted={manager.admitted_fraction():6.1%} "
          f"(A={manager.admitted_fraction(TenantClass.CLASS_A):6.1%} "
          f"B={manager.admitted_fraction(TenantClass.CLASS_B):6.1%}) "
          f"occupancy={stats.mean_occupancy:5.1%} "
          f"utilization={stats.network_utilization:6.2%} "
          f"jobs={stats.finished_jobs:5d} "
          f"[{time.time() - started:4.1f}s wall]")


def main() -> None:
    print(f"tenant churn for {HORIZON:.0f} simulated seconds at "
          f"~{OCCUPANCY:.0%} occupancy")
    run("locality", LocalityPlacementManager, "maxmin")
    run("oktopus", OktopusPlacementManager, "reserved")
    run("silo", SiloPlacementManager, "reserved")
    print("\nExpected shape (paper Fig. 15/16): Silo pays only a few "
          "percent of admissions and utilization versus bandwidth-only "
          "Oktopus for its delay and burst guarantees.  (The paper's "
          "32K-server runs additionally show locality rejecting more "
          "than Silo at 90% occupancy; at this scale locality's "
          "work-conserving jobs drain faster instead -- see "
          "EXPERIMENTS.md, deviations.)")


if __name__ == "__main__":
    main()
