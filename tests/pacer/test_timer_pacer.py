"""Timer-based pacing baseline (the comparison class for void packets)."""

import pytest

from repro import units
from repro.pacer.timer_pacer import TimerPacer
from repro.pacer.void_packets import VoidScheduler


def stamped(rate=units.gbps(2), n=100):
    interval = (units.MTU + 20) / rate
    return [(i * interval, units.MTU) for i in range(n)]


class TestTimerPacer:
    def test_release_on_next_tick(self):
        pacer = TimerPacer(units.gbps(10), resolution=10e-6)
        releases = pacer.schedule([(12e-6, units.MTU)])
        assert releases[0].start_time == pytest.approx(20e-6)
        assert releases[0].pacing_error == pytest.approx(8e-6)

    def test_on_tick_stamp_not_delayed(self):
        pacer = TimerPacer(units.gbps(10), resolution=10e-6)
        releases = pacer.schedule([(20e-6, units.MTU)])
        assert releases[0].start_time == pytest.approx(20e-6)

    def test_error_bounded_by_resolution(self):
        pacer = TimerPacer(units.gbps(10), resolution=50e-6)
        # At 2 Gbps the wire never saturates a 50 us window, so errors
        # are pure quantization: strictly under one period.
        assert pacer.worst_error(stamped()) < 50e-6

    def test_shared_tick_creates_bursts(self):
        pacer = TimerPacer(units.gbps(10), resolution=50e-6)
        # ~8 packets of a 2 Gbps stream land in each 50 us window.
        assert pacer.burst_run_length(stamped()) >= 2

    def test_fine_timer_avoids_bursts(self):
        # One packet per 6.08 us at 2 Gbps; a 5 us timer separates them.
        pacer = TimerPacer(units.gbps(10), resolution=5e-6)
        assert pacer.burst_run_length(stamped()) == 1

    def test_releases_never_overlap_the_wire(self):
        pacer = TimerPacer(units.gbps(10), resolution=50e-6)
        releases = pacer.schedule(stamped())
        for a, b in zip(releases, releases[1:]):
            end_a = a.start_time + a.wire_bytes / units.gbps(10)
            assert b.start_time >= end_a - 1e-15

    def test_void_packets_strictly_better(self):
        stamps = stamped()
        timer = TimerPacer(units.gbps(10), resolution=5e-6)
        void = VoidScheduler(units.gbps(10)).schedule(stamps)
        assert void.max_pacing_error() < timer.worst_error(stamps)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimerPacer(0.0, 1e-6)
        with pytest.raises(ValueError):
            TimerPacer(units.gbps(10), 0.0)
        with pytest.raises(ValueError):
            TimerPacer(units.gbps(10), 1e-6).schedule([(-1.0, 100.0)])
