"""The Mechanism interface and registry contract."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.mechanisms import (
    Mechanism,
    get_mechanism,
    mechanism_names,
    register_mechanism,
)
from repro.phynet.packet import PRIORITY_GUARANTEED
from repro.phynet.transport.swp import SwpTransport
from repro.topology import TreeTopology

GUARANTEE = NetworkGuarantee(bandwidth=units.mbps(250),
                             burst=15 * units.KB, delay=units.msec(1),
                             peak_rate=units.gbps(1))


def small_topology():
    return TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=2,
                        slots_per_server=2, link_rate=units.gbps(1))


class TestRegistry:
    def test_all_mechanisms_registered(self):
        assert mechanism_names() == ("eyeq", "none", "silo", "swp")

    def test_get_mechanism_returns_fresh_instances(self):
        assert get_mechanism("silo") is not get_mechanism("silo")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="eyeq.*silo"):
            get_mechanism("homa")

    def test_registering_a_nameless_mechanism_fails(self):
        with pytest.raises(ValueError, match="no registry name"):
            @register_mechanism
            class Nameless(Mechanism):
                """Invalid: no name."""
                def add_vm(self, *args, **kwargs):
                    """Unused."""

    def test_registering_a_duplicate_name_fails(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_mechanism
            class Duplicate(Mechanism):
                """Invalid: collides with the built-in."""
                name = "silo"
                def add_vm(self, *args, **kwargs):
                    """Unused."""


class TestStackConfiguration:
    def test_silo_paces_with_guarantee_derived_config(self):
        mech = get_mechanism("silo")
        net = mech.build_network(small_topology())
        vm = mech.add_vm(net, 0, tenant_id=1, server=0,
                         guarantee=GUARANTEE)
        assert net.scheme == "silo"
        assert mech.uses_admission
        assert vm.pacer is not None
        assert vm.guarantee is GUARANTEE

    def test_none_leaves_everything_unpaced(self):
        mech = get_mechanism("none")
        net = mech.build_network(small_topology())
        vm = mech.add_vm(net, 0, tenant_id=1, server=0,
                         guarantee=GUARANTEE)
        assert net.scheme == "tcp"
        assert vm.pacer is None
        assert mech.transport_class() is None
        assert mech.counters(net) == {}

    def test_swp_paces_delay_tenants_rate_only(self):
        mech = get_mechanism("swp")
        net = mech.build_network(small_topology())
        vm = mech.add_vm(net, 0, tenant_id=1, server=0,
                         guarantee=GUARANTEE)
        assert net.scheme == "swp"
        assert mech.transport_class() is SwpTransport
        assert vm.pacer is not None
        bucket = vm.pacer.destination_bucket(1)
        assert bucket.rate == GUARANTEE.bandwidth
        # Rate only: no admission calculus sized a burst allowance.
        assert bucket.capacity == units.MTU

    def test_swp_leaves_bandwidth_only_tenants_unpaced(self):
        mech = get_mechanism("swp")
        net = mech.build_network(small_topology())
        bulk = NetworkGuarantee(bandwidth=units.gbps(1),
                                burst=1.5 * units.KB)
        vm = mech.add_vm(net, 0, tenant_id=1, server=0, guarantee=bulk)
        assert vm.pacer is None
        assert vm.priority == PRIORITY_GUARANTEED

    def test_eyeq_starts_limiters_at_line_rate(self):
        mech = get_mechanism("eyeq")
        net = mech.build_network(small_topology())
        vm = mech.add_vm(net, 0, tenant_id=1, server=0,
                         guarantee=GUARANTEE)
        assert net.scheme == "eyeq"
        # The oracle hose coordination is off: the distributed loop
        # owns the rates.
        assert not net.coordination
        assert vm.pacer.destination_bucket(1).rate \
            == net.topology.link_rate

    def test_eyeq_start_attaches_controller(self):
        mech = get_mechanism("eyeq")
        net = mech.build_network(small_topology())
        mech.start(net)
        assert mech.controller is not None
        counters = mech.counters(net)
        assert counters["feedback_messages"] == 0
