"""Pluggable SLO mechanisms: Silo and the baselines it competes against.

The paper's evaluation (§6) compares Silo's guarantees against schemes
that attack the same tail-latency problem from different angles.  This
package makes that comparison a first-class axis of the repo: each
mechanism configures the *whole* stack -- hypervisor pacing, transport
behavior, queue discipline, control loops -- behind one
:class:`~repro.mechanisms.base.Mechanism` interface that scenario
construction consumes, so ``repro trace --mechanism eyeq`` and the
``mechanism-compare`` campaign swap entire mechanisms, not flags.

Registered mechanisms: ``silo`` (pacing + priorities + admission),
``swp`` (speculative duplicates), ``eyeq`` (distributed hose congestion
control), ``none`` (plain TCP).  See docs/MECHANISMS.md for a tour and
DESIGN.md ("Competing mechanisms") for the design rationale.
"""

from repro.mechanisms.base import (
    MECHANISMS,
    Mechanism,
    get_mechanism,
    mechanism_names,
    register_mechanism,
)
from repro.mechanisms.eyeq import (
    DEFAULT_FEEDBACK_INTERVAL,
    EyeQController,
    EyeQMechanism,
)
from repro.mechanisms.silo import NoneMechanism, SiloMechanism
from repro.mechanisms.swp import SwpMechanism

__all__ = [
    "DEFAULT_FEEDBACK_INTERVAL",
    "EyeQController",
    "EyeQMechanism",
    "MECHANISMS",
    "Mechanism",
    "NoneMechanism",
    "SiloMechanism",
    "SwpMechanism",
    "get_mechanism",
    "mechanism_names",
    "register_mechanism",
]
