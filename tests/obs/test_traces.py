"""Typed readers for the committed trace artifacts."""

import json

import pytest

from repro.obs import (find_trace_artifacts, port_kind_of,
                       read_latency_csv, read_queues_csv)

LATENCY_HEADER = ("tenant_id,src_vm,dst_vm,size,start,finish,"
                  "latency,rto_events")
QUEUE_HEADER = "port,time,count,mean,min,max,last"


def write_latency(path, rows=("1,0,1,15000.0,0.0,0.0001,0.0001,0",)):
    path.write_text("\n".join([LATENCY_HEADER, *rows]) + "\n")


def write_queues(path, rows=("tor-down[3],0.0,5,100.0,0.0,300.0,50.0",)):
    path.write_text("\n".join([QUEUE_HEADER, *rows]) + "\n")


class TestReaders:
    def test_latency_round_trip(self, tmp_path):
        path = tmp_path / "latency.csv"
        write_latency(path, ["7,3,0,25000.0,0.01,0.0102,0.0002,1"])
        (record,) = read_latency_csv(path)
        assert record.tenant_id == 7
        assert record.src_vm == 3
        assert record.dst_vm == 0
        assert record.size == 25000.0
        assert record.latency == pytest.approx(0.0002)
        assert record.rto_events == 1

    def test_queues_grouped_by_port(self, tmp_path):
        path = tmp_path / "queues.csv"
        write_queues(path, ["tor-down[3],0.0,5,100.0,0.0,300.0,50.0",
                            "nic-up[0],0.0,2,10.0,0.0,20.0,10.0",
                            "tor-down[3],0.1,4,80.0,0.0,200.0,0.0"])
        series = read_queues_csv(path)
        assert set(series) == {"tor-down[3]", "nic-up[0]"}
        assert len(series["tor-down[3]"]) == 2
        bucket = series["tor-down[3]"][0]
        assert bucket.count == 5
        assert bucket.vmin == 0.0
        assert bucket.vmax == 300.0

    def test_wrong_header_raises(self, tmp_path):
        path = tmp_path / "latency.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="expected columns"):
            read_latency_csv(path)
        with pytest.raises(ValueError, match="expected columns"):
            read_queues_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "queues.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_queues_csv(path)


class TestPortKind:
    def test_indexed_name(self):
        assert port_kind_of("tor-down[3]") == "tor-down"
        assert port_kind_of("nic-up[127]") == "nic-up"

    def test_unindexed_name_unchanged(self):
        assert port_kind_of("vswitch") == "vswitch"


class TestFindTraceArtifacts:
    def test_plain_directory(self, tmp_path):
        write_latency(tmp_path / "latency.csv")
        write_queues(tmp_path / "queues.csv")
        (artifact,) = find_trace_artifacts(tmp_path)
        assert len(artifact.latencies()) == 1
        assert set(artifact.queues()) == {"tor-down[3]"}

    def test_campaign_directory(self, tmp_path):
        cell = tmp_path / "artifacts" / "0000-abc"
        cell.mkdir(parents=True)
        write_latency(cell / "latency.csv")
        write_queues(cell / "queues.csv")
        manifest = {"cells": [{"artifacts": [
            "artifacts/0000-abc/latency.csv",
            "artifacts/0000-abc/queues.csv",
            "artifacts/0000-abc/events.jsonl",  # pruned before commit
        ]}]}
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        (artifact,) = find_trace_artifacts(tmp_path)
        assert artifact.latency_path == cell / "latency.csv"

    def test_campaign_without_csv_cells_raises(self, tmp_path):
        manifest = {"cells": [{"artifacts": ["artifacts/0000/x.csv"]}]}
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="no cells"):
            find_trace_artifacts(tmp_path)

    def test_unrecognized_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="neither"):
            find_trace_artifacts(tmp_path)
