"""Controller event replay is idempotent (re-entrant recovery).

Crash recovery redoes fault events from the write-ahead log against
restored books; if a snapshot already folded an event in, a sloppy
recovery could apply it twice.  These properties pin the contract that
makes the redo path safe regardless: re-applying the event a
:class:`ClusterController` has already processed is a no-op -- it
reports no outcomes and leaves the books and controller bookkeeping
bit-identical.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.faults import FaultEvent, FaultTarget
from repro.placement import ClusterController, SiloPlacementManager
from repro.service.snapshot import dump_controller, dump_manager
from repro.topology import TreeTopology


def build_controller():
    topo = TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    manager = SiloPlacementManager(topo)
    return manager, ClusterController(manager)


def fingerprint(manager, controller):
    return json.dumps({"manager": dump_manager(manager),
                       "controller": dump_controller(controller)},
                      sort_keys=True)


def make_request(params, tenant_id):
    n_vms, mbps = params
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(mbps),
                                   burst=15 * units.KB),
        tenant_class=TenantClass.CLASS_B, tenant_id=tenant_id)


request_params = st.tuples(
    st.integers(min_value=2, max_value=8),      # n_vms
    st.floats(min_value=50, max_value=800),     # Mbps
)

targets = st.sampled_from(
    [f"server:{s}" for s in range(12)]
    + [f"switch:tor:{r}" for r in range(4)]
    + ["switch:agg:0", "switch:agg:1"])

# A fault script: (target, is_repair) steps applied in order.  Repairs
# of never-faulted targets are legal (and must also be idempotent).
fault_scripts = st.lists(st.tuples(targets, st.booleans()),
                         min_size=1, max_size=8)


def build_event(step, time):
    spec, is_repair = step
    target = FaultTarget.parse(spec)
    if is_repair:
        return FaultEvent.up(time=time, target=target)
    return FaultEvent.down(time=time, target=target)


@settings(max_examples=20, deadline=None)
@given(st.lists(request_params, min_size=0, max_size=6), fault_scripts)
def test_replaying_any_event_is_a_noop(tenant_params, script):
    manager, controller = build_controller()
    for i, params in enumerate(tenant_params):
        manager.place(make_request(params, tenant_id=i + 1), now=0.0)
    now = 1.0
    for step in script:
        event = build_event(step, now)
        controller.apply(event, now=now)
        before = fingerprint(manager, controller)
        outcomes = controller.apply(event, now=now)
        assert outcomes == {}
        assert fingerprint(manager, controller) == before
        now += 1.0


@settings(max_examples=20, deadline=None)
@given(st.lists(request_params, min_size=1, max_size=6), targets)
def test_replay_noop_even_across_later_time(tenant_params, spec):
    """Replaying at a *later* timestamp (recovery clock skew) is still
    a no-op: idempotence keys off state, not the clock."""
    manager, controller = build_controller()
    for i, params in enumerate(tenant_params):
        manager.place(make_request(params, tenant_id=i + 1), now=0.0)
    event = build_event((spec, False), 1.0)
    controller.apply(event, now=1.0)
    before = fingerprint(manager, controller)
    assert controller.apply(event, now=7.5) == {}
    assert fingerprint(manager, controller) == before
