"""Placement manager options: fault domains and hose tightening."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import OktopusPlacementManager, SiloPlacementManager
from repro.topology import TreeTopology


def topo(**kwargs):
    defaults = dict(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                    slots_per_server=4, link_rate=units.gbps(10))
    defaults.update(kwargs)
    return TreeTopology(**defaults)


def request(n_vms=4, bandwidth=units.mbps(250)):
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=bandwidth,
                                   burst=15 * units.KB,
                                   delay=units.msec(1),
                                   peak_rate=max(units.gbps(1),
                                                 bandwidth)),
        tenant_class=TenantClass.CLASS_A)


class TestFaultDomains:
    def test_default_packs_one_server(self):
        manager = SiloPlacementManager(topo())
        placement = manager.place(request(n_vms=4))
        assert len(set(placement.vm_servers)) == 1

    def test_two_fault_domains_forces_spread(self):
        manager = SiloPlacementManager(topo(), min_fault_domains=2)
        placement = manager.place(request(n_vms=4))
        assert placement is not None
        assert len(set(placement.vm_servers)) >= 2

    def test_spread_caps_per_server_share(self):
        manager = SiloPlacementManager(topo(), min_fault_domains=4)
        placement = manager.place(request(n_vms=8))
        assert placement is not None
        assert max(placement.vms_per_server().values()) <= 2
        assert len(set(placement.vm_servers)) >= 4

    def test_single_vm_unaffected(self):
        manager = SiloPlacementManager(topo(), min_fault_domains=2)
        placement = manager.place(request(n_vms=1))
        assert placement is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            SiloPlacementManager(topo(), min_fault_domains=0)


class TestHoseTightening:
    def test_tightening_admits_at_least_as_many(self):
        """The ablation claim: the min(m, N-m) aggregate never admits
        fewer tenants than the naive m*B aggregate."""
        def admitted(tighten):
            manager = OktopusPlacementManager(
                topo(oversubscription=5.0), hose_tightening=tighten)
            count = 0
            for _ in range(30):
                if manager.place(request(n_vms=8,
                                         bandwidth=units.gbps(1.5))):
                    count += 1
            return count

        tight = admitted(True)
        naive = admitted(False)
        assert tight >= naive
        assert tight > 0

    def test_naive_reserves_more_bandwidth(self):
        tight = OktopusPlacementManager(topo(), hose_tightening=True)
        naive = OktopusPlacementManager(topo(), hose_tightening=False)
        for manager in (tight, naive):
            manager.place(request(n_vms=6, bandwidth=units.gbps(1)))
        total = lambda m: sum(s.bandwidth for s in m.states.values())
        assert total(naive) >= total(tight)
