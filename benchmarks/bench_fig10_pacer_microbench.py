"""Fig. 10: pacer microbenchmarks -- CPU usage and throughput vs rate limit.

(a) CPU cores consumed by the pacer as the rate limit sweeps 1-10 Gbps.
    The testbed measurement is substituted by the calibrated analytic
    model over the *real* void-packet schedule (see DESIGN.md); the
    reproduced claim is the shape: CPU tracks total frame rate, peaking
    at 9 Gbps where void fillers are smallest and most numerous, and
    pacing at full line rate costs only a fraction of a core over the
    no-pacing baseline.

(b) Wire throughput split into data and void bytes: the pacer sustains
    the full 10 Gbps wire at every limit, with the data rate within ~2%
    of ideal except at 9 Gbps (the paper's one deviant point, where the
    required 167-byte gap quantizes poorly).
"""

import pytest

from repro import units
from repro.pacer.cpu_model import PacerCpuModel

from conftest import print_table, run_once

LINK = units.gbps(10)
RATE_LIMITS = [units.gbps(g) for g in range(1, 11)]


def compute():
    model = PacerCpuModel()
    samples = [model.sample_rate_limit(limit, LINK)
               for limit in RATE_LIMITS]
    baseline = model.baseline_no_pacing(LINK)
    return samples, baseline


@pytest.mark.benchmark(group="fig10")
def test_fig10_pacer_microbenchmarks(benchmark):
    samples, baseline = run_once(benchmark, compute)

    rows = []
    for sample in samples:
        rows.append([
            f"{units.to_gbps(sample.rate_limit):.0f}",
            f"{sample.cores:.2f}",
            f"{sample.total_pps / 1e6:.2f}",
            f"{units.to_gbps(sample.data_rate):.2f}",
            f"{units.to_gbps(sample.void_rate):.2f}",
            f"{units.to_gbps(sample.data_rate + sample.void_rate):.2f}",
        ])
    print_table(
        "Fig. 10: pacer CPU and throughput vs rate limit "
        f"(no-pacing baseline: {baseline:.2f} cores)",
        ["Gbps limit", "cores", "Mpps", "data Gbps", "void Gbps",
         "wire Gbps"], rows)

    by_limit = {round(units.to_gbps(s.rate_limit)): s for s in samples}
    # (a) CPU peaks at 9 Gbps, not at line rate.
    peak = max(samples, key=lambda s: s.cores)
    assert round(units.to_gbps(peak.rate_limit)) == 9
    # Pacing at line rate adds well under a core over no pacing.
    assert by_limit[10].cores - baseline < 0.5
    # The 9 Gbps peak towers over the low-rate regime (void quantization
    # makes the curve locally bumpy, as real gap arithmetic must), and
    # line rate -- no voids at all -- is cheap again.
    cores = [s.cores for s in samples]
    assert cores[8] > 1.5 * cores[0]
    assert cores[9] < cores[8]
    # (b) The wire is saturated whenever there is data to pace...
    for sample in samples:
        assert sample.data_rate + sample.void_rate >= 0.98 * LINK
    # ...and the data rate is within 2% of the ideal at every limit
    # (9 Gbps included: one 168-byte void covers the required gap).
    for sample in samples:
        assert sample.data_rate >= 0.98 * sample.rate_limit
