"""Tier-1 smoke checks for the optimized hot paths (marker: perf_smoke).

Reuses the quick scales of ``benchmarks/bench_hotpaths.py`` but asserts
only correctness -- every optimized path must reproduce its reference
implementation -- never wall-clock time, so tier-1 catches perf-path
breakage without timing flakiness.  The timed variant is::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

import bench_hotpaths  # noqa: E402  (needs the benchmarks/ dir on sys.path)

pytestmark = pytest.mark.perf_smoke


def test_placement_fast_path_matches_reference():
    result = bench_hotpaths.bench_placement(quick=True)
    assert all(row["decisions_identical"] for row in result["scales"])


def test_flowsim_heap_matches_reference():
    result = bench_hotpaths.bench_flowsim(quick=True)
    assert all(row["stats_identical"] for row in result["scales"])


def test_maxmin_water_level_matches_reference():
    result = bench_hotpaths.bench_maxmin(quick=True)
    assert all(row["worst_rel_diff"] <= bench_hotpaths.TOLERANCE
               for row in result["scales"])
