"""Typed trace events shared by all three simulators.

Every event is a small frozen dataclass with a class-level ``kind`` tag
(stable, dot-separated, e.g. ``"pkt.drop"``) and a ``time`` field in
simulation seconds.  Events are plain data: emitting one costs a dataclass
construction plus one :meth:`~repro.obs.sink.TraceSink.emit` call, and
components guard the construction behind ``if tracer is not None`` so the
disabled path costs a single attribute test.

:func:`event_record` flattens an event into an ordered ``dict`` (``kind``
first, then the dataclass fields) -- the JSONL/CSV wire format of
:class:`~repro.obs.sink.JsonlSink` and the CLI exporters.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional

__all__ = [
    "PacketEnqueue", "PacketDrop", "PacketMark", "PacketTx",
    "FlowStart", "FlowFinish", "AdmissionDecision",
    "PacerStamp", "VoidEmit", "RateFeedback",
    "FaultInjected", "TenantRecovery",
    "ServiceIngress", "ServiceDecision", "ServiceSnapshot",
    "event_record", "EVENT_KINDS",
]


@dataclass(frozen=True)
class PacketEnqueue:
    """A packet was accepted into an output-port queue."""

    kind: ClassVar[str] = "pkt.enqueue"
    time: float
    port: str
    size: float
    priority: int
    #: Queue depth in bytes *including* this packet.
    queued_bytes: float


@dataclass(frozen=True)
class PacketDrop:
    """A packet was lost at a port.

    ``reason`` distinguishes congestion loss (``"tail"``) from Silo's
    class-protection eviction of queued best-effort packets
    (``"pushout"``) and arrivals at a failed port (``"fault"``); the
    three are also counted separately in
    :class:`~repro.phynet.port.PortStats`.
    """

    kind: ClassVar[str] = "pkt.drop"
    time: float
    port: str
    size: float
    priority: int
    reason: str  # "tail" | "pushout" | "fault"


@dataclass(frozen=True)
class PacketMark:
    """A packet got an ECN mark (DCTCP real queue or HULL phantom)."""

    kind: ClassVar[str] = "pkt.mark"
    time: float
    port: str
    size: float
    #: Which counter crossed its threshold: "queue" or "phantom".
    queue: str
    queued_bytes: float


@dataclass(frozen=True)
class PacketTx:
    """A packet started serializing onto the wire."""

    kind: ClassVar[str] = "pkt.tx"
    time: float
    port: str
    size: float
    priority: int
    #: Queue depth in bytes after dequeuing this packet.
    queued_bytes: float


@dataclass(frozen=True)
class FlowStart:
    """An application message (packet sim) or fluid flow (flowsim) began."""

    kind: ClassVar[str] = "flow.start"
    time: float
    tenant_id: int
    src: int
    dst: int
    size: float


@dataclass(frozen=True)
class FlowFinish:
    """A message/flow finished; ``latency`` is seconds since its start.

    The fluid simulator does not track per-flow sizes after admission, so
    ``size`` may be ``None`` there.
    """

    kind: ClassVar[str] = "flow.finish"
    time: float
    tenant_id: int
    src: int
    dst: int
    latency: float
    size: Optional[float] = None


@dataclass(frozen=True)
class AdmissionDecision:
    """One placement-manager admission decision.

    ``constraint`` names what bound the decision (see
    :mod:`repro.placement.audit`): ``"none"`` for admissions, else the
    first of Silo's checks that failed -- ``"delay"`` (constraint 2:
    no scope keeps summed queue capacities within the delay guarantee),
    ``"capacity"`` (out of VM slots), or ``"queue_bound"`` (constraint 1:
    some port's queue bound would exceed its queue capacity).
    """

    kind: ClassVar[str] = "admission"
    time: Optional[float]
    tenant_id: int
    n_vms: int
    tenant_class: str
    admitted: bool
    constraint: str
    #: Scope of the committed assignment (admissions only).
    scope: Optional[str] = None


@dataclass(frozen=True)
class PacerStamp:
    """The token-bucket hierarchy stamped a packet's departure time.

    ``delay`` (= ``stamp - time``) is how far into the future the Fig. 8
    buckets pushed the packet.
    """

    kind: ClassVar[str] = "pacer.stamp"
    time: float
    source: str
    destination: str
    size: float
    stamp: float

    @property
    def delay(self) -> float:
        """How long the pacer held the packet (stamp - arrival)."""
        return self.stamp - self.time


@dataclass(frozen=True)
class VoidEmit:
    """The void scheduler emitted a gap-filling void frame."""

    kind: ClassVar[str] = "pacer.void"
    time: float
    source: str
    wire_bytes: float


@dataclass(frozen=True)
class RateFeedback:
    """An EyeQ receiver-side congestion detector advertised a rate.

    Emitted when the receiving hypervisor of ``dst`` sends a rate
    feedback message telling the sender of ``src`` to pace the
    ``src -> dst`` pair at ``rate`` bytes/s (its current max-min share
    of the receiver's hose); ``arrival_rate`` is the measured arrival
    rate that triggered the decision.
    """

    kind: ClassVar[str] = "eyeq.feedback"
    time: float
    src: int
    dst: int
    rate: float
    arrival_rate: float


@dataclass(frozen=True)
class FaultInjected:
    """A scheduled fault (or repair) was applied to the topology.

    ``target`` is the stable spec string of the component (e.g.
    ``"link:12"``, ``"server:3"``, ``"switch:tor:0"``); ``action`` is
    ``"down"``, ``"up"`` or ``"degrade"`` and ``factor`` the resulting
    capacity multiplier (0 down, 1 healthy, in between degraded).
    """

    kind: ClassVar[str] = "fault.inject"
    time: float
    target: str
    action: str
    factor: float


@dataclass(frozen=True)
class TenantRecovery:
    """The cluster controller re-classified a fault-affected tenant.

    ``outcome`` is ``"recovered"`` (full guarantee re-admitted),
    ``"degraded"`` (re-admitted bandwidth-only, delay guarantee lost) or
    ``"evicted"`` (no feasible placement on the surviving topology).
    ``time_to_recover`` is seconds from first guarantee loss back to a
    full guarantee, present only on ``"recovered"`` outcomes.
    """

    kind: ClassVar[str] = "fault.recovery"
    time: float
    tenant_id: int
    n_vms: int
    tenant_class: str
    outcome: str
    time_to_recover: Optional[float] = None


@dataclass(frozen=True)
class ServiceIngress:
    """The admission service's ingress queue accepted or bounced an item.

    ``op`` is the operation class (``"admit"``, ``"depart"``,
    ``"fault"``); ``outcome`` is ``"queued"`` or ``"rejected"``
    (backpressure: the bounded queue was full, ``retry_after`` carries
    the backoff hint).  ``depth`` is the queue depth after the event.
    """

    kind: ClassVar[str] = "service.ingress"
    time: float
    seq: int
    op: str
    outcome: str
    depth: int
    retry_after: Optional[float] = None


@dataclass(frozen=True)
class ServiceDecision:
    """The admission service finished processing one ingress item.

    ``outcome`` is ``"admitted"`` / ``"rejected"`` for admissions run to
    completion, ``"shed"`` (evicted from the queue under overload),
    ``"expired"`` (deadline passed before processing), ``"departed"``
    or ``"fault"``.  ``latency`` is seconds from enqueue to completion
    (the admission-latency SLO metric).
    """

    kind: ClassVar[str] = "service.decision"
    time: float
    seq: int
    op: str
    outcome: str
    latency: float
    tenant_id: Optional[int] = None


@dataclass(frozen=True)
class ServiceSnapshot:
    """The service checkpointed its placement books.

    ``last_seq`` is the newest WAL sequence folded into the snapshot;
    ``digest`` the books' SHA-256 identity certificate.
    """

    kind: ClassVar[str] = "service.snapshot"
    time: float
    last_seq: int
    digest: str


#: All event classes, keyed by their stable ``kind`` tag.
EVENT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (PacketEnqueue, PacketDrop, PacketMark, PacketTx,
                FlowStart, FlowFinish, AdmissionDecision, PacerStamp,
                VoidEmit, RateFeedback, FaultInjected, TenantRecovery,
                ServiceIngress, ServiceDecision, ServiceSnapshot)
}


def event_record(event: Any) -> Dict[str, Any]:
    """Flatten an event into a ``{"kind": ..., field: value, ...}`` dict."""
    record: Dict[str, Any] = {"kind": event.kind}
    for f in fields(event):
        record[f.name] = getattr(event, f.name)
    return record
