"""Setup shim; all metadata lives in setup.cfg.

This project uses the legacy setup.py/setup.cfg layout on purpose: the
target environment is offline and has no ``wheel`` package, so the PEP
517/660 build paths that pyproject.toml triggers cannot run, while
``pip install -e .`` via ``setup.py develop`` works everywhere.
"""

from setuptools import setup

setup()
