"""Locality-aware placement: pack VMs close together, no network checks.

This is the status-quo baseline of the paper's evaluation (section 6.3): a
tenant is rejected only when the datacenter is out of VM slots, and its VMs
are packed into the first servers with room, which naturally keeps most
traffic low in the hierarchy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tenant import TenantRequest
from repro.placement.base import PlacementManager
from repro.placement.state import Contribution, PortState


class LocalityPlacementManager(PlacementManager):
    """Greedy locality packing with slot-only admission."""

    def _allowed_scope(self, request: TenantRequest) -> Optional[str]:
        return "cluster"

    def _checks_ports(self) -> bool:
        return False

    def _port_ok(self, state: PortState,
                 contribution: Contribution) -> bool:  # pragma: no cover
        return True
