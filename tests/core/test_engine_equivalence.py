"""The shared event core is a drop-in for the retained phynet loop.

Two guarantees, checked two ways.  A hypothesis property drives
interleaved schedule / schedule-at / cancel / partial-run sequences
through :class:`repro.core.engine.EventEngine` and the retained
reference ``phynet/engine.Simulator`` and asserts the observable
execution order, clock, and queue depth are identical (the reference
has no cancellation, so cancelled callbacks are emulated there as
logged no-ops).  And a golden-digest pin re-runs the ``fig16-micro``
and ``mechanism-compare-micro`` campaigns -- whose outputs were
captured on the pre-port seed loops immediately before the shared-core
refactor -- and asserts the bytes did not move.
"""

import hashlib
import itertools
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import get_sweep, run_campaign
from repro.core.engine import EventEngine
from repro.phynet.engine import Simulator

# A small set of exactly-representable delays so simultaneous events
# (the tie-breaking contract) are common, not a fluke.
DELAYS = (0.0, 0.25, 0.5, 1.0, 2.0)

OPS = st.one_of(
    st.tuples(st.just("schedule"), st.sampled_from(DELAYS)),
    st.tuples(st.just("schedule_at"), st.sampled_from(DELAYS)),
    st.tuples(st.just("chain"), st.sampled_from(DELAYS),
              st.sampled_from(DELAYS)),
    st.tuples(st.just("cancel"), st.integers(0, 63)),
    st.tuples(st.just("run"), st.sampled_from(DELAYS)),
)


class Harness:
    """Apply one op sequence to either engine, logging executions.

    The reference engine returns no handle from ``schedule``; its
    cancellations are emulated by a tag set the callback consults.  The
    real engine additionally goes through :meth:`EventEngine.cancel`,
    so the property also proves cancelled entries are skipped, not
    merely silenced.
    """

    def __init__(self, engine):
        self.engine = engine
        self.log = []
        self.handles = []
        self.cancelled = set()
        self._tags = itertools.count()

    def _fire(self, tag):
        if tag in self.cancelled:
            return
        self.log.append((tag, self.engine.now))

    def _chain(self, tag, child_delay):
        if tag in self.cancelled:
            return  # a truly-cancelled chain never spawns its child
        self._fire(tag)
        self.engine.schedule(child_delay, self._fire, ("child", tag))

    def apply(self, ops):
        for op in ops:
            kind = op[0]
            if kind == "schedule":
                tag = next(self._tags)
                self.handles.append(
                    (tag, self.engine.schedule(op[1], self._fire, tag)))
            elif kind == "schedule_at":
                tag = next(self._tags)
                self.handles.append(
                    (tag, self.engine.schedule_at(
                        self.engine.now + op[1], self._fire, tag)))
            elif kind == "chain":
                tag = next(self._tags)
                self.handles.append(
                    (tag, self.engine.schedule(op[1], self._chain, tag,
                                               op[2])))
            elif kind == "cancel":
                if self.handles:
                    tag, handle = self.handles[op[1] % len(self.handles)]
                    self.cancelled.add(tag)
                    if handle is not None:
                        self.engine.cancel(handle)
            elif kind == "run":
                self.engine.run(until=self.engine.now + op[1])


class TestEngineEquivalence:
    """EventEngine and the retained seed loop are observably identical."""

    @given(ops=st.lists(OPS, max_size=48))
    @settings(max_examples=200, deadline=None)
    def test_interleaved_ops_match_reference(self, ops):
        # The final drain uses an explicit horizon: skipped cancelled
        # entries do not advance the real engine's clock, while the
        # reference fires them as no-ops, so only the clamped-to-until
        # clock is comparable (every intermediate "run" op is clamped
        # the same way).
        reference = Harness(Simulator())
        engine = Harness(EventEngine())
        for harness in (reference, engine):
            harness.apply(ops)
            harness.engine.run(until=1000.0)
        assert engine.log == reference.log
        assert engine.engine.now == reference.engine.now == 1000.0
        assert engine.engine.pending_events == 0
        assert reference.engine.pending_events == 0

    def test_cancel_is_idempotent_and_skips_execution(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "cancelled")
        engine.schedule(1.0, fired.append, "kept")
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.pending_events == 2  # nulled entry stays queued
        engine.run()
        assert fired == ["kept"]
        assert engine.pending_events == 0

    def test_run_until_advances_clock_past_last_event(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        assert engine.run(until=5.0) == 5.0
        assert engine.now == 5.0


class TestGoldenCampaignPins:
    """The engine port left committed campaign bytes untouched.

    The digests were captured by running both micro sweeps on the
    pre-port seed loops; re-running them on the shared core must
    reproduce the same merged.json and manifest.json byte for byte.
    """

    GOLDEN = json.loads(
        (Path(__file__).resolve().parent.parent / "campaign"
         / "golden_engine_port.json").read_text(encoding="utf-8"))

    @pytest.mark.parametrize("name", ["fig16-micro",
                                      "mechanism-compare-micro"])
    def test_campaign_bytes_pinned(self, name, tmp_path):
        out = tmp_path / name
        run_campaign(get_sweep(name), out=out)
        for filename, expected in self.GOLDEN[name].items():
            digest = hashlib.sha256(
                (out / filename).read_bytes()).hexdigest()
            assert digest == expected, (
                f"{name}/{filename} drifted from the pre-port bytes")
