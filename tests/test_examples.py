"""Smoke tests: the fast example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bound holds!" in out
        assert "switch drops: 0" in out

    def test_pacer_wire_view(self):
        out = run_example("pacer_wire_view.py")
        assert "67.2 ns" in out
        assert "void" in out

    def test_guarantee_inference(self):
        out = run_example("guarantee_inference.py", timeout=300.0)
        assert "inferred guarantee" in out
        assert "ACCEPTED" in out

    def test_campaign_sweep(self):
        out = run_example("campaign_sweep.py", timeout=300.0)
        assert out.count("byte-identical") == 2
        assert "DIFFER" not in out
        assert "resuming" in out
        for policy in ("locality", "oktopus", "silo"):
            assert policy in out
