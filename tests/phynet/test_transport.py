"""Transport behaviour: reliability, congestion response, messages."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.phynet import (
    Dctcp,
    MetricsCollector,
    PacketNetwork,
    TcpReno,
)
from repro.topology import TreeTopology


def two_vm_network(scheme="tcp", **net_kwargs):
    topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=2,
                        slots_per_server=4, link_rate=units.gbps(10))
    net = PacketNetwork(topo, scheme=scheme, **net_kwargs)
    net.add_vm(0, tenant_id=1, server=0)
    net.add_vm(1, tenant_id=1, server=1)
    return net


class TestReliableDelivery:
    def test_single_packet_message(self):
        net = two_vm_network()
        metrics = MetricsCollector()
        flow = net.transport(0, 1)
        record = metrics.new_message(1, 0, 1, 1000.0, 0.0)
        flow.send_message(record)
        net.sim.run(until=0.01)
        assert record.completed
        assert record.latency < 100 * units.MICROS

    def test_multi_packet_message_completes_in_order(self):
        net = two_vm_network()
        metrics = MetricsCollector()
        flow = net.transport(0, 1)
        record = metrics.new_message(1, 0, 1, 100 * units.KB, 0.0)
        flow.send_message(record)
        net.sim.run(until=0.05)
        assert record.completed
        assert flow.delivered_bytes == pytest.approx(100 * units.KB)

    def test_messages_complete_fifo_per_connection(self):
        net = two_vm_network()
        metrics = MetricsCollector()
        flow = net.transport(0, 1)
        records = [metrics.new_message(1, 0, 1, 10 * units.KB, 0.0)
                   for _ in range(5)]
        for r in records:
            flow.send_message(r)
        net.sim.run(until=0.05)
        finishes = [r.finish for r in records]
        assert all(r.completed for r in records)
        assert finishes == sorted(finishes)

    def test_zero_size_message_rejected(self):
        net = two_vm_network()
        metrics = MetricsCollector()
        flow = net.transport(0, 1)
        record = metrics.new_message(1, 0, 1, 0.0, 0.0)
        with pytest.raises(ValueError):
            flow.send_message(record)

    def test_transport_is_cached_per_pair(self):
        net = two_vm_network()
        assert net.transport(0, 1) is net.transport(0, 1)
        assert net.transport(0, 1) is not net.transport(1, 0)

    def test_transport_rejects_self_pair(self):
        net = two_vm_network()
        with pytest.raises(ValueError):
            net.transport(0, 0)


class TestCongestionResponse:
    def test_slow_start_grows_cwnd(self):
        net = two_vm_network()
        metrics = MetricsCollector()
        flow = net.transport(0, 1)
        initial = flow.cwnd
        record = metrics.new_message(1, 0, 1, 500 * units.KB, 0.0)
        flow.send_message(record)
        net.sim.run(until=0.05)
        assert flow.cwnd > initial

    def test_recovery_after_drops(self):
        """Overflow a tiny buffer; the message must still complete via
        retransmissions and the window must have been cut."""
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=2,
                            slots_per_server=4,
                            link_rate=units.gbps(1),
                            buffer_bytes=8 * units.KB)
        net = PacketNetwork(topo, scheme="tcp")
        net.add_vm(0, tenant_id=1, server=0)
        net.add_vm(1, tenant_id=1, server=1)
        metrics = MetricsCollector()
        flow = net.transport(0, 1, initial_cwnd=64.0)
        record = metrics.new_message(1, 0, 1, 300 * units.KB, 0.0)
        flow.send_message(record)
        net.sim.run(until=1.0)
        drops = sum(p.stats.drops for p in net.ports.values())
        assert drops > 0
        assert record.completed
        assert flow.delivered_bytes == pytest.approx(300 * units.KB)

    def test_rto_fires_when_tail_of_window_lost(self):
        """A lost tail generates no dupacks, so only the timeout can
        recover it; the RTO must be recorded against the message."""
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=2,
                            slots_per_server=4,
                            link_rate=units.gbps(1),
                            buffer_bytes=3 * units.KB)
        net = PacketNetwork(topo, scheme="tcp")
        net.add_vm(0, tenant_id=1, server=0)
        net.add_vm(1, tenant_id=1, server=1)
        metrics = MetricsCollector()
        # An 8-segment burst into a 2-packet buffer loses the tail.
        flow = net.transport(0, 1, initial_cwnd=8.0)
        record = metrics.new_message(1, 0, 1, 8 * flow.mss, 0.0)
        flow.send_message(record)
        net.sim.run(until=2.0)
        assert record.completed
        assert flow.rto_count > 0
        assert record.rto_events > 0


class TestDctcp:
    def test_alpha_rises_under_persistent_marking(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                            slots_per_server=4, link_rate=units.gbps(1))
        net = PacketNetwork(topo, scheme="dctcp",
                            dctcp_threshold=15 * units.KB)
        for i in range(3):
            net.add_vm(i, tenant_id=1, server=i)
        metrics = MetricsCollector()
        # Two senders converge on VM 2 to build a standing queue.
        flows = [net.transport(0, 2), net.transport(1, 2)]
        for f in flows:
            record = metrics.new_message(1, f.src_vm, 2, units.MB, 0.0)
            f.send_message(record)
        net.sim.run(until=0.1)
        assert isinstance(flows[0], Dctcp)
        assert any(f.alpha > 0 for f in flows)
        marks = sum(p.stats.ecn_marks for p in net.ports.values())
        assert marks > 0

    def test_dctcp_keeps_queues_below_tcp(self):
        def max_queue(scheme):
            topo = TreeTopology(n_pods=1, racks_per_pod=1,
                                servers_per_rack=3, slots_per_server=4,
                                link_rate=units.gbps(1))
            net = PacketNetwork(topo, scheme=scheme,
                                dctcp_threshold=15 * units.KB)
            for i in range(3):
                net.add_vm(i, tenant_id=1, server=i)
            metrics = MetricsCollector()
            for src in (0, 1):
                flow = net.transport(src, 2)
                flow.send_message(
                    metrics.new_message(1, src, 2, units.MB, 0.0))
            net.sim.run(until=0.1)
            return max(p.stats.max_queue_bytes
                       for p in net.ports.values())

        assert max_queue("dctcp") < max_queue("tcp")
