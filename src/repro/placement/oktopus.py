"""Oktopus-style bandwidth-aware placement (the paper's baseline).

Reserves hose-model bandwidth on every link a tenant's traffic crosses but
ignores bursts and packet delay entirely -- the placement in the paper's
Fig. 5(a) that overflows switch buffers is exactly what this manager can
produce.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tenant import TenantRequest
from repro.placement.base import PlacementManager
from repro.placement.state import Contribution, PortState


class OktopusPlacementManager(PlacementManager):
    """Admission control with bandwidth guarantees only."""

    def _allowed_scope(self, request: TenantRequest) -> Optional[str]:
        return "cluster"

    def _port_ok(self, state: PortState,
                 contribution: Contribution) -> bool:
        return state.admits_bandwidth(contribution)
