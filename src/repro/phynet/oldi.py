"""Partition-aggregate (OLDI) application: the paper's motivating workload.

Web search and online retail serve an end-user request by fanning a query
out to many workers and aggregating their answers under a strict time
budget (the intro's 200-300 ms SLO).  Messaging eats a large share of
that budget -- unless message latency is *guaranteed*, in which case the
application can hand the reclaimed time to computation (the paper's
"respond in 20 ms / network at most 4 ms / compute for 16 ms" example).

:class:`PartitionAggregateApp` models one such service on the packet
simulator: a root VM broadcasts a query to worker VMs; each worker
computes for ``worker_compute`` and returns a response of
``response_size``; the request completes when the *last* response lands
(or is abandoned at ``deadline``, counted as an SLO miss).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro import units
from repro.phynet.metrics import MessageRecord, MetricsCollector
from repro.phynet.network import PacketNetwork
from repro.phynet.transport.base import Transport
from repro.workloads.distributions import Distribution, Fixed


@dataclass
class QueryRecord:
    """One partition-aggregate request's life."""

    query_id: int
    start: float
    n_workers: int
    responses: int = 0
    finish: Optional[float] = None
    deadline_missed: bool = False

    @property
    def completed(self) -> bool:
        """Whether every response of the query arrived."""
        return self.finish is not None

    @property
    def latency(self) -> float:
        """Fan-out-to-last-response latency of the query."""
        if self.finish is None:
            raise ValueError("query has not completed")
        return self.finish - self.start


class PartitionAggregateApp:
    """All-to-one aggregation driven by root-fan-out queries."""

    def __init__(self, network: PacketNetwork, metrics: MetricsCollector,
                 tenant_id: int, root_vm: int, worker_vms: Sequence[int],
                 rng: random.Random,
                 query_size: float = 1.6 * units.KB,
                 response_size: Distribution = None,
                 worker_compute: Distribution = None,
                 deadline: float = 20 * units.MILLIS,
                 transport_class: Optional[Type[Transport]] = None):
        if not worker_vms:
            raise ValueError("partition-aggregate needs workers")
        self.network = network
        self.metrics = metrics
        self.tenant_id = tenant_id
        self.root_vm = root_vm
        self.worker_vms = list(worker_vms)
        self.rng = rng
        self.query_size = query_size
        self.response_size = response_size or Fixed(15 * units.KB)
        self.worker_compute = worker_compute or Fixed(units.MILLIS)
        self.deadline = deadline
        self.queries: List[QueryRecord] = []
        self._query_counter = 0
        self._stopped = False
        self.down_flows = {w: network.transport(root_vm, w,
                                                transport_class)
                           for w in self.worker_vms}
        self.up_flows = {w: network.transport(w, root_vm,
                                              transport_class)
                         for w in self.worker_vms}

    # -- driving -----------------------------------------------------------

    def start(self, interval: float, at: float = 0.0) -> None:
        """Issue one query every ``interval`` seconds."""
        if interval <= 0:
            raise ValueError("query interval must be positive")
        self._interval = interval
        self.network.sim.schedule_at(at + interval, self._issue_query)

    def stop(self) -> None:
        """Stop issuing further queries."""
        self._stopped = True

    def _issue_query(self) -> None:
        if self._stopped:
            return
        sim = self.network.sim
        query = QueryRecord(query_id=self._query_counter, start=sim.now,
                            n_workers=len(self.worker_vms))
        self._query_counter += 1
        self.queries.append(query)
        for worker in self.worker_vms:
            request = MessageRecord(tenant_id=self.tenant_id,
                                    src_vm=self.root_vm, dst_vm=worker,
                                    size=self.query_size, start=sim.now)
            request.on_complete = (
                lambda _rec, w=worker, q=query: self._worker_compute(w, q))
            self.down_flows[worker].send_message(request)
        sim.schedule(self.deadline, self._check_deadline, query)
        sim.schedule(self._interval, self._issue_query)

    def _worker_compute(self, worker: int, query: QueryRecord) -> None:
        delay = max(0.0, self.worker_compute.sample(self.rng))
        self.network.sim.schedule(delay, self._send_response, worker,
                                  query)

    def _send_response(self, worker: int, query: QueryRecord) -> None:
        size = max(1.0, self.response_size.sample(self.rng))
        response = self.metrics.new_message(self.tenant_id, worker,
                                            self.root_vm, size,
                                            self.network.sim.now)
        response.on_complete = (
            lambda _rec, q=query: self._response_arrived(q))
        self.up_flows[worker].send_message(response)

    def _response_arrived(self, query: QueryRecord) -> None:
        query.responses += 1
        if (query.responses >= query.n_workers
                and query.finish is None):
            query.finish = self.network.sim.now

    def _check_deadline(self, query: QueryRecord) -> None:
        if not query.completed:
            query.deadline_missed = True

    # -- reporting ------------------------------------------------------------

    def completed_queries(self) -> List[QueryRecord]:
        """Records of the queries that finished."""
        return [q for q in self.queries if q.completed]

    def slo_miss_fraction(self) -> float:
        """Fraction of issued queries that blew the deadline."""
        finished_or_due = [q for q in self.queries
                           if q.completed or q.deadline_missed]
        if not finished_or_due:
            return 0.0
        missed = sum(1 for q in finished_or_due
                     if q.deadline_missed
                     or q.latency > self.deadline)
        return missed / len(finished_or_due)

    def compute_budget(self, network_bound: float) -> float:
        """Compute time a guaranteed network leaves inside the deadline.

        The paper's point: if the round trip is *bounded* by
        ``network_bound``, the application can spend
        ``deadline - network_bound`` computing instead of padding for
        network variance.
        """
        return max(0.0, self.deadline - network_bound)
