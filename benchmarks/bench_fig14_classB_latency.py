"""Fig. 14: class-B message latency, normalized to the estimate.

Class-B tenants only need bandwidth; their (large) message latency is
transfer time at the achieved rate.  The paper plots the CDF of message
latency divided by the estimate from the hose guarantee: with Silo and
Oktopus every message lands at or under 1.0 (the reservation is exact);
with TCP/HULL many tenants beat the estimate (work conservation) but a
long tail does far worse -- predictability traded for peak throughput.
"""

import pytest

from repro.analysis import percentile

from conftest import CAMPAIGN_SCHEMES, print_table, run_once


def collect(campaign):
    table = {}
    for scheme in CAMPAIGN_SCHEMES:
        result = campaign[scheme]
        ratios = []
        for tenant in result.class_b_tenants:
            estimate = result.class_b_estimates[tenant]
            ratios.extend(lat / estimate
                          for lat in result.metrics.latencies(tenant))
        table[scheme] = sorted(ratios)
    return table


@pytest.mark.benchmark(group="fig14")
def test_fig14_class_b_latency(benchmark, fig12_campaign):
    table = run_once(benchmark, lambda: collect(fig12_campaign))

    rows = []
    for scheme in CAMPAIGN_SCHEMES:
        ratios = table[scheme]
        rows.append([
            scheme, f"{len(ratios)}",
            f"{percentile(ratios, 50):.2f}",
            f"{percentile(ratios, 95):.2f}",
            f"{percentile(ratios, 99):.2f}",
            f"{max(ratios):.2f}",
        ])
    print_table(
        "Fig. 14: class-B message latency / estimated latency",
        ["scheme", "msgs", "median", "p95", "p99", "max"], rows)

    # Reservations make large-message latency predictable: every Silo
    # message finishes by (about) the estimate.
    assert percentile(table["silo"], 99) <= 1.1
    # Work-conserving TCP beats the estimate for many messages (median
    # below Silo's)...
    assert percentile(table["tcp"], 50) <= percentile(table["silo"], 50)
    # ...but its tail is worse than its own median by a larger factor
    # than Silo's (the predictability trade of Fig. 14).
    tcp_spread = percentile(table["tcp"], 99) / percentile(table["tcp"], 50)
    silo_spread = (percentile(table["silo"], 99)
                   / percentile(table["silo"], 50))
    assert tcp_spread > silo_spread
