"""Incremental max-min must track the from-scratch solvers exactly.

:class:`repro.maxmin.IncrementalMaxMin` re-waterfills only the connected
component of the flow-link bipartite graph touched by an arrival,
departure, or capacity change.  These tests drive it through randomized
add/remove/capacity sequences (hypothesis) and the Gbps-scale saturation
regression shapes, asserting after every event that the persistent
allocation matches ``max_min_fair`` (tight) and
``max_min_fair_reference`` (the existing 1e-6 relative tolerance) over
the full current flow set.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxmin import (IncrementalMaxMin, max_min_fair,
                          max_min_fair_reference)


def _assert_matches(inc, flows, capacities):
    got = inc.rates()
    assert set(got) == set(flows)
    fast = max_min_fair(flows, capacities)
    ref = max_min_fair_reference(flows, capacities)
    for fid in flows:
        denom = max(abs(got[fid]), abs(fast[fid]), 1e-12)
        assert abs(got[fid] - fast[fid]) / denom <= 1e-9, \
            f"flow {fid}: incremental {got[fid]} vs fast {fast[fid]}"
        denom = max(abs(got[fid]), abs(ref[fid]), 1e-12)
        assert abs(got[fid] - ref[fid]) / denom <= 1e-6, \
            f"flow {fid}: incremental {got[fid]} vs reference {ref[fid]}"


class TestBasics:
    def test_single_flow(self):
        inc = IncrementalMaxMin({"l": 10.0})
        inc.add_flow("f", ("l",), math.inf)
        assert inc.recompute() == {"f": 10.0}
        assert inc.rates() == {"f": 10.0}

    def test_arrival_changes_only_shared_component(self):
        inc = IncrementalMaxMin({"a": 10.0, "b": 10.0})
        inc.add_flow("f1", ("a",), math.inf)
        inc.add_flow("f2", ("b",), math.inf)
        inc.recompute()
        inc.add_flow("f3", ("a",), math.inf)
        changed = inc.recompute()
        # f2 lives on a disjoint link: its 10.0 must not be re-reported.
        assert set(changed) == {"f1", "f3"}
        assert changed["f1"] == pytest.approx(5.0)
        assert inc.rates()["f2"] == pytest.approx(10.0)

    def test_departure_restores_share(self):
        inc = IncrementalMaxMin({"l": 10.0})
        inc.add_flow("f1", ("l",), math.inf)
        inc.add_flow("f2", ("l",), math.inf)
        inc.recompute()
        inc.remove_flow("f2")
        changed = inc.recompute()
        assert changed == {"f1": pytest.approx(10.0)}
        assert "f2" not in inc.rates()

    def test_capacity_change_dirties_component(self):
        inc = IncrementalMaxMin({"l": 10.0})
        inc.add_flow("f", ("l",), math.inf)
        inc.recompute()
        inc.set_capacity("l", 4.0)
        assert inc.recompute() == {"f": 4.0}

    def test_same_capacity_is_clean(self):
        inc = IncrementalMaxMin({"l": 10.0})
        inc.add_flow("f", ("l",), math.inf)
        inc.recompute()
        before = inc.recompute_count
        inc.set_capacity("l", 10.0)
        assert inc.recompute() == {}
        assert inc.recompute_count == before

    def test_noop_recompute_is_free(self):
        inc = IncrementalMaxMin({"l": 10.0})
        inc.add_flow("f", ("l",), math.inf)
        inc.recompute()
        before = inc.recompute_count
        assert inc.recompute() == {}
        assert inc.recompute_count == before

    def test_linkless_flow_gets_demand(self):
        inc = IncrementalMaxMin()
        inc.add_flow("f", (), 7.0)
        assert inc.recompute() == {"f": 7.0}

    def test_zero_demand_flow(self):
        inc = IncrementalMaxMin({"l": 10.0})
        inc.add_flow("f", ("l",), 0.0)
        assert inc.recompute() == {"f": 0.0}

    def test_validation_matches_solver(self):
        inc = IncrementalMaxMin({"l": 10.0})
        with pytest.raises(ValueError):
            inc.add_flow("f", (), math.inf)
        with pytest.raises(ValueError):
            inc.add_flow("f", ("l",), -1.0)
        with pytest.raises(KeyError):
            inc.add_flow("f", ("ghost",), 1.0)
        inc.add_flow("f", ("l",), 1.0)
        with pytest.raises(ValueError):
            inc.add_flow("f", ("l",), 2.0)
        with pytest.raises(KeyError):
            inc.remove_flow("missing")

    def test_multiplicity_counts_twice(self):
        # A flow crossing a link twice consumes two shares of it, as in
        # the from-scratch solvers.
        inc = IncrementalMaxMin({"l": 9.0})
        inc.add_flow("loop", ("l", "l"), math.inf)
        inc.add_flow("f", ("l",), math.inf)
        inc.recompute()
        _assert_matches(inc, {"loop": (("l", "l"), math.inf),
                              "f": (("l",), math.inf)}, {"l": 9.0})

    def test_len_and_contains(self):
        inc = IncrementalMaxMin({"l": 10.0})
        inc.add_flow("f", ("l",), 1.0)
        assert len(inc) == 1 and "f" in inc
        inc.remove_flow("f")
        assert len(inc) == 0 and "f" not in inc


class TestGbpsSaturationShapes:
    """The byte-scale regression shapes, built and torn down live."""

    CAPS = {"l1": 5e8, "l4": 5e8}
    FLOWS = {"capped": (("l1", "l4"), 1.25e8),
             "elastic": (("l1",), math.inf),
             "other": (("l4",), 3.96e7)}

    def test_incremental_build_matches(self):
        inc = IncrementalMaxMin(self.CAPS)
        flows = {}
        for fid, (links, demand) in self.FLOWS.items():
            inc.add_flow(fid, links, demand)
            flows[fid] = (links, demand)
            _assert_matches(inc, flows, self.CAPS)
        assert inc.rates()["elastic"] == pytest.approx(3.75e8)

    def test_departures_rewaterfill(self):
        inc = IncrementalMaxMin(self.CAPS)
        for fid, (links, demand) in self.FLOWS.items():
            inc.add_flow(fid, links, demand)
        inc.recompute()
        inc.remove_flow("capped")
        remaining = {fid: spec for fid, spec in self.FLOWS.items()
                     if fid != "capped"}
        _assert_matches(inc, remaining, self.CAPS)
        assert inc.rates()["elastic"] == pytest.approx(5e8)


links = st.sampled_from(["a", "b", "c", "d"])
arrival = st.tuples(
    st.sets(links, min_size=0, max_size=3),
    st.one_of(st.just(math.inf), st.just(0.0),
              st.floats(min_value=0.1, max_value=100.0)))
ops = st.lists(
    st.one_of(st.tuples(st.just("add"), arrival),
              st.tuples(st.just("remove"), st.integers(min_value=0)),
              st.tuples(st.just("cap"), links,
                        st.floats(min_value=0.2, max_value=2.0))),
    min_size=1, max_size=14)


@settings(max_examples=60, deadline=None)
@given(ops, st.sampled_from([1.0, 1e3, 5e8, 1.25e9]))
def test_random_sequences_match_reference(sequence, scale):
    """Random arrival/finish/capacity sequences at every magnitude: the
    persistent allocation equals a from-scratch solve after each event."""
    capacities = {l: 10.0 * scale for l in "abcd"}
    inc = IncrementalMaxMin(capacities)
    flows = {}
    next_id = 0
    for op in sequence:
        if op[0] == "add":
            link_set, demand = op[1]
            if not link_set and math.isinf(demand):
                continue  # rejected by both solvers
            spec = (tuple(sorted(link_set)),
                    demand * scale if math.isfinite(demand) else demand)
            inc.add_flow(next_id, *spec)
            flows[next_id] = spec
            next_id += 1
        elif op[0] == "remove":
            if not flows:
                continue
            victim = sorted(flows)[op[1] % len(flows)]
            inc.remove_flow(victim)
            del flows[victim]
        else:
            _, link, factor = op
            capacities[link] = 10.0 * scale * factor
            inc.set_capacity(link, capacities[link])
        if flows:
            _assert_matches(inc, flows, capacities)
    assert inc.rates() == {} if not flows else True


@settings(max_examples=40, deadline=None)
@given(ops)
def test_changed_set_is_sound(sequence):
    """recompute() reports exactly the flows whose rate differs from the
    previous allocation -- no phantom changes, no missed ones."""
    capacities = {l: 10.0 for l in "abcd"}
    inc = IncrementalMaxMin(capacities)
    flows = {}
    next_id = 0
    previous = {}
    for op in sequence:
        if op[0] == "add":
            link_set, demand = op[1]
            if not link_set and math.isinf(demand):
                continue
            spec = (tuple(sorted(link_set)), demand)
            inc.add_flow(next_id, *spec)
            flows[next_id] = spec
            next_id += 1
        elif op[0] == "remove":
            if not flows:
                continue
            victim = sorted(flows)[op[1] % len(flows)]
            inc.remove_flow(victim)
            del flows[victim]
            previous.pop(victim, None)
        else:
            _, link, factor = op
            capacities[link] = 10.0 * factor
            inc.set_capacity(link, capacities[link])
        changed = inc.recompute()
        for fid, rate in changed.items():
            assert previous.get(fid) != rate
        now = dict(inc.rates())
        for fid, rate in now.items():
            if previous.get(fid) != rate:
                assert fid in changed
        previous = now
