"""Scenario and named-sweep registries.

A *scenario* is a plain function ``fn(..., seed, artifact_dir=None)``
that runs one cell of a sweep and returns its result (JSON-serializable
when the campaign runs across processes; any object for in-process
runs).  Scenarios register under a string name so a
:class:`~repro.campaign.spec.SweepSpec` -- itself plain JSON -- can
reference them, and so spawned worker processes can resolve them after
importing the spec's declared modules.

Named sweeps work the same way for whole specs: the benchmark grids
(``fig15``, ``fig16``, ``table1``, ``failure-recovery``) register
factory functions, and both ``python -m repro campaign --name`` and
the benchmarks fetch the *same* spec object, so there is exactly one
definition of each grid and its seeds.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Sequence

from repro.campaign.spec import SweepSpec

__all__ = ["scenario", "get_scenario", "sweep", "get_sweep",
           "list_sweeps", "import_scenario_modules"]

_SCENARIOS: Dict[str, Callable[..., Any]] = {}
_SWEEPS: Dict[str, Callable[[], SweepSpec]] = {}


def _same_definition(a: Callable[..., Any], b: Callable[..., Any]) -> bool:
    """Whether two callables are one source definition imported twice.

    A scenario script runs under several module names -- ``__main__``
    for the user, ``__mp_main__`` in spawn workers, and a private name
    when the runner imports it by path -- and each execution produces a
    fresh function object.  Same file plus same qualified name means
    they are all the same definition, not a conflict.
    """
    try:
        return (a.__qualname__ == b.__qualname__
                and a.__code__.co_filename == b.__code__.co_filename)
    except AttributeError:
        return False


def scenario(name: str) -> Callable[[Callable[..., Any]],
                                    Callable[..., Any]]:
    """Class of decorators registering a cell function under ``name``."""
    def register(fn: Callable[..., Any]) -> Callable[..., Any]:
        existing = _SCENARIOS.get(name)
        if (existing is not None and existing is not fn
                and not _same_definition(existing, fn)):
            raise ValueError(f"scenario {name!r} is already registered "
                             f"by {existing.__module__}")
        _SCENARIOS.setdefault(name, fn)
        return fn
    return register


def get_scenario(name: str) -> Callable[..., Any]:
    """Resolve a registered scenario function by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS)) or "(none imported)"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}"
                       ) from None


def sweep(name: str) -> Callable[[Callable[[], SweepSpec]],
                                 Callable[[], SweepSpec]]:
    """Decorator registering a named sweep-spec factory."""
    def register(fn: Callable[[], SweepSpec]) -> Callable[[], SweepSpec]:
        existing = _SWEEPS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"sweep {name!r} is already registered")
        _SWEEPS[name] = fn
        return fn
    return register


def get_sweep(name: str) -> SweepSpec:
    """Build the named sweep's spec (a fresh object each call)."""
    import repro.campaign.scenarios  # noqa: F401  (registers built-ins)
    try:
        factory = _SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; known: "
                       f"{', '.join(list_sweeps())}") from None
    return factory()


def list_sweeps() -> List[str]:
    """Names of every registered sweep, sorted."""
    import repro.campaign.scenarios  # noqa: F401
    return sorted(_SWEEPS)


def import_scenario_modules(modules: Sequence[str],
                            module_paths: Sequence[str] = ()) -> None:
    """Import the modules a spec declares, registering their scenarios.

    ``modules`` are dotted names; ``module_paths`` are files imported
    under a name derived from their stem (so example scripts can define
    scenarios that spawned workers resolve).  Importing twice is a
    no-op.
    """
    for name in modules:
        importlib.import_module(name)
    for path in module_paths:
        resolved = Path(path).resolve()
        mod_name = f"_campaign_module_{resolved.stem}"
        if mod_name in sys.modules:
            continue
        spec = importlib.util.spec_from_file_location(mod_name,
                                                      str(resolved))
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot import scenario module {path}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[mod_name] = module
        spec.loader.exec_module(module)
