"""Switch and NIC ports: the queuing points Silo reasons about.

Every directed hop in the datacenter tree is a :class:`Port` -- an output
queue draining at line rate into a link.  A port's *queue capacity* is the
time it takes to drain a full buffer (e.g. 312 KB at 10 Gbps is ~250 us);
Silo's placement constraints are phrased entirely in terms of queue bounds
versus queue capacities (section 4.2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PortKind(enum.Enum):
    """Where in the tree a port sits (used for readable diagnostics)."""

    NIC_UP = "nic-up"            # server NIC egress onto the wire
    TOR_DOWN = "tor-down"        # ToR port facing one server
    TOR_UP = "tor-up"            # ToR uplink towards aggregation
    AGG_DOWN = "agg-down"        # aggregation port facing one rack
    AGG_UP = "agg-up"            # aggregation uplink towards the core
    CORE_DOWN = "core-down"      # core port facing one pod


@dataclass
class Port:
    """A directed, buffered, line-rate output port.

    Attributes:
        port_id: unique integer id within the topology.
        kind: the port's position in the tree.
        capacity: drain rate in bytes/second.
        buffer_bytes: output buffer size in bytes.
        upstream_queue_capacity: worst-case sum of the queue capacities of
            ports a packet may have crossed *before* this one; used to bound
            the burst inflation of propagated traffic (section 4.2.2).
        index: position among sibling ports (e.g. which server a TOR_DOWN
            port faces).
    """

    port_id: int
    kind: PortKind
    capacity: float
    buffer_bytes: float
    index: int = 0
    upstream_queue_capacity: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("port capacity must be positive")
        if self.buffer_bytes <= 0:
            raise ValueError("port buffer must be positive")

    @property
    def queue_capacity(self) -> float:
        """Seconds to drain a full buffer: the paper's queue capacity."""
        return self.buffer_bytes / self.capacity

    @property
    def name(self) -> str:
        """The ``<kind>[<index>]`` label used in traces and ``queues.csv``.

        Matches the name the packet simulator gives the corresponding
        simulated port, so offline consumers can join ``queues.csv``
        rows back to topology ports.
        """
        return f"{self.kind.value}[{self.index}]"

    def __repr__(self) -> str:
        return (f"Port(#{self.port_id} {self.name} "
                f"{self.capacity * 8 / 1e9:.1f}Gbps "
                f"{self.buffer_bytes / 1e3:.0f}KB)")
