"""The what-if tail-latency surrogate: fit, estimate, persistence."""

import pytest

from repro import units
from repro.analysis.surrogate import (HopSamples, WhatIfModel,
                                      fit_whatif_model, quantile_label)
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.obs import find_trace_artifacts
from repro.placement import SiloPlacementManager, incast_paths
from repro.topology import TreeTopology

MESSAGE_BYTES = 15 * units.KB


def make_topo():
    return TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


def guarantee():
    return NetworkGuarantee(bandwidth=units.mbps(1000),
                            burst=15 * units.KB, delay=units.msec(1),
                            peak_rate=units.gbps(1))


def place(topo, n_vms=8):
    manager = SiloPlacementManager(topo)
    placement = manager.place(TenantRequest(
        n_vms=n_vms, guarantee=guarantee(),
        tenant_class=TenantClass.CLASS_A))
    assert placement is not None
    return placement


def synthetic_artifacts(tmp_path, topo, placement):
    """Hand-written latency.csv + queues.csv consistent with the paths."""
    paths = incast_paths(topo, placement)
    port_names = sorted({port.name for sender in paths.senders
                         for port in sender.ports})
    assert port_names, "placement must span servers for this fixture"
    queue_rows = [f"{name},{0.0001 * i},4,{3000.0 * i},0.0," \
                  f"{6000.0 * i},{1500.0 * i}"
                  for name in port_names for i in range(5)]
    # A port that exists but is NOT on any sender path must be ignored.
    off_path = next(port.name for port in topo.ports
                    if port.name not in port_names)
    queue_rows.append(f"{off_path},0.0,1000,250000.0,250000.0,"
                      f"250000.0,250000.0")
    latencies = [130e-6 + 2e-6 * (i % 10) for i in range(40)]
    latency_rows = [f"1,{1 + i % 7},0,{MESSAGE_BYTES:g},0.0,"
                    f"{lat},{lat},0"
                    for i, lat in enumerate(latencies)]
    # Bulk (class-B) rows use another size and must not enter the fit.
    latency_rows.append(f"9,0,1,256000,0.0,0.002,0.002,0")
    (tmp_path / "queues.csv").write_text(
        "port,time,count,mean,min,max,last\n"
        + "\n".join(queue_rows) + "\n")
    (tmp_path / "latency.csv").write_text(
        "tenant_id,src_vm,dst_vm,size,start,finish,latency,rto_events\n"
        + "\n".join(latency_rows) + "\n")
    return find_trace_artifacts(tmp_path), set(
        port.kind.value for sender in paths.senders
        for port in sender.ports), off_path


@pytest.fixture
def fitted(tmp_path):
    topo = make_topo()
    placement = place(topo)
    artifacts, kinds, off_path = synthetic_artifacts(tmp_path, topo,
                                                     placement)
    model = fit_whatif_model(topo, [placement], guarantee(),
                             MESSAGE_BYTES, artifacts)
    return topo, placement, model, kinds, off_path


class TestFit:
    def test_samples_only_from_path_ports(self, fitted):
        _, _, model, kinds, off_path = fitted
        assert set(model.hop_samples) == kinds | {"*"}
        # The huge off-path standing queue must not leak into any pool.
        for samples in model.hop_samples.values():
            assert max(samples.delays) < 1e-3

    def test_counts_only_calibration_sized_messages(self, fitted):
        _, _, model, _, _ = fitted
        assert model.meta["calibration_messages"] == 40

    def test_affine_fit_recenters_on_observed(self, fitted):
        topo, placement, model, _, _ = fitted
        estimate = model.estimate(topo, placement)
        # Observed calibration latencies were 130-148us; the corrected
        # median must land in that neighbourhood, not at the raw base.
        assert 100e-6 < estimate.quantiles[50.0] < 200e-6

    def test_needs_placements_and_artifacts(self, fitted):
        topo, placement, _, _, _ = fitted
        with pytest.raises(ValueError, match="placement"):
            fit_whatif_model(topo, [], guarantee(), MESSAGE_BYTES,
                             [object()])
        with pytest.raises(ValueError, match="trace"):
            fit_whatif_model(topo, [placement], guarantee(),
                             MESSAGE_BYTES, [])


class TestEstimate:
    def test_quantiles_monotone_and_clamped(self, fitted):
        topo, placement, model, _, _ = fitted
        estimate = model.estimate(topo, placement)
        values = [estimate.quantiles[q]
                  for q in sorted(estimate.quantiles)]
        assert values == sorted(values)
        assert estimate.base <= values[0]
        assert values[-1] <= estimate.bound
        assert estimate.n_senders == 7

    def test_bound_respects_delay_guarantee(self, fitted):
        topo, placement, model, _, _ = fitted
        paths = incast_paths(topo, placement)
        bound = model.worst_case_bound(paths, guarantee(),
                                       MESSAGE_BYTES)
        assert bound <= guarantee().message_latency_bound(MESSAGE_BYTES)

    def test_larger_message_never_faster(self, fitted):
        topo, placement, model, _, _ = fitted
        small = model.estimate(topo, placement, MESSAGE_BYTES)
        big = model.estimate(topo, placement, 2 * MESSAGE_BYTES)
        for q in small.quantiles:
            assert big.quantiles[q] >= small.quantiles[q]

    def test_rejects_nonpositive_message(self, fitted):
        topo, placement, model, _, _ = fitted
        with pytest.raises(ValueError, match="positive"):
            model.estimate(topo, placement, 0.0)

    def test_to_dict_reports_microseconds(self, fitted):
        topo, placement, model, _, _ = fitted
        out = model.estimate(topo, placement).to_dict()
        assert set(out) >= {"p50_us", "p95_us", "p99_us", "p999_us",
                            "bound_us", "base_us"}
        assert out["p50_us"] <= out["p999_us"] <= out["bound_us"]


class TestPersistence:
    def test_round_trip_preserves_estimates(self, fitted, tmp_path):
        topo, placement, model, _, _ = fitted
        path = tmp_path / "model.json"
        model.save(path)
        loaded = WhatIfModel.load(path)
        before = model.estimate(topo, placement).quantiles
        after = loaded.estimate(topo, placement).quantiles
        for q, value in before.items():
            assert after[q] == pytest.approx(value, rel=1e-9)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            WhatIfModel.from_dict({"format": 99})


class TestValidation:
    def test_quantile_label(self):
        assert quantile_label(50.0) == "p50"
        assert quantile_label(99.9) == "p999"

    def test_hop_samples_need_matching_weights(self):
        with pytest.raises(ValueError):
            HopSamples(delays=[1.0], weights=[])

    def test_model_validates_calibration(self):
        with pytest.raises(ValueError):
            WhatIfModel(hop_samples={}, cal_senders=0,
                        cal_message_bytes=1.0)
        with pytest.raises(ValueError):
            WhatIfModel(hop_samples={}, cal_senders=1,
                        cal_message_bytes=0.0)
        with pytest.raises(ValueError):
            WhatIfModel(hop_samples={}, cal_senders=1,
                        cal_message_bytes=1.0, grid=0.0)
