"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and prints
it in the paper's terms; pytest-benchmark times the underlying experiment
once (``rounds=1``) since these are simulations, not micro-kernels.  The
heavyweight packet-level campaign behind Figs. 12-14 and Table 4 runs
once per session and is shared by those benchmarks through the
``fig12_campaign`` fixture.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import BulkApp, EpochBurstApp
from repro.placement import (
    LocalityPlacementManager,
    OktopusPlacementManager,
    SiloPlacementManager,
)
from repro.topology import TreeTopology
from repro.workloads import Fixed
from repro.workloads.patterns import all_to_all_pairs


def run_once(benchmark, fn):
    """Time one execution of ``fn`` and return its result."""
    result_box = {}

    def wrapper():
        result_box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return result_box["result"]


def print_table(title: str, header: List[str],
                rows: List[List[str]]) -> None:
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    print(f"\n=== {title} ===")
    line = "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


# ---------------------------------------------------------------------------
# The section 6.2 campaign: class-A + class-B tenants under six schemes.
# ---------------------------------------------------------------------------

#: Scaled-down stand-in for the paper's 10 racks x 40 servers x 8 VMs: the
#: same shape (oversubscribed tree, shallow buffers), sized so the whole
#: six-scheme campaign runs in a few minutes of wall time.
CAMPAIGN_SCHEMES = ("silo", "tcp", "dctcp", "hull", "okto", "okto+")

CLASS_A_GUARANTEE = NetworkGuarantee(
    bandwidth=units.gbps(0.25), burst=15 * units.KB,
    delay=units.msec(1), peak_rate=units.gbps(1))
CLASS_B_GUARANTEE = NetworkGuarantee(
    bandwidth=units.gbps(1.0), burst=1.5 * units.KB)

CLASS_A_MESSAGE = 15 * units.KB
#: Epoch chosen so the all-to-one aggregate stays within the receiver's
#: hose guarantee (5 senders x 15 KB / 3 ms = 25 MB/s < B = 31.25 MB/s):
#: the workload is guarantee-compliant, as the paper's tenants are.
CLASS_A_EPOCH = units.msec(3.0)
CAMPAIGN_DURATION = 0.08
N_CLASS_A = 3
N_CLASS_B = 2
#: Tenant size deliberately indivisible by the 4 VM slots per server, so
#: the locality baseline interleaves tenants across servers and racks --
#: which is what creates cross-tenant contention at the paper's scale.
VMS_PER_TENANT_A = 6
VMS_PER_TENANT_B = 11


@dataclass
class SchemeResult:
    """Everything the Fig. 12-14 / Table 4 benches need from one run."""

    scheme: str
    metrics: MetricsCollector
    class_a_tenants: List[int]
    class_b_tenants: List[int]
    class_a_estimate: float
    class_b_estimates: Dict[int, float]
    drops: int
    rto_fractions: Dict[int, float] = field(default_factory=dict)


def _place_campaign_tenants(scheme: str, topo: TreeTopology):
    """Admit the campaign tenants with the scheme's own placement rule.

    Silo and Oktopus(+) place through their managers.  The unmanaged
    baselines (TCP/DCTCP/HULL) get *striped* placement -- tenants
    interleaved across servers -- which recreates, at this scaled-down
    size, the pervasive port sharing that a 90%-occupied 3200-VM fabric
    exhibits under any placement (at 40 slots, strict locality packing
    would accidentally give each tenant private servers, which no real
    multi-tenant cloud provides).
    """
    from repro.core.tenant import Placement, TenantClass, TenantRequest
    if scheme == "silo":
        manager = SiloPlacementManager(topo)
    elif scheme in ("okto", "okto+"):
        manager = OktopusPlacementManager(topo)
    else:
        manager = None

    # Interleaved arrival order (a, b, a, b, a): tenants arrive mixed in
    # a real cloud, so greedy managers end up sharing servers across
    # classes -- the situation Figs. 12-14 measure.
    requests = []
    for i in range(N_CLASS_A + N_CLASS_B):
        if i % 2 == 0 and i // 2 < N_CLASS_A:
            requests.append(("a", TenantRequest(
                n_vms=VMS_PER_TENANT_A, guarantee=CLASS_A_GUARANTEE,
                tenant_class=TenantClass.CLASS_A)))
        else:
            requests.append(("b", TenantRequest(
                n_vms=VMS_PER_TENANT_B, guarantee=CLASS_B_GUARANTEE,
                tenant_class=TenantClass.CLASS_B)))

    placements = []
    if manager is not None:
        for kind, request in requests:
            placement = manager.place(request)
            if placement is None:
                raise RuntimeError(f"campaign tenant rejected "
                                   f"under {scheme}")
            placements.append((kind, request, placement))
        return placements

    # Striped placement for the unmanaged baselines.
    slot_cursor = 0
    for kind, request in requests:
        servers = []
        for _ in range(request.n_vms):
            servers.append(slot_cursor % topo.n_servers)
            slot_cursor += 1
        placements.append((kind, request,
                           Placement(request=request, vm_servers=servers)))
    return placements


def run_campaign_scheme(scheme: str, seed: int = 1234) -> SchemeResult:
    """One scheme's run of the section 6.2 workload."""
    topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=5,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    placements = _place_campaign_tenants(scheme, topo)
    net = PacketNetwork(topo, scheme=scheme)
    metrics = MetricsCollector()
    rng = random.Random(seed)

    paced = scheme in ("silo", "okto", "okto+")
    vm_counter = 0
    apps = []
    class_a, class_b = [], []
    class_b_estimates = {}
    for kind, request, placement in placements:
        guarantee = request.guarantee
        if scheme == "okto":
            # Oktopus: bandwidth reservation only, no burst allowance.
            guarantee = NetworkGuarantee(
                bandwidth=guarantee.bandwidth, burst=units.MTU,
                delay=guarantee.delay,
                peak_rate=guarantee.bandwidth)
        vm_ids = []
        for server in placement.vm_servers:
            net.add_vm(vm_counter, request.tenant_id, server,
                       guarantee=guarantee if paced else None,
                       paced=paced)
            vm_ids.append(vm_counter)
            vm_counter += 1
        if kind == "a":
            class_a.append(request.tenant_id)
            app = EpochBurstApp(net, metrics, request.tenant_id, vm_ids,
                                Fixed(CLASS_A_MESSAGE),
                                epoch=CLASS_A_EPOCH, rng=rng,
                                jitter=20 * units.MICROS)
            app.start()
        else:
            class_b.append(request.tenant_id)
            app = BulkApp(net, metrics, request.tenant_id,
                          all_to_all_pairs(vm_ids),
                          chunk_size=256 * units.KB)
            app.start()
            class_b_estimates[request.tenant_id] = (
                256 * units.KB
                / (CLASS_B_GUARANTEE.bandwidth / (VMS_PER_TENANT_B - 1)))
        apps.append(app)

    net.sim.run(until=CAMPAIGN_DURATION)

    estimate = CLASS_A_GUARANTEE.message_latency_bound(CLASS_A_MESSAGE)
    result = SchemeResult(
        scheme=scheme, metrics=metrics,
        class_a_tenants=class_a, class_b_tenants=class_b,
        class_a_estimate=estimate,
        class_b_estimates=class_b_estimates,
        drops=net.port_stats()["drops"])
    for tenant in class_a:
        result.rto_fractions[tenant] = metrics.rto_message_fraction(tenant)
    return result


_campaign_cache: Dict[str, SchemeResult] = {}


@pytest.fixture(scope="session")
def fig12_campaign():
    """All six schemes' results, computed once per session."""
    if not _campaign_cache:
        for scheme in CAMPAIGN_SCHEMES:
            _campaign_cache[scheme] = run_campaign_scheme(scheme)
    return _campaign_cache
