"""Per-port reservation state used by admission control.

Each tenant crossing a port contributes a dual-rate arrival curve.  Summing
the exact curves of hundreds of tenants would grow without bound, so the
port state keeps four running totals -- sustained bandwidth, burst bytes,
peak (burst-drain) rate and the per-sender packet slack -- and rebuilds a
*conservative* aggregate curve from them:

    sum_i min(f_i, g_i)  <=  min(sum_i f_i, sum_i g_i)

i.e. the rebuilt curve over-estimates arrivals, so any placement it admits
is also admitted by the exact analysis.  This keeps admission O(1) per port
regardless of tenant count, which is what lets the placement manager handle
the paper's 100K-host scalability target (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.netcalc.bounds import backlog_bound, delay_bound
from repro.netcalc.curves import Curve
from repro.netcalc.service import RateLatencyService
from repro.topology.switch import Port


@dataclass(frozen=True)
class Contribution:
    """One tenant's arrival-curve contribution at one port.

    Attributes:
        bandwidth: sustained hose bandwidth crossing the port (bytes/s).
        burst: total burst bytes, already inflated for upstream bunching.
        peak_rate: rate at which the burst can drain into the port, after
            capping at the senders' physical link capacities.
        packet_slack: one packet per sender (even paced sources emit whole
            packets).
    """

    bandwidth: float
    burst: float
    peak_rate: float
    packet_slack: float

    def __post_init__(self) -> None:
        if self.bandwidth < 0 or self.burst < 0 or self.packet_slack < 0:
            raise ValueError("contribution terms must be >= 0")
        if self.peak_rate < self.bandwidth:
            raise ValueError("peak rate must be >= sustained bandwidth")


class PortState:
    """Running reservation totals for one port."""

    __slots__ = ("port", "bandwidth", "burst", "peak_rate", "packet_slack",
                 "_service")

    def __init__(self, port: Port):
        self.port = port
        self.bandwidth = 0.0
        self.burst = 0.0
        self.peak_rate = 0.0
        self.packet_slack = 0.0
        self._service = RateLatencyService(rate=port.capacity)

    # -- mutation ------------------------------------------------------------

    def add(self, contribution: Contribution) -> None:
        self.bandwidth += contribution.bandwidth
        self.burst += contribution.burst
        self.peak_rate += contribution.peak_rate
        self.packet_slack += contribution.packet_slack

    def remove(self, contribution: Contribution) -> None:
        self.bandwidth -= contribution.bandwidth
        self.burst -= contribution.burst
        self.peak_rate -= contribution.peak_rate
        self.packet_slack -= contribution.packet_slack
        # Guard against floating-point drift after many add/remove cycles.
        self.bandwidth = max(self.bandwidth, 0.0)
        self.burst = max(self.burst, 0.0)
        self.peak_rate = max(self.peak_rate, 0.0)
        self.packet_slack = max(self.packet_slack, 0.0)

    # -- analysis --------------------------------------------------------------

    def aggregate_curve(self, extra: Contribution = None) -> Curve:
        """Conservative aggregate arrival curve, optionally with a candidate.

        Returns the dual-rate curve built from the summed totals; see the
        module docstring for why this is a sound over-approximation.
        """
        bandwidth = self.bandwidth
        burst = self.burst
        peak = self.peak_rate
        slack = self.packet_slack
        if extra is not None:
            bandwidth += extra.bandwidth
            burst += extra.burst
            peak += extra.peak_rate
            slack += extra.packet_slack
        slack = max(slack, units.MTU)
        burst = max(burst, slack)
        peak = max(peak, bandwidth)
        if peak <= bandwidth or burst <= slack:
            return Curve.affine(bandwidth, burst)
        return Curve.from_pieces([(peak, slack), (bandwidth, burst)])

    def queue_bound(self, extra: Contribution = None) -> float:
        """Worst-case queuing delay (seconds) at this port."""
        return delay_bound(self.aggregate_curve(extra), self._service)

    def backlog(self, extra: Contribution = None) -> float:
        """Worst-case queued bytes at this port."""
        return backlog_bound(self.aggregate_curve(extra), self._service)

    def admits(self, extra: Contribution) -> bool:
        """Silo's first constraint: queue bound within queue capacity.

        Checked in byte form (backlog <= buffer) which is equivalent to
        "queue bound <= queue capacity" for a line-rate server, plus queue
        stability (reserved bandwidth within line rate).
        """
        if self.bandwidth + extra.bandwidth > self.port.capacity:
            return False
        return self.backlog(extra) <= self.port.buffer_bytes + 1e-6

    def admits_bandwidth(self, extra: Contribution) -> bool:
        """Oktopus' bandwidth-only admission check."""
        return self.bandwidth + extra.bandwidth <= self.port.capacity

    @property
    def residual_bandwidth(self) -> float:
        return max(self.port.capacity - self.bandwidth, 0.0)

    @property
    def is_empty(self) -> bool:
        """No reservations at all: this port is interchangeable with any
        other empty port of the same shape (used to prune search)."""
        return (self.bandwidth == 0.0 and self.burst == 0.0
                and self.peak_rate == 0.0)

    def __repr__(self) -> str:
        return (f"PortState({self.port!r}: "
                f"bw={units.to_gbps(self.bandwidth):.2f}Gbps "
                f"burst={self.burst / 1e3:.0f}KB)")
