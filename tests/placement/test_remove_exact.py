"""Exact release: removals leave ports bit-identical to a fresh build.

The manager rebuilds each touched port's running totals from the
surviving contributions in commit order (``PortState.reset_totals``), so
no float drift survives any interleaving of ``place()``/``remove()``.
These properties pin that down, plus the unknown-tenant error contract.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import (
    OktopusPlacementManager,
    PortState,
    SiloPlacementManager,
)
from repro.topology import TreeTopology


def build_manager(cls=SiloPlacementManager):
    topo = TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)
    return cls(topo)


request_params = st.tuples(
    st.integers(min_value=2, max_value=12),                 # n_vms
    st.floats(min_value=50, max_value=2000),                # Mbps
    st.floats(min_value=1.5, max_value=60),                 # burst KB
    st.sampled_from([None, 500e-6, 1e-3, 5e-3]),            # delay
)

# A step is either an admission attempt or a release of the i-th oldest
# still-placed tenant (index taken modulo the live set).
steps = st.lists(
    st.one_of(request_params,
              st.tuples(st.just("remove"), st.integers(0, 30))),
    min_size=1, max_size=30)


def make_request(params):
    n_vms, mbps, burst_kb, delay = params
    peak = units.gbps(10) if delay is not None else None
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(mbps),
                                   burst=burst_kb * units.KB,
                                   delay=delay, peak_rate=peak),
        tenant_class=(TenantClass.CLASS_A if delay is not None
                      else TenantClass.CLASS_B))


def assert_ports_bit_identical(manager, commit_log, removed):
    """Every live port must equal a freshly built one holding the same
    surviving contributions, folded in original commit order."""
    survivors = {}
    for tenant_id, port_id, contribution in commit_log:
        if tenant_id in removed:
            continue
        survivors.setdefault(port_id, []).append(contribution)
    for port_id, state in manager.states.items():
        fresh = PortState(state.port)
        for contribution in survivors.get(port_id, []):
            fresh.add(contribution)
        assert state.bandwidth == fresh.bandwidth
        assert state.burst == fresh.burst
        assert state.peak_rate == fresh.peak_rate
        assert state.packet_slack == fresh.packet_slack


@pytest.mark.parametrize("manager_cls", [SiloPlacementManager,
                                         OktopusPlacementManager])
@settings(max_examples=20, deadline=None)
@given(step_list=steps)
def test_interleaved_place_remove_leaves_ports_bit_identical(
        manager_cls, step_list):
    manager = build_manager(manager_cls)
    commit_log = []   # (tenant_id, port_id, contribution) in commit order
    removed = set()
    live = []
    for step in step_list:
        if step[0] == "remove":
            if not live:
                continue
            tenant_id = live.pop(step[1] % len(live))
            manager.remove(tenant_id)
            removed.add(tenant_id)
        else:
            request = make_request(step)
            if manager.place(request) is None:
                continue
            live.append(request.tenant_id)
            for port_id, contribution in manager._commits[
                    request.tenant_id]:
                commit_log.append((request.tenant_id, port_id,
                                   contribution))
        assert_ports_bit_identical(manager, commit_log, removed)


@settings(max_examples=20, deadline=None)
@given(step_list=st.lists(request_params, min_size=1, max_size=10))
def test_remove_everything_restores_pristine_ports(step_list):
    manager = build_manager()
    placed = []
    for params in step_list:
        request = make_request(params)
        if manager.place(request) is not None:
            placed.append(request.tenant_id)
    for tenant_id in placed:
        manager.remove(tenant_id)
    for state in manager.states.values():
        assert state.is_empty
        assert state.packet_slack == 0.0
    assert manager.used_slots == 0


class TestRemoveErrors:
    def test_remove_unknown_tenant_raises_keyerror(self):
        manager = build_manager()
        with pytest.raises(KeyError):
            manager.remove(999_999)

    def test_double_remove_raises_keyerror(self):
        manager = build_manager()
        request = make_request((4, 250.0, 15.0, None))
        assert manager.place(request) is not None
        manager.remove(request.tenant_id)
        with pytest.raises(KeyError):
            manager.remove(request.tenant_id)
