"""Per-pod sharded cluster state with an aggregator fallback.

The admission service shards the cluster's placement books by pod: each
shard is a :class:`SiloPlacementManager` over a **single-pod** topology
(structurally identical to one pod of the full tree), with its own
:class:`ClusterController`.  Admission tries shards first -- a single-pod
manager's decisions are bit-identical to the full manager restricted to
pod scope, because every intra-pod port capacity and queue bound depends
only on intra-pod structure -- and falls back to a full-topology
*aggregator* manager for tenants that need cluster scope (or that no
single pod can hold).

The aggregator's manager (``calc``) mirrors **all** tenants so its
cluster-level admission math always sees the true load:

* shard-owned tenants are mirrored into ``calc`` as real placements via
  :meth:`PlacementManager.adopt` (same pure contribution function, so
  the mirrored registry entries are bit-identical);
* aggregator-owned (cross-pod) tenants are mirrored into each touched
  shard as a slots-only placeholder (best-effort request, no guarantee)
  plus per-port capacity reservations for their intra-pod contributions,
  so shard admission keeps respecting cross-pod tenants' reservations.

Mirroring rides the managers' ``_commit``/``remove`` paths (so every
placement route -- admission, crash-recovery redo, controller
re-placement -- propagates automatically) and is kept from recursing by
the ownership map: a tenant is owned by exactly one pod or by the
aggregator (:data:`AGG`), and each propagation hook acts only on
tenants its side owns.

Fault events fan out the same way: the aggregator controller applies
the global event first on a fault (dropping its owned tenants'
placeholders before shard controllers run) and last on a repair, while
each shard controller gets the event translated into its local
coordinates.  A shard whose pod has lost too many servers is cordoned
wholesale (graceful degradation); the cordon is re-asserted after every
event because repairs uncordon individual servers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.tenant import Placement, TenantClass, TenantRequest
from repro.faults.model import ACTION_UP, FaultEvent, FaultTarget
from repro.placement.controller import ClusterController, RecoveryReport
from repro.placement.silo import SiloPlacementManager
from repro.topology.tree import TreeTopology

from repro.service import snapshot as snapshot_mod

__all__ = ["AGG", "ShardedCluster"]

#: Owner sentinel for tenants placed by the cluster-scope aggregator.
AGG = -1


class _ShardManager(SiloPlacementManager):
    """One pod's books; propagates commits/removals to the aggregator."""

    def __init__(self, topology: TreeTopology, pod: int,
                 cluster: "ShardedCluster", **kwargs) -> None:
        super().__init__(topology, **kwargs)
        self._pod = pod
        self._cluster = cluster

    def _commit(self, request, assignment):
        placement = super()._commit(request, assignment)
        self._cluster._on_shard_commit(self._pod, request, placement)
        return placement

    def remove(self, tenant_id: int) -> None:
        super().remove(tenant_id)
        self._cluster._on_shard_remove(self._pod, tenant_id)

    # Cordons mirror to the aggregator books immediately (not at the
    # end of the fault fan-out): a shard controller that uncordons a
    # repaired server and re-places an evicted tenant onto it in the
    # same event needs the calc mirror to accept the adopt.  Both
    # cordon calls are idempotent, so the aggregator controller's own
    # pass over the same event is a no-op.

    def cordon_server(self, server: int) -> int:
        withheld = super().cordon_server(server)
        self._cluster.calc.cordon_server(
            self._cluster._to_global(self._pod, server))
        return withheld

    def uncordon_server(self, server: int) -> int:
        freed = super().uncordon_server(server)
        self._cluster.calc.uncordon_server(
            self._cluster._to_global(self._pod, server))
        return freed


class _CalcManager(SiloPlacementManager):
    """The full-topology aggregator books; propagates to the shards."""

    def __init__(self, topology: TreeTopology,
                 cluster: "ShardedCluster", **kwargs) -> None:
        super().__init__(topology, **kwargs)
        self._cluster = cluster

    def _commit(self, request, assignment):
        placement = super()._commit(request, assignment)
        self._cluster._on_calc_commit(request, placement)
        return placement

    def remove(self, tenant_id: int) -> None:
        super().remove(tenant_id)
        self._cluster._on_calc_remove(tenant_id)


class ShardedCluster:
    """Sharded admission state: per-pod managers + aggregator fallback.

    Args:
        topology: the full datacenter tree.
        shard_down_threshold: fraction of a pod's servers that must be
            down before the whole shard is cordoned out of placement.
        retry_evicted: passed to every controller (see
            :class:`ClusterController`).
    """

    def __init__(self, topology: TreeTopology,
                 shard_down_threshold: float = 0.5,
                 retry_evicted: bool = True) -> None:
        self.topology = topology
        self.n_pods = topology.n_pods
        self.pod_servers = (topology.racks_per_pod
                            * topology.servers_per_rack)
        self.shard_down_threshold = shard_down_threshold
        #: Single-pod twin of one pod of the full tree (shared by all
        #: shards; manager state is per-manager).
        self.shard_topology = TreeTopology(
            n_pods=1,
            racks_per_pod=topology.racks_per_pod,
            servers_per_rack=topology.servers_per_rack,
            slots_per_server=topology.slots_per_server,
            link_rate=topology.link_rate,
            oversubscription=topology.oversubscription,
            buffer_bytes=topology.buffer_bytes)
        self.shards: List[_ShardManager] = [
            _ShardManager(self.shard_topology, pod, self)
            for pod in range(self.n_pods)]
        self.calc = _CalcManager(topology, self)
        #: tenant id -> owning pod, or :data:`AGG`.
        self.owner: Dict[int, int] = {}
        #: Aggregator tenants' per-shard reservations:
        #: tenant id -> {pod: [local port ids]}.
        self._xpod: Dict[int, Dict[int, List[int]]] = {}
        self.cordoned_shards: Set[int] = set()
        self.controllers: List[ClusterController] = [
            ClusterController(
                self.shards[pod], retry_evicted=retry_evicted,
                owns=lambda tid, pod=pod: self.owner.get(tid) == pod)
            for pod in range(self.n_pods)]
        self.agg_controller = ClusterController(
            self.calc, retry_evicted=retry_evicted,
            owns=lambda tid: self.owner.get(tid) == AGG)
        self._port_map = self._build_port_map()
        #: Batch-mode memo tag (see :meth:`place_batch`).
        self._batch_signature: Optional[tuple] = None
        self._memo_fresh: Set[int] = set()

    def _build_port_map(self) -> Dict[int, Tuple[int, int]]:
        """Global port id -> (pod, local port id) for intra-pod ports.

        Aggregation uplinks and core downlinks are absent: a single-pod
        shard never probes them (its tenants span at most one pod), so
        faults there concern only the aggregator.
        """
        topo, local = self.topology, self.shard_topology
        mapping: Dict[int, Tuple[int, int]] = {}
        for server in range(topo.n_servers):
            pod = topo.pod_of(server)
            s_local = server - pod * self.pod_servers
            mapping[topo.nic_up(server).port_id] = (
                pod, local.nic_up(s_local).port_id)
            mapping[topo.tor_down(server).port_id] = (
                pod, local.tor_down(s_local).port_id)
        for rack in range(topo.n_racks):
            pod = rack // topo.racks_per_pod
            r_local = rack - pod * topo.racks_per_pod
            mapping[topo.tor_up(rack).port_id] = (
                pod, local.tor_up(r_local).port_id)
            mapping[topo.agg_down(rack).port_id] = (
                pod, local.agg_down(r_local).port_id)
        return mapping

    def _to_global(self, pod: int, local_server: int) -> int:
        return pod * self.pod_servers + local_server

    def _to_local(self, server: int) -> Tuple[int, int]:
        pod = server // self.pod_servers
        return pod, server - pod * self.pod_servers

    # -- mirror propagation (ownership-guarded) ------------------------------

    def _on_shard_commit(self, pod: int, request: TenantRequest,
                         placement: Placement) -> None:
        if self.owner.get(request.tenant_id) != pod:
            return  # aggregator placeholder landing in this shard
        assignment: Dict[int, int] = {}
        for local_server in placement.vm_servers:
            server = self._to_global(pod, local_server)
            assignment[server] = assignment.get(server, 0) + 1
        self.calc.adopt(request, assignment)

    def _on_shard_remove(self, pod: int, tenant_id: int) -> None:
        if self.owner.get(tenant_id) != pod:
            return
        if tenant_id in self.calc.placements:
            self.calc.remove(tenant_id)

    def _on_calc_commit(self, request: TenantRequest,
                        placement: Placement) -> None:
        tenant_id = request.tenant_id
        if self.owner.get(tenant_id) != AGG:
            return  # a shard tenant's mirror landing in calc
        per_pod: Dict[int, Dict[int, int]] = {}
        for server in placement.vm_servers:
            pod, local_server = self._to_local(server)
            counts = per_pod.setdefault(pod, {})
            counts[local_server] = counts.get(local_server, 0) + 1
        reservations: Dict[int, List[int]] = {}
        for pod in sorted(per_pod):
            counts = per_pod[pod]
            placeholder = TenantRequest(
                n_vms=sum(counts.values()), guarantee=None,
                tenant_class=TenantClass.BEST_EFFORT,
                name=request.name, tenant_id=tenant_id)
            self.shards[pod].adopt(placeholder, counts)
            reservations[pod] = []
        key = f"xpod:{tenant_id}"
        for global_pid, contribution in self.calc._commits[tenant_id]:
            mapped = self._port_map.get(global_pid)
            if mapped is None:
                continue  # agg uplink / core downlink: aggregator-only
            pod, local_pid = mapped
            self.shards[pod].reserve_capacity(local_pid, contribution,
                                              key)
            reservations[pod].append(local_pid)
        self._xpod[tenant_id] = reservations

    def _on_calc_remove(self, tenant_id: int) -> None:
        if self.owner.get(tenant_id) != AGG:
            return
        reservations = self._xpod.pop(tenant_id, {})
        key = f"xpod:{tenant_id}"
        for pod in sorted(reservations):
            shard = self.shards[pod]
            for local_pid in reservations[pod]:
                shard.release_capacity(local_pid, key)
            if tenant_id in shard.placements:
                shard.remove(tenant_id)

    # -- admission -----------------------------------------------------------

    def _shard_order(self) -> List[int]:
        """Most-free shard first (deterministic tie-break on pod id),
        skipping cordoned shards."""
        candidates = [pod for pod in range(self.n_pods)
                      if pod not in self.cordoned_shards]
        return sorted(candidates,
                      key=lambda pod: (-self.shards[pod]._total_free, pod))

    def _manager_place(self, manager, request: TenantRequest,
                       now: Optional[float]):
        """One admission attempt, sharing the contribution memo across
        a batch of same-signature requests (see :meth:`place_batch`)."""
        if self._batch_signature is None:
            return manager.place(request, now=now)
        if id(manager) not in self._memo_fresh:
            manager._contribution_memo.clear()
            self._memo_fresh.add(id(manager))
        return manager._place_impl(request, now)

    def place(self, request: TenantRequest,
              now: Optional[float] = None) -> Optional[Placement]:
        """Admit a tenant: most-free shard first, aggregator fallback.

        Returns the *global* placement (from the aggregator mirror) or
        ``None`` when no shard and not even cluster scope can hold the
        request.
        """
        tenant_id = request.tenant_id
        if tenant_id in self.owner:
            raise ValueError(f"tenant {tenant_id} is already known")
        for pod in self._shard_order():
            shard = self.shards[pod]
            if shard._total_free < request.n_vms:
                continue
            self.owner[tenant_id] = pod
            placement = self._manager_place(shard, request, now)
            if placement is not None:
                return self.calc.placements[tenant_id]
            del self.owner[tenant_id]
        self.owner[tenant_id] = AGG
        placement = self._manager_place(self.calc, request, now)
        if placement is None:
            del self.owner[tenant_id]
            return None
        return placement

    def place_batch(self, requests: Sequence[TenantRequest],
                    now: Optional[float] = None
                    ) -> List[Optional[Placement]]:
        """Admit a batch, amortizing contribution math per signature.

        Same grouping semantics as
        :meth:`PlacementManager.place_batch`: requests are processed
        group by group (first-seen order), sequentially within a group,
        so decisions are identical to sequential :meth:`place` calls in
        that order.
        """
        results: List[Optional[Placement]] = [None] * len(requests)
        groups: Dict[tuple, List[int]] = {}
        order: List[tuple] = []
        for i, request in enumerate(requests):
            signature = (request.n_vms, request.guarantee)
            if signature not in groups:
                groups[signature] = []
                order.append(signature)
            groups[signature].append(i)
        try:
            for signature in order:
                self._batch_signature = signature
                self._memo_fresh = set()
                for i in groups[signature]:
                    results[i] = self.place(requests[i], now=now)
        finally:
            self._batch_signature = None
            self._memo_fresh = set()
        return results

    def adopt(self, request: TenantRequest, owner: int,
              vm_servers: Sequence[int]) -> Placement:
        """Crash-recovery redo: re-commit a logged admission verbatim.

        ``owner`` and ``vm_servers`` (global server ids) come from the
        write-ahead log's ``done`` record; mirroring propagates exactly
        as it did on the original commit.
        """
        tenant_id = request.tenant_id
        if tenant_id in self.owner:
            raise ValueError(f"tenant {tenant_id} is already known")
        self.owner[tenant_id] = owner
        if owner == AGG:
            assignment: Dict[int, int] = {}
            for server in vm_servers:
                assignment[server] = assignment.get(server, 0) + 1
            return self.calc.adopt(request, assignment)
        local: Dict[int, int] = {}
        for server in vm_servers:
            pod, local_server = self._to_local(server)
            if pod != owner:
                raise ValueError(
                    f"tenant {tenant_id}: server {server} is outside "
                    f"owning pod {owner}")
            local[local_server] = local.get(local_server, 0) + 1
        self.shards[owner].adopt(request, local)
        return self.calc.placements[tenant_id]

    def depart(self, tenant_id: int, now: float = 0.0) -> None:
        """A tenant leaves: release its books and close its track."""
        owner = self.owner.get(tenant_id)
        if owner is None:
            raise KeyError(f"tenant {tenant_id} is not known")
        if owner == AGG:
            if tenant_id in self.calc.placements:
                self.calc.remove(tenant_id)
            self.agg_controller.notify_departed(tenant_id, now)
        else:
            shard = self.shards[owner]
            if tenant_id in shard.placements:
                shard.remove(tenant_id)
            self.controllers[owner].notify_departed(tenant_id, now)
        del self.owner[tenant_id]

    @property
    def placements(self) -> Dict[int, Placement]:
        """All live placements in global coordinates (the calc mirror)."""
        return self.calc.placements

    @property
    def total_free(self) -> int:
        """Free slots across the cluster (cordoned servers excluded)."""
        return self.calc._total_free

    # -- faults --------------------------------------------------------------

    def apply_fault(self, event: FaultEvent,
                    now: Optional[float] = None) -> Dict[int, str]:
        """Fan one fault event out to the aggregator and shard
        controllers; returns merged ``{tenant_id: outcome}``.

        On a fault the aggregator goes first so its owned tenants'
        shard placeholders are gone before shard controllers re-place
        into the degraded pod; on a repair the shards go first so their
        tenants reclaim pod capacity before the aggregator retries
        cross-pod evictees.
        """
        if now is None:
            now = event.time
        outcomes: Dict[int, str] = {}
        shard_events = self._split_event(event)
        if event.action == ACTION_UP:
            for pod, local_event in shard_events:
                outcomes.update(self.controllers[pod].apply(local_event,
                                                            now=now))
            outcomes.update(self.agg_controller.apply(event, now=now))
        else:
            outcomes.update(self.agg_controller.apply(event, now=now))
            for pod, local_event in shard_events:
                outcomes.update(self.controllers[pod].apply(local_event,
                                                            now=now))
        self._refresh_shard_health()
        return outcomes

    def _split_event(self, event: FaultEvent
                     ) -> List[Tuple[int, FaultEvent]]:
        """Translate a global fault event into per-shard local events."""
        target = event.target
        topo = self.topology

        def local(pod: int, local_target: FaultTarget
                  ) -> List[Tuple[int, FaultEvent]]:
            return [(pod, FaultEvent(time=event.time, target=local_target,
                                     action=event.action,
                                     factor=event.factor))]

        if target.kind == "server":
            pod, local_server = self._to_local(target.index)
            return local(pod, FaultTarget("server", local_server))
        if target.kind == "switch":
            if target.level == "tor":
                pod = target.index // topo.racks_per_pod
                r_local = target.index - pod * topo.racks_per_pod
                return local(pod, FaultTarget("switch", r_local,
                                              level="tor"))
            if target.level == "agg":
                return local(target.index, FaultTarget("switch", 0,
                                                       level="agg"))
            return []  # core: aggregator-only
        mapped = self._port_map.get(target.index)
        if mapped is None:
            return []  # agg uplink / core downlink
        pod, local_pid = mapped
        return local(pod, FaultTarget("link", local_pid))

    def _refresh_shard_health(self) -> None:
        """Cordon/uncordon whole shards by their down-server fraction.

        Re-asserted after every event: a repair's uncordon pass may
        have freed individual servers of a still-unhealthy shard.
        """
        for pod in range(self.n_pods):
            down = len(self.controllers[pod].health.down_servers)
            if down / self.pod_servers >= self.shard_down_threshold:
                self.cordon_shard(pod)
            elif pod in self.cordoned_shards:
                self.uncordon_shard(pod)

    def cordon_shard(self, pod: int) -> None:
        """Fence a whole pod out of placement (idempotent)."""
        self.cordoned_shards.add(pod)
        shard = self.shards[pod]
        for local_server in range(self.pod_servers):
            shard.cordon_server(local_server)
            self.calc.cordon_server(self._to_global(pod, local_server))

    def uncordon_shard(self, pod: int) -> None:
        """Lift a shard cordon, keeping individually-down servers
        fenced."""
        self.cordoned_shards.discard(pod)
        down = self.controllers[pod].health.down_servers
        shard = self.shards[pod]
        for local_server in range(self.pod_servers):
            if local_server in down:
                continue
            shard.uncordon_server(local_server)
            self.calc.uncordon_server(self._to_global(pod, local_server))

    # -- reporting and persistence -------------------------------------------

    def finalize(self, end_time: float) -> None:
        """Close every controller's open outage windows at ``end_time``."""
        for controller in self.controllers:
            controller.finalize(end_time)
        self.agg_controller.finalize(end_time)

    def recovery_report(self) -> RecoveryReport:
        """Merged per-tenant recovery outcomes across all controllers."""
        rows = []
        for controller in self.controllers:
            rows.extend(controller.report().rows)
        rows.extend(self.agg_controller.report().rows)
        rows.sort(key=lambda row: (row.tenant_id, row.lost_at))
        return RecoveryReport(rows=rows)

    def dump_state(self) -> Dict:
        """The whole cluster's books as one JSON-serializable dict."""
        return {
            "shards": [
                {"manager": snapshot_mod.dump_manager(self.shards[pod]),
                 "controller": snapshot_mod.dump_controller(
                     self.controllers[pod])}
                for pod in range(self.n_pods)],
            "calc": snapshot_mod.dump_manager(self.calc),
            "agg_controller": snapshot_mod.dump_controller(
                self.agg_controller),
            "owner": sorted([tid, owner]
                            for tid, owner in self.owner.items()),
            "xpod": [[tid, [[pod, list(pids)] for pod, pids
                            in sorted(self._xpod[tid].items())]]
                     for tid in sorted(self._xpod)],
            "cordoned_shards": sorted(self.cordoned_shards),
        }

    def restore_state(self, state: Dict) -> None:
        """Load a :meth:`dump_state` snapshot (must be freshly built).

        Managers are restored registry-verbatim -- the mirror hooks do
        not fire because nothing is re-committed -- then the cluster's
        ownership and cordon maps are reloaded raw.
        """
        for pod, shard_state in enumerate(state["shards"]):
            snapshot_mod.restore_manager(self.shards[pod],
                                         shard_state["manager"])
            snapshot_mod.restore_controller(self.controllers[pod],
                                            shard_state["controller"])
        snapshot_mod.restore_manager(self.calc, state["calc"])
        snapshot_mod.restore_controller(self.agg_controller,
                                        state["agg_controller"])
        self.owner = {int(tid): int(owner)
                      for tid, owner in state["owner"]}
        self._xpod = {
            int(tid): {int(pod): [int(pid) for pid in pids]
                       for pod, pids in pods}
            for tid, pods in state["xpod"]}
        self.cordoned_shards = set(int(pod)
                                   for pod in state["cordoned_shards"])

    def state_digest(self) -> str:
        """SHA-256 certificate over the whole cluster's books."""
        return snapshot_mod.state_digest(self.dump_state())

    def set_tracer(self, tracer) -> None:
        """Attach a trace sink to every manager and controller."""
        for manager in list(self.shards) + [self.calc]:
            manager.tracer = tracer
        for controller in list(self.controllers) + [self.agg_controller]:
            controller.tracer = tracer
