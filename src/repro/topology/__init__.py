"""Datacenter topologies: multi-rooted trees with buffered switch ports."""

from repro.topology.switch import Port, PortKind
from repro.topology.tree import TreeTopology

__all__ = ["Port", "PortKind", "TreeTopology"]
