"""Declarative sweep specifications: what a campaign runs.

A :class:`SweepSpec` names a registered scenario function and describes
a parameter grid (the cartesian product of its axes) crossed with a
list of seeds.  Enumerating the spec yields :class:`Cell` objects in a
deterministic *commit order* -- grid axes vary in declaration order
with seeds innermost -- and every cell carries a stable ``cell_id``
that digests the scenario, parameters and seed.  That order and those
ids are what make campaign runs reproducible: an N-worker run merges
its cells in spec order, so its merged output is byte-identical to the
serial run, and a resumed run can trust an on-disk checkpoint exactly
when its ``cell_id`` still matches.

Seed policy is part of the spec, not of the scenario: with
``derive_cell_seeds=False`` (the default) every cell of a given seed
axis value receives that seed verbatim (common random numbers across
the grid, the mode the figure sweeps use); with ``True`` each cell's
seed is a stable hash of the base seed and the cell's parameters, so
no two cells share an RNG stream and no scenario needs ad-hoc
per-cell seed arithmetic.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

__all__ = ["Cell", "SweepSpec", "derive_seed"]

#: Mask keeping derived seeds inside the non-negative 31-bit range every
#: stdlib RNG accepts.
_SEED_MASK = 0x7FFFFFFF


def derive_seed(base: int, *parts: Any) -> int:
    """Mix ``base`` and JSON-serializable ``parts`` into a stable seed.

    Uses SHA-256 over a canonical JSON encoding, so the result depends
    only on the values (never on hash randomization, interpreter
    version or platform).
    """
    payload = json.dumps([base, *parts], sort_keys=True,
                         separators=(",", ":"), default=str)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & _SEED_MASK


@dataclass(frozen=True)
class Cell:
    """One point of a sweep: scenario parameters plus a seed.

    ``index`` is the cell's position in the spec's commit order;
    ``params`` already includes the spec's fixed parameters.
    """

    index: int
    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    seed: int

    @property
    def cell_id(self) -> str:
        """Filesystem-safe stable id: commit index plus content digest.

        The digest covers scenario, parameters and seed, so a checkpoint
        written under this id is valid only for exactly this cell --
        editing the spec invalidates stale checkpoints by construction.
        """
        payload = json.dumps([self.scenario, self.params, self.seed],
                             sort_keys=True, separators=(",", ":"),
                             default=str)
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]
        return f"{self.index:04d}-{digest}"

    @property
    def kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the scenario call (without the seed)."""
        return dict(self.params)

    def describe(self) -> str:
        """Human-oriented one-line rendering for progress output."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"[{self.index}] {self.scenario}({inner}, seed={self.seed})"


@dataclass
class SweepSpec:
    """A declarative sweep: scenario x parameter grid x seeds.

    ``grid`` maps axis names to value lists; cells enumerate the
    cartesian product in axis declaration order, seeds innermost.
    ``fixed`` parameters are passed unchanged to every cell.
    ``modules`` / ``module_paths`` name modules (dotted or by file
    path) that worker processes import before running cells, so
    scenarios registered outside :mod:`repro.campaign.scenarios` --
    e.g. in an example script -- resolve in spawned workers too.
    """

    name: str
    scenario: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    derive_cell_seeds: bool = False
    modules: Sequence[str] = ("repro.campaign.scenarios",)
    module_paths: Sequence[str] = ()

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ValueError(f"parameters both swept and fixed: "
                             f"{sorted(overlap)}")
        for axis, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {axis!r} has no values")

    # -- enumeration ---------------------------------------------------------

    def cells(self) -> Iterator[Cell]:
        """Yield every cell in commit order (grid order, seeds innermost)."""
        axes = list(self.grid.items())
        names = [name for name, _ in axes]
        index = 0
        for combo in itertools.product(*(values for _, values in axes)):
            params = tuple(sorted(
                {**dict(self.fixed), **dict(zip(names, combo))}.items()))
            for seed in self.seeds:
                cell_seed = (derive_seed(seed, self.scenario, params)
                             if self.derive_cell_seeds else seed)
                yield Cell(index=index, scenario=self.scenario,
                           params=params, seed=cell_seed)
                index += 1

    def __len__(self) -> int:
        """Total cell count of the sweep."""
        total = len(self.seeds)
        for values in self.grid.values():
            total *= len(values)
        return total

    def restrict(self, seeds: Sequence[int] = None,
                 **axes: Sequence[Any]) -> "SweepSpec":
        """A reduced copy of the spec (micro-grids for CI and --quick).

        Keyword arguments replace grid axes wholesale; ``seeds``
        replaces the seed list.  Unknown axes are an error.
        """
        unknown = set(axes) - set(self.grid)
        if unknown:
            raise ValueError(f"unknown grid axes: {sorted(unknown)}")
        grid = {name: list(axes.get(name, values))
                for name, values in self.grid.items()}
        return SweepSpec(
            name=f"{self.name}-restricted", scenario=self.scenario,
            grid=grid, seeds=tuple(seeds if seeds is not None
                                   else self.seeds),
            fixed=dict(self.fixed),
            derive_cell_seeds=self.derive_cell_seeds,
            modules=tuple(self.modules),
            module_paths=tuple(self.module_paths))

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "grid": {axis: list(values)
                     for axis, values in self.grid.items()},
            "seeds": list(self.seeds),
            "fixed": dict(self.fixed),
            "derive_cell_seeds": self.derive_cell_seeds,
            "modules": list(self.modules),
            "module_paths": list(self.module_paths),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a spec file)."""
        known = {"name", "scenario", "grid", "seeds", "fixed",
                 "derive_cell_seeds", "modules", "module_paths"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        kwargs = {key: data[key] for key in known if key in data}
        kwargs["seeds"] = tuple(kwargs.get("seeds", (0,)))
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
