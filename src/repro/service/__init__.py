"""Long-running admission-control service (see DESIGN.md).

Wraps the placement layer's admission math and the cluster controller's
fault-recovery machine in an always-on, crash-consistent service:

* :mod:`repro.service.queue` -- bounded ingress queue with priorities,
  deadlines, backpressure and overload shedding;
* :mod:`repro.service.wal` -- write-ahead intent log + atomic snapshot
  store (the crash-consistency substrate);
* :mod:`repro.service.snapshot` -- bit-exact (de)serialization of
  placement books and controller state;
* :mod:`repro.service.cluster` -- per-pod sharded books with a
  cluster-scope aggregator fallback and fault fan-out;
* :mod:`repro.service.server` -- the service loop
  (:class:`AdmissionService`);
* :mod:`repro.service.loadgen` -- seeded closed-loop load generator.

``python -m repro serve`` is the CLI entry point; ``docs/SERVICE.md``
walks through a kill -9 / restart / verify-identity session.
"""

from repro.service.queue import BoundedIngressQueue, IngressItem, Priority
from repro.service.wal import SnapshotStore, WriteAheadLog
from repro.service.snapshot import state_digest
from repro.service.cluster import AGG, ShardedCluster
from repro.service.server import AdmissionService, ServiceMetrics
from repro.service.loadgen import ClosedLoopLoadGen

__all__ = [
    "AGG", "AdmissionService", "BoundedIngressQueue",
    "ClosedLoopLoadGen", "IngressItem", "Priority", "ServiceMetrics",
    "ShardedCluster", "SnapshotStore", "WriteAheadLog", "state_digest",
]
