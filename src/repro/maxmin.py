"""Generic max-min fair rate allocation (progressive filling).

Used twice in this package: the EyeQ-style hose coordination inside the
pacer (every flow crosses its sender's and receiver's hose "links") and the
flow-level simulator's ideal-TCP bandwidth sharing (every flow crosses the
tree links on its path).

The algorithm is the textbook one: raise the rate of every unfrozen flow in
lockstep until either a flow hits its demand (freeze it) or a link
saturates (freeze every flow crossing it), then repeat with the remaining
capacity.  Runs in O(#links * #flows) in the worst case.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple


def max_min_fair(
    flows: Mapping[Hashable, Tuple[Sequence[Hashable], float]],
    capacities: Mapping[Hashable, float],
) -> Dict[Hashable, float]:
    """Allocate max-min fair rates.

    Args:
        flows: flow id -> (link ids it crosses, demand); a demand of
            ``math.inf`` means elastic (takes whatever it can get).
        capacities: link id -> capacity.  Every link referenced by a flow
            must be present.

    Returns:
        flow id -> allocated rate.  Flows crossing no links get their full
        demand (an infinite demand on a linkless flow is an error).
    """
    rates: Dict[Hashable, float] = {}
    active: Dict[Hashable, Tuple[Sequence[Hashable], float]] = {}
    for flow_id, (links, demand) in flows.items():
        if demand < 0:
            raise ValueError(f"flow {flow_id!r} has negative demand")
        if not links:
            if math.isinf(demand):
                raise ValueError(
                    f"flow {flow_id!r} is elastic but crosses no links")
            rates[flow_id] = demand
        elif demand == 0:
            rates[flow_id] = 0.0
        else:
            for link in links:
                if link not in capacities:
                    raise KeyError(f"flow {flow_id!r} crosses unknown "
                                   f"link {link!r}")
            active[flow_id] = (links, demand)
            rates[flow_id] = 0.0

    residual = dict(capacities)
    # Number of active flows crossing each link.
    load: Dict[Hashable, int] = {}
    for links, _ in active.values():
        for link in links:
            load[link] = load.get(link, 0) + 1

    while active:
        # The common increment is limited by the tightest link fair share
        # and the smallest remaining demand.
        increment = math.inf
        for flow_id, (links, demand) in active.items():
            remaining = demand - rates[flow_id]
            if remaining < increment:
                increment = remaining
        for link, count in load.items():
            if count > 0:
                share = residual[link] / count
                if share < increment:
                    increment = share
        if not math.isfinite(increment):
            raise RuntimeError("all active flows are elastic and "
                               "unconstrained; allocation diverges")
        increment = max(increment, 0.0)

        frozen: List[Hashable] = []
        for flow_id, (links, demand) in active.items():
            rates[flow_id] += increment
            for link in links:
                residual[link] -= increment
        saturated = {link for link, room in residual.items()
                     if room <= 1e-9 and load.get(link, 0) > 0}
        for flow_id, (links, demand) in active.items():
            if rates[flow_id] >= demand - 1e-12:
                frozen.append(flow_id)
            elif any(link in saturated for link in links):
                frozen.append(flow_id)
        if not frozen:
            # Numerical safety: freeze everything touching the tightest
            # link rather than looping forever.
            frozen = list(active)
        for flow_id in frozen:
            links, _ = active.pop(flow_id)
            for link in links:
                load[link] -= 1
    return rates
