#!/usr/bin/env python
"""Web-search-style partition-aggregate under an SLO budget.

The paper's introduction argues that an OLDI task with a 20 ms budget can
spend 16 ms computing *if* it knows messages take at most 4 ms -- the
whole point of guaranteed message latency.  This example runs a
partition-aggregate service (one root, seven workers) three ways:

* plain TCP on an idle fabric (fast, but no guarantee to plan against),
* plain TCP next to a bandwidth-hungry tenant (the tail blows the SLO),
* under Silo guarantees next to the same neighbour (a computable bound).

Run:  python examples/web_search_oldi.py
"""

import random

from repro import NetworkGuarantee, units
from repro.analysis import percentile
from repro.core.guarantees import message_latency_bound
from repro.phynet import (
    MetricsCollector,
    PacketNetwork,
    PRIORITY_BEST_EFFORT,
)
from repro.phynet.apps import BulkApp
from repro.phynet.oldi import PartitionAggregateApp
from repro.topology import TreeTopology
from repro.workloads import Fixed
from repro.workloads.patterns import all_to_all_pairs

DURATION = 0.06
DEADLINE = 5 * units.MILLIS
N_WORKERS = 7
GUARANTEE = NetworkGuarantee(bandwidth=units.mbps(500),
                             burst=20 * units.KB, delay=units.msec(1),
                             peak_rate=units.gbps(1))


def run(scheme: str, with_neighbour: bool):
    topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=4,
                        slots_per_server=6, link_rate=units.gbps(10))
    net = PacketNetwork(topo, scheme=scheme)
    metrics = MetricsCollector()
    paced = scheme == "silo"
    for vm in range(N_WORKERS + 1):
        net.add_vm(vm, 1, vm % 4,
                   guarantee=GUARANTEE if paced else None, paced=paced)
    app = PartitionAggregateApp(
        net, metrics, 1, root_vm=0,
        worker_vms=list(range(1, N_WORKERS + 1)),
        rng=random.Random(13),
        response_size=Fixed(15 * units.KB),
        worker_compute=Fixed(500 * units.MICROS),
        deadline=DEADLINE)
    if with_neighbour:
        vms_b = list(range(8, 20))
        for vm in vms_b:
            # Under Silo the unguaranteed neighbour rides the best-effort
            # class (section 4.4); under plain TCP there is no such split.
            net.add_vm(vm, 2, vm % 4,
                       priority=(PRIORITY_BEST_EFFORT if paced
                                 else 0))
        BulkApp(net, metrics, 2, all_to_all_pairs(vms_b),
                chunk_size=units.MB).start()
    app.start(interval=units.msec(3))
    net.sim.run(until=DURATION)
    lats = [q.latency for q in app.completed_queries()]
    return app, lats


def main() -> None:
    # What the tenant can *promise* under Silo: query down + compute +
    # response back, each leg bounded by the section 4.1 formula.
    leg = message_latency_bound(15 * units.KB, GUARANTEE.bandwidth,
                                GUARANTEE.burst, GUARANTEE.delay,
                                GUARANTEE.effective_peak_rate)
    network_bound = 2 * leg
    print(f"deadline {DEADLINE * 1e3:.0f} ms; guaranteed network round "
          f"trip <= {network_bound * 1e3:.2f} ms; compute budget "
          f"{(DEADLINE - network_bound - 500e-6) * 1e3:.2f} ms\n")

    for label, scheme, neighbour in [
            ("TCP (idle)", "tcp", False),
            ("TCP + neighbour", "tcp", True),
            ("Silo + neighbour", "silo", True)]:
        app, lats = run(scheme, neighbour)
        print(f"{label:18s} queries={len(lats):3d} "
              f"median={percentile(lats, 50) * 1e3:6.2f}ms "
              f"p99={percentile(lats, 99) * 1e3:6.2f}ms "
              f"SLO misses={app.slo_miss_fraction():6.1%}")
    print("\nExpected: the neighbour blows TCP's tail past the deadline; "
          "Silo keeps every query inside the bound it promised.")


if __name__ == "__main__":
    main()
