"""Command-line entry points: ``python -m repro <command>``.

A thin operational layer over the library for users who want to poke at
the system without writing code:

* ``admit``      -- run admission control for one tenant spec and print
                    the placement and latency bound;
* ``bounds``     -- print the message-latency bound table for a guarantee;
* ``pace``       -- show the void-packet wire schedule for a rate limit;
* ``churn``      -- run the flow-level cluster simulation and print
                    admission/utilization for the three policies;
* ``trace``      -- run a packet-level experiment (class-A epoch bursts
                    sharing the fabric with class-B bulk tenants) with
                    full event tracing, and dump figure-ready JSONL/CSV;
* ``faults``     -- fill the cluster to an occupancy, replay a seeded
                    fault schedule through the recovery controller, and
                    dump the fault timeline and per-tenant SLO-violation
                    report as CSVs.

``pace`` and ``churn`` accept ``--trace-out`` to capture their event
streams through the same :mod:`repro.obs` sinks.  ``churn`` and
``trace`` accept ``--faults <spec>`` to inject failures mid-run (see
:meth:`repro.faults.FaultSchedule.from_spec` for the spec grammar); all
randomness-drawing commands take ``--seed`` and same-seed runs produce
byte-identical CSV output.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.silo import SiloController
from repro.core.tenant import TenantClass, TenantRequest
from repro.topology import TreeTopology


def _add_topology_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--racks-per-pod", type=int, default=4)
    parser.add_argument("--servers-per-rack", type=int, default=10)
    parser.add_argument("--slots", type=int, default=8)
    parser.add_argument("--link-gbps", type=float, default=10.0)
    parser.add_argument("--oversubscription", type=float, default=5.0)
    parser.add_argument("--buffer-kb", type=float, default=312.0)


def _topology(args: argparse.Namespace) -> TreeTopology:
    return TreeTopology(
        n_pods=args.pods, racks_per_pod=args.racks_per_pod,
        servers_per_rack=args.servers_per_rack,
        slots_per_server=args.slots,
        link_rate=units.gbps(args.link_gbps),
        oversubscription=args.oversubscription,
        buffer_bytes=args.buffer_kb * units.KB)


def _guarantee(args: argparse.Namespace) -> NetworkGuarantee:
    return NetworkGuarantee(
        bandwidth=units.mbps(args.bandwidth_mbps),
        burst=args.burst_kb * units.KB,
        delay=(args.delay_us * units.MICROS
               if args.delay_us is not None else None),
        peak_rate=(units.gbps(args.bmax_gbps)
                   if args.bmax_gbps is not None else None))


def _write_csv(path: str, columns, rows) -> None:
    """Dump rows of cells as CSV; ``None`` cells render empty.

    Cells are written with ``str()`` (``repr`` round-trip for floats), so
    same-seed runs produce byte-identical files.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(",".join(columns) + "\n")
        for row in rows:
            handle.write(",".join("" if cell is None else str(cell)
                                  for cell in row) + "\n")


_RECOVERY_COLUMNS = ("tenant_id", "n_vms", "tenant_class", "outcome",
                     "lost_at", "recovered_at", "time_to_recover",
                     "guarantee_seconds_lost")


def _write_recovery_csv(path: str, report) -> None:
    _write_csv(path, _RECOVERY_COLUMNS,
               ([getattr(row, column) for column in _RECOVERY_COLUMNS]
                for row in report.rows))


def _fmt_ratio(value: float) -> str:
    """Render a fraction for humans; NaN (no data) is "n/a", not 0%."""
    if math.isnan(value):
        return "n/a"
    return f"{value:.2%}"


def _fmt_usec(value: float) -> str:
    if math.isnan(value):
        return "n/a"
    return f"{units.to_usec(value):.1f}us"


def cmd_admit(args: argparse.Namespace) -> int:
    silo = SiloController(_topology(args))
    request = TenantRequest(
        n_vms=args.vms, guarantee=_guarantee(args),
        tenant_class=(TenantClass.CLASS_A if args.delay_us is not None
                      else TenantClass.CLASS_B))
    admitted = silo.admit(request)
    if admitted is None:
        print("REJECTED: the guarantees cannot be met on this topology")
        return 1
    counts = admitted.placement.vms_per_server()
    print(f"ADMITTED {request.n_vms} VMs across "
          f"{len(counts)} servers: "
          + ", ".join(f"server {s}: {c} VM(s)"
                      for s, c in sorted(counts.items())))
    if request.wants_delay:
        for size_kb in (1, 15, 100, 1000):
            bound = silo.message_latency_bound(request.tenant_id,
                                               size_kb * units.KB)
            print(f"  {size_kb:5d} KB message latency bound: "
                  f"{units.to_msec(bound):8.3f} ms")
    print(f"  worst switch queue bound now: "
          f"{units.to_usec(silo.worst_queue_bound()):.1f} us")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    guarantee = _guarantee(args)
    if not guarantee.wants_delay:
        print("bounds need a --delay-us guarantee", file=sys.stderr)
        return 2
    print(f"{'message':>10}  {'bound':>12}")
    for size_kb in (0.1, 1, 4, 15, 50, 100, 500, 1000, 10000):
        bound = guarantee.message_latency_bound(size_kb * units.KB)
        print(f"{size_kb:8.1f}KB  {units.to_msec(bound):10.3f}ms")
    return 0


def cmd_pace(args: argparse.Namespace) -> int:
    from repro.pacer import PacerConfig, VMPacer, VoidScheduler
    link = units.gbps(args.link_gbps)
    rate = units.gbps(args.rate_gbps)
    sink = None
    if args.trace_out:
        from repro.obs import JsonlSink
        sink = JsonlSink(args.trace_out)
    pacer = VMPacer(PacerConfig(bandwidth=rate, burst=units.MTU,
                                peak_rate=rate), tracer=sink)
    stamped = [(pacer.stamp("d", units.MTU, 0.0), units.MTU)
               for _ in range(args.packets)]
    schedule = VoidScheduler(link, tracer=sink).schedule(stamped)
    data_rate, void_rate = schedule.rates()
    print(f"rate limit {args.rate_gbps:g} Gbps on {args.link_gbps:g} GbE: "
          f"{len(schedule.data_slots)} data + "
          f"{len(schedule.void_slots)} void frames")
    print(f"wire: data {units.to_gbps(data_rate):.2f} Gbps + "
          f"void {units.to_gbps(void_rate):.2f} Gbps")
    print(f"worst pacing error: {schedule.max_pacing_error() * 1e9:.1f} ns")
    if sink is not None:
        sink.close()
        print(f"wrote {args.trace_out}")
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
    from repro.placement import (
        LocalityPlacementManager,
        OktopusPlacementManager,
        SiloPlacementManager,
    )
    from repro.placement.audit import AdmissionAudit
    for name, cls, sharing in [
            ("locality", LocalityPlacementManager, "maxmin"),
            ("oktopus", OktopusPlacementManager, "reserved"),
            ("silo", SiloPlacementManager, "reserved")]:
        topo = _topology(args)
        manager = cls(topo)
        audit = AdmissionAudit()
        manager.audit = audit
        sink = None
        if args.trace_out:
            from repro.obs import JsonlSink
            sink = JsonlSink(f"{args.trace_out}.{name}.events.jsonl")
            manager.tracer = sink
        workload = TenantWorkload.for_occupancy(
            WorkloadConfig(), args.occupancy, topo.n_slots, seed=args.seed)
        faults = None
        if args.faults:
            from repro.faults import FaultSchedule
            faults = FaultSchedule.from_spec(args.faults, topo,
                                             horizon=args.horizon,
                                             seed=args.seed)
        sim = ClusterSim(manager, sharing=sharing, tracer=sink,
                         faults=faults)
        if args.trace_out:
            sim.monitor_utilization(interval=args.horizon / 200.0)
        stats = sim.run(workload, until=args.horizon)
        print(f"{name:10s} admitted={manager.admitted_fraction():6.1%} "
              f"occupancy={stats.mean_occupancy:5.1%} "
              f"utilization={stats.network_utilization:6.2%} "
              f"jobs={stats.finished_jobs} [{audit.summary()}]")
        if sim.controller is not None:
            sim.controller.finalize(args.horizon)
            report = sim.controller.report()
            print(f"{'':10s} faults: affected={report.affected} "
                  f"recovered={report.count('recovered')} "
                  f"degraded={report.count('degraded')} "
                  f"evicted={report.count('evicted')} "
                  f"killed_jobs={stats.evicted_jobs} "
                  f"rerouted={stats.rerouted_jobs}")
            if args.trace_out:
                _write_recovery_csv(
                    f"{args.trace_out}.{name}.recovery.csv", report)
        if sink is not None:
            sim.utilization_series.write_csv(
                f"{args.trace_out}.{name}.util.csv")
            audit.write_csv(f"{args.trace_out}.{name}.admission.csv")
            sink.close()
    if args.trace_out:
        print(f"wrote {args.trace_out}.<policy>.events.jsonl / .util.csv "
              f"/ .admission.csv"
              + (" / .recovery.csv" if args.faults else ""))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Packet-level Fig. 9-style run with full event tracing.

    Class-A tenants run synchronized all-to-one epoch bursts, class-B
    tenants run bulk transfers, all behind Silo admission control and
    hypervisor pacers.  With ``--out`` the run dumps the complete event
    stream (JSONL) plus per-message latency, per-port queue depth and
    per-request admission CSVs -- enough to plot per-tenant latency
    distributions and queue-depth time series offline.
    """
    import random

    from repro.obs import JsonlSink, RingBufferSink
    from repro.phynet.apps import BulkApp, EpochBurstApp
    from repro.phynet.metrics import MetricsCollector
    from repro.phynet.network import PacketNetwork
    from repro.placement.audit import AdmissionAudit
    from repro.workloads.distributions import Fixed

    topo = _topology(args)
    if args.out:
        sink = JsonlSink(f"{args.out}.events.jsonl")
    else:
        sink = RingBufferSink()
    silo = SiloController(topo)
    audit = AdmissionAudit()
    silo.placement_manager.audit = audit
    silo.placement_manager.tracer = sink
    net = PacketNetwork(topo, scheme="silo", tracer=sink)
    queue_series = net.monitor_queues(
        interval=args.queue_interval_us * units.MICROS)
    metrics = MetricsCollector(tracer=sink)
    rng = random.Random(args.seed)

    next_vm = 0

    def admit_and_place(request):
        nonlocal next_vm
        admitted = silo.admit(request)
        if admitted is None:
            return None, []
        vm_ids = []
        for server in admitted.placement.vm_servers:
            net.add_vm(next_vm, admitted.tenant_id, server,
                       guarantee=request.guarantee, paced=True,
                       pacer_config=admitted.pacer_config)
            vm_ids.append(next_vm)
            next_vm += 1
        return admitted, vm_ids

    message_bytes = args.message_kb * units.KB
    bounds = {}
    for _ in range(args.class_a):
        request = TenantRequest(n_vms=args.vms, guarantee=_guarantee(args),
                                tenant_class=TenantClass.CLASS_A)
        admitted, vm_ids = admit_and_place(request)
        if admitted is None:
            continue
        bounds[admitted.tenant_id] = request.guarantee \
            .message_latency_bound(message_bytes)
        app = EpochBurstApp(net, metrics, admitted.tenant_id, vm_ids,
                            Fixed(message_bytes),
                            epoch=args.epoch_us * units.MICROS, rng=rng)
        app.start()
    bulk_guarantee = NetworkGuarantee(
        bandwidth=units.mbps(args.bandwidth_mbps),
        burst=args.burst_kb * units.KB, delay=None,
        peak_rate=(units.gbps(args.bmax_gbps)
                   if args.bmax_gbps is not None else None))
    bulk_apps = []
    for _ in range(args.class_b):
        request = TenantRequest(n_vms=args.vms, guarantee=bulk_guarantee,
                                tenant_class=TenantClass.CLASS_B)
        admitted, vm_ids = admit_and_place(request)
        if admitted is None:
            continue
        pairs = list(zip(vm_ids[0::2], vm_ids[1::2]))
        app = BulkApp(net, metrics, admitted.tenant_id, pairs)
        app.start()
        bulk_apps.append(app)

    duration = args.duration_ms * 1e-3
    injector = None
    if args.faults:
        from repro.faults import FaultSchedule, NetworkFaultInjector
        schedule = FaultSchedule.from_spec(args.faults, topo,
                                           horizon=duration, seed=args.seed)
        injector = NetworkFaultInjector(net, schedule)
    net.sim.run(until=duration)

    print(f"admission: {audit.summary()}")
    for tenant_id in metrics.tenants():
        latencies = metrics.latencies(tenant_id)
        p99 = (metrics.latency_percentile(99.0, tenant_id)
               if latencies else float("nan"))
        bound = bounds.get(tenant_id)
        late = (metrics.fraction_late(bound, tenant_id)
                if bound is not None else float("nan"))
        print(f"tenant {tenant_id}: messages={len(latencies)} "
              f"p99={_fmt_usec(p99)} late={_fmt_ratio(late)}")
    stats = net.port_stats()
    print(f"ports: drops={stats['drops']} pushouts={stats['pushouts']} "
          f"max_queue={stats['max_queue_bytes'] / units.KB:.1f}KB")
    if injector is not None:
        print(f"faults: applied={injector.applied} "
              f"fault_drops={stats['fault_drops']}")
        if args.out:
            _write_csv(f"{args.out}.faults.csv",
                       ("time", "target", "action", "factor"),
                       ((e.time, e.target.spec, e.action, e.factor)
                        for e in injector.schedule))

    if args.out:
        with open(f"{args.out}.latency.csv", "w",
                  encoding="utf-8") as handle:
            columns = ("tenant_id", "src_vm", "dst_vm", "size", "start",
                       "finish", "latency", "rto_events")
            handle.write(",".join(columns) + "\n")
            for row in metrics.latency_rows():
                handle.write(",".join(str(row[c]) for c in columns) + "\n")
        with open(f"{args.out}.queues.csv", "w",
                  encoding="utf-8") as handle:
            handle.write("port,time,count,mean,min,max,last\n")
            for name, series in queue_series.items():
                for b in series.buckets():
                    handle.write(f"{name},{b.start},{b.count},{b.mean},"
                                 f"{b.vmin},{b.vmax},{b.last}\n")
        audit.write_csv(f"{args.out}.admission.csv")
        sink.close()
        print(f"wrote {args.out}.events.jsonl / .latency.csv / "
              f".queues.csv / .admission.csv"
              + (" / .faults.csv" if injector is not None else ""))
    else:
        print(f"traced {sink.emitted} events "
              f"(ring buffer; use --out to keep them)")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Control-plane fault campaign: fill, break, self-heal, report.

    Fills the cluster to ``--occupancy`` with the standard tenant mix,
    replays a seeded fault schedule through the
    :class:`~repro.placement.ClusterController`, and reports each
    tenant's fate (recovered / degraded / evicted) plus the
    SLO-violation totals (guarantee-seconds lost, time-to-recover).
    With ``--out`` the fault timeline and per-tenant report land in
    ``<prefix>.faults.csv`` / ``<prefix>.recovery.csv``; same-seed runs
    are byte-identical.
    """
    from repro.faults import FaultSchedule
    from repro.flowsim import TenantWorkload, WorkloadConfig
    from repro.placement import (
        ClusterController,
        LocalityPlacementManager,
        OktopusPlacementManager,
        SiloPlacementManager,
    )
    from repro.placement.audit import AdmissionAudit

    policies = {"silo": SiloPlacementManager,
                "oktopus": OktopusPlacementManager,
                "locality": LocalityPlacementManager}
    topo = _topology(args)
    manager = policies[args.policy](topo)
    audit = AdmissionAudit()
    manager.audit = audit
    sink = None
    if args.out:
        from repro.obs import JsonlSink
        sink = JsonlSink(f"{args.out}.events.jsonl")
        manager.tracer = sink

    # Fill phase: draw tenants from the standard workload mix until the
    # occupancy target (or too many consecutive rejections).  Tenant ids
    # are assigned explicitly -- the dataclass default draws from a
    # process-global counter, which would make same-seed reruns differ.
    workload = TenantWorkload(WorkloadConfig(), arrival_rate=1.0,
                              seed=args.seed)
    target_slots = args.occupancy * topo.n_slots
    placed_slots = 0
    placed = 0
    misses = 0
    next_id = 1
    while placed_slots < target_slots and misses < 50:
        drawn, _pairs, _flow_bytes = workload._sample_request()
        request = TenantRequest(n_vms=drawn.n_vms,
                                guarantee=drawn.guarantee,
                                tenant_class=drawn.tenant_class,
                                tenant_id=next_id)
        next_id += 1
        if manager.place(request, now=0.0) is None:
            misses += 1
            continue
        misses = 0
        placed += 1
        placed_slots += request.n_vms
    print(f"filled: {placed} tenants on {placed_slots}/{topo.n_slots} "
          f"slots [{audit.summary()}]")

    # Campaign phase: replay the schedule through the controller.
    duration = args.duration_ms * 1e-3
    schedule = FaultSchedule.from_spec(args.faults, topo, horizon=duration,
                                       seed=args.seed)
    controller = ClusterController(manager, tracer=sink,
                                   retry_evicted=True)
    fault_rows = []
    for event in schedule:
        outcomes = controller.apply(event, event.time)
        counts = {"recovered": 0, "degraded": 0, "evicted": 0}
        for outcome in outcomes.values():
            counts[outcome] += 1
        fault_rows.append((event.time, event.target.spec, event.action,
                           event.factor, len(outcomes),
                           counts["recovered"], counts["degraded"],
                           counts["evicted"]))
    controller.finalize(duration)
    report = controller.report()

    print(f"replayed {len(schedule)} fault events over "
          f"{args.duration_ms:g} ms")
    print(f"tenants affected: {report.affected} "
          f"(recovered={report.count('recovered')} "
          f"degraded={report.count('degraded')} "
          f"evicted={report.count('evicted')})")
    mttr = report.mean_time_to_recover
    print(f"guarantee-seconds lost: {report.guarantee_seconds_lost:.6f}  "
          f"mean time-to-recover: "
          + (f"{units.to_msec(mttr):.3f} ms" if mttr is not None
             else "n/a"))
    if args.out:
        _write_csv(f"{args.out}.faults.csv",
                   ("time", "target", "action", "factor", "affected",
                    "recovered", "degraded", "evicted"), fault_rows)
        _write_recovery_csv(f"{args.out}.recovery.csv", report)
        sink.close()
        print(f"wrote {args.out}.faults.csv / .recovery.csv / "
              f".events.jsonl")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Silo (SIGCOMM 2015) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("admit", help="admission-control one tenant")
    _add_topology_args(p)
    p.add_argument("--vms", type=int, default=8)
    p.add_argument("--bandwidth-mbps", type=float, default=250.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.set_defaults(func=cmd_admit)

    p = sub.add_parser("bounds", help="message latency bound table")
    p.add_argument("--bandwidth-mbps", type=float, default=250.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("pace", help="void-packet wire schedule")
    p.add_argument("--rate-gbps", type=float, default=2.0)
    p.add_argument("--link-gbps", type=float, default=10.0)
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write pacer stamp/void events as JSONL")
    p.set_defaults(func=cmd_pace)

    p = sub.add_parser("churn", help="flow-level cluster simulation")
    _add_topology_args(p)
    p.add_argument("--occupancy", type=float, default=0.75)
    p.add_argument("--horizon", type=float, default=60.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace-out", metavar="PREFIX", default=None,
                   help="write per-policy event JSONL, a link-utilization "
                        "CSV and an admission-audit CSV")
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject failures mid-run: 'poisson:mtbf_ms=..,"
                        "mttr_ms=..[,targets=link+server][,degrade=..]' "
                        "or a JSON scenario file ('none' disables)")
    p.set_defaults(func=cmd_churn)

    p = sub.add_parser("trace",
                       help="packet-level run with full event tracing")
    _add_topology_args(p)
    # 12 VMs on 8-slot servers forces a rack-scope placement, so the
    # traced traffic actually crosses switch ports (an 8-VM tenant fits
    # on one server and would only exercise its vswitch).
    p.add_argument("--vms", type=int, default=12)
    p.add_argument("--bandwidth-mbps", type=float, default=1000.0)
    p.add_argument("--burst-kb", type=float, default=15.0)
    p.add_argument("--delay-us", type=float, default=1000.0)
    p.add_argument("--bmax-gbps", type=float, default=1.0)
    p.add_argument("--class-a", type=int, default=2,
                   help="epoch-burst (OLDI) tenants")
    p.add_argument("--class-b", type=int, default=1,
                   help="bulk-transfer tenants")
    p.add_argument("--message-kb", type=float, default=15.0)
    p.add_argument("--epoch-us", type=float, default=2000.0)
    p.add_argument("--duration-ms", type=float, default=20.0)
    p.add_argument("--queue-interval-us", type=float, default=50.0,
                   help="queue-depth time-series bucket width")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject port failures mid-run (same spec grammar "
                        "as 'churn --faults')")
    p.add_argument("--out", metavar="PREFIX", default=None,
                   help="dump JSONL events plus latency/queue/admission "
                        "CSVs under this path prefix")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("faults",
                       help="control-plane fault campaign with recovery "
                            "report")
    _add_topology_args(p)
    p.add_argument("--policy", choices=("silo", "oktopus", "locality"),
                   default="silo")
    p.add_argument("--occupancy", type=float, default=0.75)
    p.add_argument("--faults", metavar="SPEC",
                   default="poisson:mtbf_ms=5,mttr_ms=2",
                   help="fault schedule spec (default: "
                        "'poisson:mtbf_ms=5,mttr_ms=2')")
    p.add_argument("--duration-ms", type=float, default=50.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", metavar="PREFIX", default=None,
                   help="write <prefix>.faults.csv (timeline), "
                        "<prefix>.recovery.csv (per-tenant report) and "
                        "<prefix>.events.jsonl")
    p.set_defaults(func=cmd_faults)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
