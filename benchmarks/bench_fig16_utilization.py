"""Fig. 16: network utilization vs offered load and traffic density.

(a) Average network utilization as the offered load sweeps from light to
    heavy: utilization tracks load for every policy, and Silo's full
    admission control costs at most a modest utilization discount versus
    bandwidth-only Oktopus (the paper's 9-11%).

(b) Utilization at high load as class-B traffic density sweeps
    Permutation-x: denser matrices raise reserved-policy utilization
    several-fold, and Silo's discount versus Oktopus stays modest at
    every density.

Documented deviation (see EXPERIMENTS.md): absolute utilization of the
work-conserving locality/TCP baseline exceeds the reserved policies at
this 320-server scale, whereas the paper's 32K-server runs show Silo
matching or beating it; the *trends* asserted below are the paper's.
"""

import pytest

from repro.campaign import get_sweep, run_campaign
from repro.campaign.scenarios import (FIG16_BOOSTS, FIG16_PERMUTATIONS,
                                      POLICY_MANAGERS)

from conftest import print_table, run_once

#: The grid (loads, densities, policies, horizon, seed) is the
#: registered ``fig16`` sweep; (a) and (b) are slices of its product.
POLICIES = tuple(POLICY_MANAGERS)
BOOSTS = tuple(FIG16_BOOSTS)
PERMUTATIONS = tuple(x for x in FIG16_PERMUTATIONS if x != 3.0)


def compute():
    campaign = run_campaign(get_sweep("fig16"))

    def cell(boost, permutation_x, name):
        r = campaign.get(boost=boost, permutation_x=permutation_x,
                         policy=name)
        return r["utilization"], r["occupancy"]

    sweep_a = {(boost, name): cell(boost, 3.0, name)
               for boost in BOOSTS for name in POLICIES}
    sweep_b = {(x, name): cell(4.0, x, name)
               for x in PERMUTATIONS for name in POLICIES}
    return sweep_a, sweep_b


@pytest.mark.benchmark(group="fig16")
def test_fig16_utilization(benchmark):
    sweep_a, sweep_b = run_once(benchmark, compute)

    rows = [[f"{boost:g}x"]
            + [f"{sweep_a[(boost, name)][0]:.2%}"
               for name in POLICIES]
            + [f"{sweep_a[(boost, 'silo')][1]:.0%}"]
            for boost in BOOSTS]
    print_table("Fig. 16a: network utilization vs offered load",
                ["load"] + [name for name in POLICIES]
                + ["silo occupancy"], rows)

    rows = [[f"{x:g}"]
            + [f"{sweep_b[(x, name)][0]:.2%}" for name in POLICIES]
            for x in PERMUTATIONS]
    print_table("Fig. 16b: utilization vs Permutation-x (high load)",
                ["x"] + [name for name in POLICIES], rows)

    # (a) Utilization grows with offered load for every policy.
    for name in POLICIES:
        series = [sweep_a[(boost, name)][0] for boost in BOOSTS]
        assert series[-1] > series[0]
    # Silo's utilization price versus Oktopus stays modest at high load
    # (the paper: 9-11% lower at high occupancy).
    silo_hi = sweep_a[(BOOSTS[-1], "silo")][0]
    okto_hi = sweep_a[(BOOSTS[-1], "oktopus")][0]
    assert silo_hi >= 0.7 * okto_hi
    # (b) Denser matrices raise every policy's utilization strongly
    # (Silo ~5x from Permutation-0.5 to Permutation-4)...
    for name in POLICIES:
        series = [sweep_b[(x, name)][0] for x in PERMUTATIONS]
        assert series[-1] > 3 * series[0], name
    # ...and Silo's discount versus Oktopus stays modest at every
    # density -- for sparse patterns the two are indistinguishable (the
    # paper's ~4% sparse-pattern cost is against the TCP baseline, whose
    # absolute utilization our fluid model overstates; see
    # EXPERIMENTS.md deviations).
    for x in PERMUTATIONS:
        assert sweep_b[(x, "silo")][0] >= 0.75 * sweep_b[(x,
                                                          "oktopus")][0]
