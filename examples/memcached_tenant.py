#!/usr/bin/env python
"""An OLDI-style tenant: memcached under a bandwidth-hungry neighbour.

Recreates the motivating experiment of the paper (Fig. 1 / section 6.1)
at small scale: tenant A serves memcached RPCs with Facebook-ETC-like
value sizes; tenant B runs an all-to-all shuffle.  We run the same
workload three ways --

* both tenants on plain TCP (the status quo: the tail explodes),
* tenant A alone (the baseline the tail should resemble),
* both tenants under Silo guarantees (the tail is tamed).

Run:  python examples/memcached_tenant.py
"""

import random

from repro import NetworkGuarantee, units
from repro.analysis import summarize
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import BulkApp, MemcachedApp
from repro.topology import TreeTopology
from repro.workloads import EtcWorkload
from repro.workloads.patterns import all_to_all_pairs

DURATION = 0.05  # simulated seconds
N_SERVERS = 3
VMS_PER_TENANT = 6


def build(scheme: str, with_neighbour: bool):
    topology = TreeTopology(n_pods=1, racks_per_pod=1,
                            servers_per_rack=N_SERVERS,
                            slots_per_server=4,
                            link_rate=units.gbps(10))
    net = PacketNetwork(topology, scheme=scheme)
    metrics = MetricsCollector()
    rng = random.Random(42)
    paced = scheme == "silo"

    g_a = NetworkGuarantee(bandwidth=units.mbps(420),
                           burst=3 * units.KB,
                           delay=units.msec(1),
                           peak_rate=units.gbps(1))
    for vm in range(VMS_PER_TENANT):
        net.add_vm(vm, 1, vm % N_SERVERS,
                   guarantee=g_a if paced else None, paced=paced)
    memcached = MemcachedApp(net, metrics, 1, server_vm=0,
                             client_vms=list(range(1, VMS_PER_TENANT)),
                             workload=EtcWorkload(), rng=rng)
    memcached.start()

    shuffle = None
    if with_neighbour:
        g_b = NetworkGuarantee(bandwidth=units.gbps(2.9),
                               burst=1.5 * units.KB)
        vms_b = list(range(VMS_PER_TENANT, 2 * VMS_PER_TENANT))
        for vm in vms_b:
            net.add_vm(vm, 2, vm % N_SERVERS,
                       guarantee=g_b if paced else None, paced=paced)
        shuffle = BulkApp(net, metrics, 2, all_to_all_pairs(vms_b),
                          chunk_size=units.MB)
        shuffle.start()

    net.sim.run(until=DURATION)
    return metrics, memcached, shuffle


def report(label: str, metrics: MetricsCollector, memcached, shuffle):
    lats = metrics.latencies(1)
    summary = summarize(lats)
    line = (f"{label:24s} rpcs={memcached.rpcs_completed:6d} "
            f"median={units.to_usec(summary.median):7.1f}us "
            f"p99={units.to_usec(summary.p99):8.1f}us "
            f"p99.9={units.to_usec(summary.p999):9.1f}us")
    if shuffle is not None:
        line += f" shuffle={units.to_gbps(shuffle.throughput(DURATION)):5.2f}Gbps"
    print(line)


def main() -> None:
    print(f"memcached RPC latency over {DURATION * 1000:.0f} ms simulated")
    for label, scheme, neighbour in [
        ("TCP (idle)", "tcp", False),
        ("TCP + shuffle", "tcp", True),
        ("Silo + shuffle", "silo", True),
    ]:
        metrics, memcached, shuffle = build(scheme, neighbour)
        report(label, metrics, memcached, shuffle)
    print("\nExpected shape (paper Fig. 1 / Fig. 11): the TCP tail "
          "inflates by an order of magnitude under contention; Silo "
          "pulls it back near the idle baseline while the shuffle "
          "tenant keeps its guaranteed bandwidth.")


if __name__ == "__main__":
    main()
