"""Shared discrete-event core for every simulator fidelity.

Both simulators used to own their event machinery: the packet engine
(:mod:`repro.phynet.engine`) kept a callback heap, and the fluid
simulator (:mod:`repro.flowsim.sim`) kept its own clock, sequence
counter, and fault-clock cursor inside its run loop.  This module
factors the common core -- calendar queue, deterministic tie-breaking,
fault clock, and trace-sink wiring -- so fidelity becomes a property of
the *consumer*, not of the event machinery:

* **Callback consumers** (the packet network) use the full loop:
  :meth:`EventEngine.schedule` / :meth:`EventEngine.schedule_at` /
  :meth:`EventEngine.run`, with the exact semantics of the retained
  reference ``phynet/engine.Simulator`` (events stamped exactly at
  ``until`` still fire; simultaneous events fire in scheduling order).
* **Loop consumers** (the fluid simulator) keep their own specialized
  heaps for epoch-invalidated finish predictions but draw the clock
  (:attr:`EventEngine.now`), tie-breaking sequence numbers
  (:meth:`EventEngine.next_seq`), the attached fault clock
  (:meth:`EventEngine.next_fault_time` /
  :meth:`EventEngine.pop_due_faults`), and trace emission
  (:meth:`EventEngine.emit`) from the engine.

Determinism contract: a single monotone sequence number totally orders
simultaneous events, whether they live in the engine's own queue or in
a consumer's heap fed from :meth:`next_seq`.  Sequence numbers are
never serialized -- only their relative order matters -- so consumers
may mix engine-queued and self-queued events freely without perturbing
byte-identical campaign outputs.

Fault wiring comes in the same two styles: :meth:`preschedule_faults`
registers a handler callback per fault event on the engine queue (the
packet-side pattern, used by
:class:`repro.faults.inject.NetworkFaultInjector`), while
:meth:`attach_fault_clock` exposes a cursor for loop consumers that
fold fault times into their own next-event search.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional

__all__ = ["EventEngine"]


class EventEngine:
    """Event loop with O(log n) scheduling, cancellation, and fault hooks.

    Drop-in compatible with the retained ``phynet/engine.Simulator``
    reference (same ``now`` / ``tracer`` / ``schedule`` /
    ``schedule_at`` / ``run`` / ``stop`` / ``pending_events`` surface
    and semantics), plus the extensions that let both fidelities share
    it: cancellation handles, an exported sequence counter, guarded
    trace emission, and fault-schedule wiring.
    """

    __slots__ = ("now", "tracer", "_queue", "_sequence", "_running",
                 "_fault_clock")

    def __init__(self, tracer=None) -> None:
        """``tracer`` is an optional :class:`repro.obs.TraceSink` shared
        by every component driven by this engine; ``None`` disables
        tracing at zero cost."""
        self.now = 0.0
        #: Shared :class:`repro.obs.TraceSink` for every component driven
        #: by this loop; ``None`` (the default) disables tracing.
        self.tracer = tracer
        # Heap entries are *lists* so a handle can cancel in O(1) by
        # nulling the callback slot; comparison never reaches it because
        # the sequence number is unique.
        self._queue: List[list] = []
        self._sequence = itertools.count()
        self._running = False
        self._fault_clock = None

    # -- scheduling ----------------------------------------------------------

    def next_seq(self) -> int:
        """Draw the next tie-breaking sequence number.

        Consumers keeping their own heaps (e.g. the fluid simulator's
        epoch-invalidated finish events) use this so their events share
        one total order with engine-queued events.
        """
        return next(self._sequence)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> list:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time.

        Returns an opaque handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s into the past")
        entry = [self.now + delay, next(self._sequence), callback, args]
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_at(self, when: float, callback: Callable[..., None],
                    *args: Any) -> list:
        """Run ``callback(*args)`` at absolute virtual time ``when``.

        Returns an opaque handle accepted by :meth:`cancel`.
        """
        if when < self.now:
            raise ValueError(f"cannot schedule at {when} < now {self.now}")
        entry = [when, next(self._sequence), callback, args]
        heapq.heappush(self._queue, entry)
        return entry

    def cancel(self, handle: list) -> None:
        """Cancel a scheduled event by its handle; idempotent.

        The entry stays in the heap with its callback nulled and is
        skipped (not fired) when popped, so cancellation is O(1) and the
        uncancelled path pays nothing beyond one ``is None`` test per
        dispatch.
        """
        handle[2] = None

    def run(self, until: Optional[float] = None) -> float:
        """Drain events until the queue empties or ``until`` is reached.

        Returns the virtual time at which the run stopped.  Events
        stamped exactly at ``until`` still fire, matching the reference
        engine's contract.
        """
        self._running = True
        queue = self._queue
        try:
            while queue and self._running:
                when, _seq, callback, args = queue[0]
                if until is not None and when > until:
                    break
                heapq.heappop(queue)
                if callback is None:
                    continue  # cancelled
                self.now = when
                callback(*args)
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def stop(self) -> None:
        """Abort :meth:`run` after the current event."""
        self._running = False

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled entries included)."""
        return len(self._queue)

    # -- tracing -------------------------------------------------------------

    def emit(self, event) -> None:
        """Emit a trace event through the attached sink, if any.

        The zero-overhead contract lives here once: consumers call
        ``emit`` unconditionally and pay one ``is None`` test when
        tracing is disabled.  (Hot paths that construct expensive event
        objects should still guard on :attr:`tracer` themselves.)
        """
        if self.tracer is not None:
            self.tracer.emit(event)

    # -- fault wiring ----------------------------------------------------------

    def preschedule_faults(self, schedule: Iterable,
                           handler: Callable[[Any], None]) -> None:
        """Register ``handler(event)`` on the queue for every fault event.

        The callback-consumer style: each event of a
        :class:`repro.faults.schedule.FaultSchedule` is pre-scheduled at
        its own time, exactly as
        :class:`repro.faults.inject.NetworkFaultInjector` used to do by
        hand against the packet engine.
        """
        for event in schedule:
            self.schedule_at(event.time, handler, event)

    def attach_fault_clock(self, schedule) -> None:
        """Attach a fault schedule as a cursor for loop consumers.

        Empty (or ``None``) schedules attach nothing, so the per-event
        cost of an un-faulted run stays one ``is None`` test in
        :meth:`next_fault_time`.
        """
        if schedule is None or schedule.is_empty:
            self._fault_clock = None
        else:
            self._fault_clock = schedule.clock()

    @property
    def fault_clock(self):
        """The attached :class:`repro.faults.schedule.FaultClock`, if any."""
        return self._fault_clock

    def next_fault_time(self) -> float:
        """Time of the next undelivered fault; ``inf`` when exhausted or
        when no schedule is attached."""
        clock = self._fault_clock
        if clock is None:
            return float("inf")
        return clock.next_time()

    def pop_due_faults(self, now: float) -> list:
        """Pop every fault event due at or before ``now`` (with the
        caller's slop already folded in), in schedule order."""
        clock = self._fault_clock
        if clock is None:
            return []
        return clock.pop_due(now)
