"""Toy scenarios for the campaign-runner tests.

This file is deliberately *not* a test module: the tests load it via
``SweepSpec.module_paths``, which is exactly how an example script's
scenarios become importable inside spawned worker processes.
"""

import os
import random

from repro.campaign import scenario


@scenario("toy_stats")
def toy_stats(n, scale, seed, artifact_dir=None):
    """Cheap deterministic cell: summary stats of ``n`` seeded draws."""
    rng = random.Random(seed)
    values = [scale * rng.random() for _ in range(n)]
    if artifact_dir is not None:
        with open(os.path.join(artifact_dir, "values.csv"), "w",
                  encoding="utf-8") as handle:
            for value in values:
                handle.write(f"{value}\n")
    return {"n": n, "mean": sum(values) / n, "max": max(values)}


@scenario("toy_boom")
def toy_boom(n, scale, seed):
    """Scenario that fails on one specific cell (error-path tests)."""
    if n == 13:
        raise RuntimeError("unlucky cell")
    return {"n": n}


@scenario("toy_sleeper")
def toy_sleeper(duration, seed):
    """Cell that stalls for ``duration`` wall seconds (timeout tests)."""
    import time
    time.sleep(duration)
    return {"duration": duration}
