"""Path extraction for a candidate placement.

The what-if estimator (:mod:`repro.analysis.surrogate`) predicts a
tenant's message-latency distribution by composing per-port delay models
along the switch ports its traffic traverses.  This module answers the
"which ports?" half of that question: given a :class:`Placement` and the
:class:`TreeTopology` it lives in, enumerate the directed port sequence
of every sender->receiver flow of the paper's class-A workload (all VMs
send to the tenant's first VM, matching
:class:`repro.phynet.apps.EpochBurstApp` with ``receiver_index=0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.tenant import Placement
from repro.topology.switch import Port
from repro.topology.tree import TreeTopology

__all__ = ["SenderPath", "IncastPaths", "incast_paths"]


@dataclass(frozen=True)
class SenderPath:
    """One sender VM's directed port sequence toward the receiver.

    ``ports`` is empty when the sender is co-located with the receiver
    (same server: traffic only crosses the hypervisor vswitch, which is
    not a topology port).
    """

    vm_index: int
    server: int
    ports: Tuple[Port, ...]


@dataclass(frozen=True)
class IncastPaths:
    """Every sender's path for a class-A all-to-one placement."""

    receiver_vm: int
    receiver_server: int
    senders: Tuple[SenderPath, ...]

    def port_fan_in(self) -> Dict[str, int]:
        """Map port name -> number of senders whose path crosses it.

        The fan-in at a port is what drives its incast queue build-up:
        a ``tor-down`` port carrying all ``N-1`` senders of an epoch
        burst queues roughly ``N-1`` messages back-to-back.
        """
        counts: Dict[str, int] = {}
        for sender in self.senders:
            for port in sender.ports:
                counts[port.name] = counts.get(port.name, 0) + 1
        return counts

    def max_hops(self) -> int:
        """The longest sender path length, in ports."""
        return max((len(s.ports) for s in self.senders), default=0)


def incast_paths(topology: TreeTopology, placement: Placement,
                 receiver_index: int = 0) -> IncastPaths:
    """Enumerate sender paths for an all-to-one (class-A) placement.

    Args:
        topology: the tree the placement's server ids index into.
        placement: an admitted (or merely proposed) placement;
            ``vm_servers`` need not have been accepted by a manager.
        receiver_index: which VM receives -- defaults to the first,
            matching the packet simulator's ``EpochBurstApp``.

    Returns:
        One :class:`SenderPath` per non-receiver VM, in VM order.
    """
    if not 0 <= receiver_index < len(placement.vm_servers):
        raise ValueError(
            f"receiver_index {receiver_index} out of range for "
            f"{len(placement.vm_servers)} VMs")
    receiver_server = placement.vm_servers[receiver_index]
    senders: List[SenderPath] = []
    for vm_index, server in enumerate(placement.vm_servers):
        if vm_index == receiver_index:
            continue
        ports = topology.path_ports(server, receiver_server)
        senders.append(SenderPath(vm_index=vm_index, server=server,
                                  ports=tuple(ports)))
    return IncastPaths(receiver_vm=receiver_index,
                       receiver_server=receiver_server,
                       senders=tuple(senders))
