"""Guarantees and the tenant-visible message latency bound (section 4.1)."""

import math

import pytest

from repro import units
from repro.core.guarantees import (
    CLASS_A_GUARANTEE,
    CLASS_B_GUARANTEE,
    NetworkGuarantee,
    message_latency_bound,
    required_bandwidth,
    transmission_latency,
)


class TestNetworkGuarantee:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkGuarantee(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkGuarantee(bandwidth=1.0, burst=-1.0)
        with pytest.raises(ValueError):
            NetworkGuarantee(bandwidth=1.0, delay=0.0)
        with pytest.raises(ValueError):
            NetworkGuarantee(bandwidth=10.0, peak_rate=5.0)

    def test_peak_defaults_to_bandwidth(self):
        g = NetworkGuarantee(bandwidth=10.0)
        assert g.effective_peak_rate == 10.0

    def test_wants_delay(self):
        assert CLASS_A_GUARANTEE.wants_delay
        assert not CLASS_B_GUARANTEE.wants_delay

    def test_class_b_has_no_latency_bound(self):
        with pytest.raises(ValueError):
            CLASS_B_GUARANTEE.message_latency_bound(1000.0)


class TestMessageLatencyBound:
    def test_small_message_rides_the_burst(self):
        """M <= S: latency = M/Bmax + d."""
        latency = message_latency_bound(
            message_size=10 * units.KB, bandwidth=units.gbps(1),
            burst=15 * units.KB, delay=units.msec(1),
            peak_rate=units.gbps(10))
        expected = 10 * units.KB / units.gbps(10) + units.msec(1)
        assert latency == pytest.approx(expected)

    def test_large_message_spills_past_the_burst(self):
        """M > S: latency = S/Bmax + (M-S)/B + d."""
        M, S = 100 * units.KB, 15 * units.KB
        latency = message_latency_bound(
            message_size=M, bandwidth=units.gbps(1), burst=S,
            delay=units.msec(1), peak_rate=units.gbps(10))
        expected = (S / units.gbps(10)
                    + (M - S) / units.gbps(1) + units.msec(1))
        assert latency == pytest.approx(expected)

    def test_paper_testbed_guarantee(self):
        """Section 6.1: the memcached tenant's guarantee works out to
        about 2.01 ms for its ~1 KB responses at Bmax = 1 Gbps... the
        paper quotes 2.01 ms for the full message exchange; here we check
        the formula's components are consistent."""
        g = NetworkGuarantee(bandwidth=units.mbps(210),
                             burst=1.5 * units.KB, delay=units.msec(1),
                             peak_rate=units.gbps(1))
        bound = g.message_latency_bound(1.5 * units.KB)
        assert bound == pytest.approx(
            1.5 * units.KB / units.gbps(1) + units.msec(1))

    def test_no_peak_rate_means_bandwidth(self):
        latency = message_latency_bound(1000.0, bandwidth=100.0,
                                        burst=0.0, delay=0.0)
        assert latency == pytest.approx(10.0)

    def test_monotone_in_message_size(self):
        sizes = [1e3, 1e4, 1e5, 1e6]
        bounds = [message_latency_bound(s, units.gbps(1), 15 * units.KB,
                                        units.msec(1), units.gbps(10))
                  for s in sizes]
        assert bounds == sorted(bounds)

    def test_validation(self):
        with pytest.raises(ValueError):
            message_latency_bound(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            message_latency_bound(1.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            message_latency_bound(1.0, 10.0, 1.0, 1.0, peak_rate=5.0)


class TestHelpers:
    def test_transmission_latency(self):
        assert transmission_latency(1000.0, 100.0) == pytest.approx(10.0)

    def test_required_bandwidth_inverts_eq1(self):
        b = required_bandwidth(1000.0, deadline=2.0, delay=1.0)
        assert b == pytest.approx(1000.0)

    def test_required_bandwidth_infeasible_deadline(self):
        assert required_bandwidth(1000.0, deadline=1.0,
                                  delay=2.0) == math.inf

    def test_web_search_example(self):
        """The paper's intro example: a task with a 20 ms budget that
        knows messages take at most 4 ms can compute for 16 ms."""
        g = NetworkGuarantee(bandwidth=units.mbps(100),
                             burst=20 * units.KB, delay=units.msec(1),
                             peak_rate=units.gbps(1))
        bound = g.message_latency_bound(20 * units.KB)
        assert bound < units.msec(4)
        compute_budget = units.msec(20) - bound
        assert compute_budget > units.msec(16)
