"""Distributions, the ETC workload and traffic patterns."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.workloads import (
    EtcWorkload,
    Exponential,
    Fixed,
    GeneralizedPareto,
    Uniform,
    all_to_all_pairs,
    all_to_one_pairs,
    permutation_pairs,
)


class TestDistributions:
    def test_fixed(self):
        assert Fixed(5.0).sample(random.Random(0)) == 5.0
        assert Fixed(5.0).mean == 5.0

    def test_uniform_bounds(self):
        dist = Uniform(2.0, 4.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 2.0 <= dist.sample(rng) <= 4.0
        assert dist.mean == 3.0

    def test_exponential_mean(self):
        dist = Exponential(mean=2.0)
        rng = random.Random(2)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)

    def test_gpd_mean_formula(self):
        dist = GeneralizedPareto(theta=0.0, sigma=100.0, k=0.2)
        assert dist.mean == pytest.approx(125.0)

    def test_gpd_sampling_matches_mean(self):
        dist = GeneralizedPareto(theta=0.0, sigma=100.0, k=0.1)
        rng = random.Random(3)
        samples = [dist.sample(rng) for _ in range(50000)]
        assert sum(samples) / len(samples) == pytest.approx(dist.mean,
                                                            rel=0.1)

    def test_gpd_cap(self):
        dist = GeneralizedPareto(theta=0.0, sigma=100.0, k=0.3, cap=500.0)
        rng = random.Random(4)
        assert all(dist.sample(rng) <= 500.0 for _ in range(1000))

    def test_gpd_k_zero_is_exponential(self):
        dist = GeneralizedPareto(theta=0.0, sigma=50.0, k=0.0)
        rng = random.Random(5)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(50.0, rel=0.1)

    def test_gpd_heavy_tail_diverges(self):
        dist = GeneralizedPareto(theta=0.0, sigma=1.0, k=1.5)
        assert dist.mean == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Uniform(4.0, 2.0)
        with pytest.raises(ValueError):
            GeneralizedPareto(0.0, 0.0, 0.1)


class TestEtcWorkload:
    def test_value_sizes_in_paper_range(self):
        """The paper: ~300 B average value, 1 KB maximum."""
        wl = EtcWorkload()
        rng = random.Random(6)
        values = [wl.sample_value(rng) for _ in range(20000)]
        assert max(values) <= 1.0 * units.KB
        assert 150 <= sum(values) / len(values) <= 450

    def test_gaps_positive_with_requested_mean(self):
        wl = EtcWorkload(mean_interarrival=100 * units.MICROS)
        rng = random.Random(7)
        gaps = [wl.sample_gap(rng) for _ in range(20000)]
        assert all(g > 0 for g in gaps)
        assert sum(gaps) / len(gaps) == pytest.approx(100 * units.MICROS,
                                                      rel=0.15)

    def test_gaps_burstier_than_poisson(self):
        """Generalized-Pareto gaps have CoV > 1 (the trace's burstiness)."""
        wl = EtcWorkload()
        rng = random.Random(8)
        gaps = [wl.sample_gap(rng) for _ in range(50000)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert math.sqrt(var) / mean > 1.0


class TestPatterns:
    def test_all_to_one(self):
        pairs = all_to_one_pairs([10, 11, 12, 13])
        assert pairs == [(11, 10), (12, 10), (13, 10)]

    def test_all_to_one_alternate_receiver(self):
        pairs = all_to_one_pairs([10, 11, 12], receiver_index=2)
        assert pairs == [(10, 12), (11, 12)]

    def test_all_to_all(self):
        pairs = all_to_all_pairs([1, 2, 3])
        assert len(pairs) == 6
        assert (1, 2) in pairs and (2, 1) in pairs
        assert all(a != b for a, b in pairs)

    def test_permutation_integer_x(self):
        rng = random.Random(9)
        pairs = permutation_pairs(list(range(10)), 2, rng)
        from collections import Counter
        out = Counter(src for src, _ in pairs)
        assert all(count == 2 for count in out.values())
        assert all(a != b for a, b in pairs)

    def test_permutation_n_is_all_to_all_density(self):
        rng = random.Random(10)
        vms = list(range(6))
        pairs = permutation_pairs(vms, len(vms), rng)
        assert len(pairs) == 6 * 5

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=12),
           st.floats(min_value=0.0, max_value=4.0),
           st.integers(min_value=0, max_value=2 ** 20))
    def test_permutation_fractional_expectation(self, n, x, seed):
        rng = random.Random(seed)
        pairs = permutation_pairs(list(range(n)), x, rng)
        assert all(a != b for a, b in pairs)
        # No source exceeds ceil(x) or n-1 destinations.
        from collections import Counter
        out = Counter(src for src, _ in pairs)
        cap = min(math.ceil(x), n - 1)
        assert all(count <= cap for count in out.values())
