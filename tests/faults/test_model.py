"""Fault targets, events, and health-state composition."""

import pytest

from repro import units
from repro.faults import (
    ACTION_DOWN,
    FaultEvent,
    FaultTarget,
    HealthState,
)
from repro.topology import TreeTopology


def build_topology():
    return TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


class TestFaultTarget:
    def test_spec_roundtrip(self):
        for target in (FaultTarget("link", 12), FaultTarget("server", 3),
                       FaultTarget("switch", 1, level="agg"),
                       FaultTarget("switch", 0, level="core")):
            assert FaultTarget.parse(target.spec) == target

    @pytest.mark.parametrize("bad", ["disk:0", "link", "switch:1",
                                     "switch:spine:0", "link:x"])
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            FaultTarget.parse(bad)

    def test_link_owns_exactly_its_port(self):
        topo = build_topology()
        assert FaultTarget("link", 7).ports(topo) == [7]

    def test_server_owns_both_directions_but_no_vms_on_links(self):
        topo = build_topology()
        server = FaultTarget("server", 2)
        assert set(server.ports(topo)) == {topo.nic_up(2).port_id,
                                           topo.tor_down(2).port_id}
        assert server.servers(topo) == [2]
        assert FaultTarget("link", 0).servers(topo) == []

    def test_tor_switch_owns_uplink_and_all_server_downlinks(self):
        topo = build_topology()
        ports = set(FaultTarget("switch", 0, level="tor").ports(topo))
        expected = {topo.tor_up(0).port_id}
        expected.update(topo.tor_down(s).port_id
                        for s in topo.servers_in_rack(0))
        assert ports == expected

    def test_core_switch_takes_every_pod_downlink(self):
        topo = build_topology()
        ports = set(FaultTarget("switch", 0, level="core").ports(topo))
        assert ports == {topo.core_down(p).port_id
                         for p in range(topo.n_pods)}


class TestFaultEvent:
    def test_factor_must_match_action(self):
        target = FaultTarget("link", 0)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, target=target, action=ACTION_DOWN,
                       factor=0.5)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, target=target, action="flap")
        with pytest.raises(ValueError):
            FaultEvent.degrade(0.0, target, factor=1.0)

    def test_constructors_pin_factors(self):
        target = FaultTarget("link", 0)
        assert FaultEvent.down(1.0, target).factor == 0.0
        assert FaultEvent.up(2.0, target).factor == 1.0
        assert FaultEvent.degrade(3.0, target, 0.25).factor == 0.25


class TestHealthState:
    def test_apply_reports_only_changed_ports(self):
        topo = build_topology()
        health = HealthState(topo)
        changed = health.apply(FaultEvent.down(0.0, FaultTarget("link", 5)))
        assert changed == {5: 0.0}
        # Re-downing the same link changes nothing.
        assert health.apply(
            FaultEvent.down(1.0, FaultTarget("link", 5))) == {}

    def test_overlapping_faults_compose_by_min(self):
        topo = build_topology()
        health = HealthState(topo)
        tor = FaultTarget("switch", 0, level="tor")
        link = FaultTarget("link", topo.tor_up(0).port_id)
        health.apply(FaultEvent.degrade(0.0, link, 0.5))
        health.apply(FaultEvent.down(1.0, tor))
        assert health.is_down(link.index)
        # Repairing the switch leaves the link's own degradation.
        changed = health.apply(FaultEvent.up(2.0, tor))
        assert changed[link.index] == 0.5
        assert health.factor(link.index) == 0.5
        # Repairing the link restores full health exactly.
        health.apply(FaultEvent.up(3.0, link))
        assert health.factor(link.index) == 1.0
        assert not health.port_factor

    def test_server_crash_and_repair_track_down_servers(self):
        topo = build_topology()
        health = HealthState(topo)
        health.apply(FaultEvent.down(0.0, FaultTarget("server", 4)))
        assert health.down_servers == {4}
        assert topo.nic_up(4).port_id in health.down_ports
        health.apply(FaultEvent.up(1.0, FaultTarget("server", 4)))
        assert health.down_servers == set()
        assert health.down_ports == set()

    def test_degraded_server_keeps_its_vms(self):
        topo = build_topology()
        health = HealthState(topo)
        health.apply(FaultEvent.degrade(0.0, FaultTarget("server", 1), 0.3))
        assert health.down_servers == set()
        assert health.factor(topo.nic_up(1).port_id) == 0.3
