"""Reproduction of "Silo: Predictable Message Latency in the Cloud".

Silo (SIGCOMM 2015) gives cloud tenants three coupled network guarantees --
bandwidth, packet delay and burst allowance -- by combining a network-calculus
driven VM placement manager with fine-grained hypervisor packet pacing.

This package re-implements the full system in Python:

``repro.netcalc``
    Network-calculus machinery: arrival/service curves, queue bounds,
    hose-model aggregation and burst propagation (paper section 4.2.2).
``repro.topology``
    Multi-rooted tree datacenter topologies with buffered switch ports.
``repro.placement``
    Silo's admission control and VM placement algorithm plus the Oktopus
    (bandwidth-only) and locality-aware baselines (section 4.2.3).
``repro.pacer``
    The hypervisor pacer: hierarchical token buckets, void-packet pacing and
    paced IO batching (sections 4.3 and 5).
``repro.phynet``
    A packet-level discrete-event simulator with TCP/DCTCP/HULL transports
    used to reproduce the ns2 experiments (section 6.2).
``repro.flowsim``
    A flow-level cluster simulator used to reproduce the datacenter-scale
    placement and utilization experiments (section 6.3).
``repro.workloads``
    Workload generators: Poisson messages, memcached-ETC, traffic patterns.
``repro.analysis``
    Percentiles, CDFs, outlier classification and report helpers.
``repro.core``
    The tenant-facing API: guarantees, requests, latency estimates, and the
    :class:`~repro.core.silo.SiloController` facade tying it all together.
"""

from repro.core.guarantees import NetworkGuarantee, message_latency_bound
from repro.core.tenant import TenantClass, TenantRequest
from repro.core.silo import SiloController

__version__ = "1.0.0"

__all__ = [
    "NetworkGuarantee",
    "message_latency_bound",
    "TenantClass",
    "TenantRequest",
    "SiloController",
    "__version__",
]
