"""Timer-based software pacing: the baseline void packets replace.

Before SENIC-style hardware and Silo's void packets, software pacers
released packets off an OS timer: each packet leaves at the first timer
tick at or after its ideal stamp, and packets that share a tick leave
back-to-back at line rate.  The result is (a) pacing error up to one
timer period and (b) line-rate micro-bursts the first-hop switch has to
absorb -- exactly the failure modes section 4.3.1 motivates against.

This module exists for the comparison's sake (see
``benchmarks/bench_ablation_pacing_mechanisms.py``); production code
paths use :mod:`repro.pacer.void_packets`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro import units
from repro.pacer.void_packets import FRAME_OVERHEAD

#: Slop subtracted before ``ceil`` so a stamp sitting a float-rounding
#: hair above an exact tick multiple does not get pushed a full tick
#: late.  Dimensionless (applied to the stamp/resolution ratio).
_CEIL_EPS = 1e-12


@dataclass(frozen=True)
class TimerRelease:
    """One packet's release under timer pacing."""

    start_time: float
    stamp: float
    wire_bytes: float

    @property
    def pacing_error(self) -> float:
        """How late the timer released the packet past its stamp."""
        return self.start_time - self.stamp


class TimerPacer:
    """Quantize departures to a periodic timer.

    ``resolution`` is the timer period; 50 us is typical for a
    general-purpose OS timer wheel, ~5 us for a busy-polled hrtimer.
    """

    def __init__(self, link_rate: float, resolution: float):
        if link_rate <= 0:
            raise ValueError("link rate must be positive")
        if resolution <= 0:
            raise ValueError("timer resolution must be positive")
        self.link_rate = link_rate
        self.resolution = resolution

    def schedule(self, packets: Sequence[Tuple[float, float]]
                 ) -> List[TimerRelease]:
        """Release each stamped ``(departure, size)`` packet on a tick.

        Packets whose ticks have passed (because earlier packets are
        still serializing) go out back-to-back at line rate.
        """
        releases: List[TimerRelease] = []
        wire_time = 0.0
        for stamp, size in packets:
            if stamp < 0:
                raise ValueError("stamps must be >= 0")
            tick = math.ceil(stamp / self.resolution - _CEIL_EPS) \
                * self.resolution
            start = max(tick, wire_time)
            wire_bytes = size + FRAME_OVERHEAD
            releases.append(TimerRelease(start_time=start, stamp=stamp,
                                         wire_bytes=wire_bytes))
            wire_time = start + wire_bytes / self.link_rate
        return releases

    def worst_error(self, packets: Sequence[Tuple[float, float]]) -> float:
        """Largest absolute pacing error over a stamped stream."""
        releases = self.schedule(packets)
        return max((abs(r.pacing_error) for r in releases), default=0.0)

    def burst_run_length(self,
                         packets: Sequence[Tuple[float, float]]) -> int:
        """Longest back-to-back (line-rate) run the schedule emits."""
        releases = self.schedule(packets)
        longest = current = 1 if releases else 0
        for a, b in zip(releases, releases[1:]):
            gap = b.start_time - (a.start_time
                                  + a.wire_bytes / self.link_rate)
            # Two releases count as back-to-back when the gap between
            # them is below the wire's resolution (half a byte-time) --
            # an absolute epsilon here would misclassify at high rates.
            if gap <= 0.5 / self.link_rate:
                current += 1
                longest = max(longest, current)
            else:
                current = 1
        return longest
