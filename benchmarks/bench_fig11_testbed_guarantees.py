"""Table 2 + Fig. 11: the testbed experiment under Silo req1-req3.

Two 15-VM tenants on five servers (six VMs each): tenant A serves
memcached, tenant B shuffles with netperf.  Requirement rows follow
Table 2 -- tenant A's bandwidth guarantee sweeps {1.0, 1.5, 2.0} x its
average requirement (210 Mbps), tenant B gets the remaining capacity so
that three VMs of each tenant per server sum to the 10 Gbps NIC.

Expected shape (Fig. 11): plain TCP inflates tenant A's tail latency by
orders of magnitude; every Silo requirement keeps the 99th percentile
within the ~2 ms message-latency guarantee; bigger reservations for
tenant A trim its 99.9th percentile further while tenant B still gets
>= 90% of the throughput TCP alone would give it.
"""

import random

import pytest

from repro import units
from repro.analysis import summarize
from repro.core.guarantees import NetworkGuarantee, message_latency_bound
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import BulkApp, MemcachedApp
from repro.topology import TreeTopology
from repro.workloads import EtcWorkload, Fixed
from repro.workloads.patterns import all_to_all_pairs

from conftest import print_table, run_once

DURATION = 0.05
N_SERVERS = 5
VMS_EACH = 15
AVG_BANDWIDTH = units.mbps(210)
SERVICE_TIME = Fixed(80 * units.MICROS)
#: Per-client request gap scaled so the server's aggregate response
#: traffic averages ~80% of the tenant's measured bandwidth requirement
#: (as in the paper, where 210 Mbps IS the measured average of this
#: workload): 14 clients x ~4 krps x ~330 B values ~ 21 MB/s.
ETC = EtcWorkload(mean_interarrival=250 * units.MICROS)

#: Table 2's rows: (label, tenant A bandwidth, tenant B bandwidth).
REQUIREMENTS = [
    ("req1", units.mbps(210), units.mbps(3123)),
    ("req2", units.mbps(315), units.mbps(3018)),
    ("req3", units.mbps(420), units.mbps(2913)),
]


def run_scenario(scheme: str, bw_a=None, bw_b=None, with_b=True):
    topo = TreeTopology(n_pods=1, racks_per_pod=1,
                        servers_per_rack=N_SERVERS, slots_per_server=6,
                        link_rate=units.gbps(10))
    net = PacketNetwork(topo, scheme=scheme)
    metrics = MetricsCollector()
    rng = random.Random(23)
    paced = scheme == "silo"

    g_a = None
    if paced:
        g_a = NetworkGuarantee(bandwidth=bw_a, burst=1.5 * units.KB,
                               delay=units.msec(1),
                               peak_rate=units.gbps(1))
    for vm in range(VMS_EACH):
        net.add_vm(vm, 1, vm % N_SERVERS, guarantee=g_a, paced=paced)
    memcached = MemcachedApp(net, metrics, 1, server_vm=0,
                             client_vms=list(range(1, VMS_EACH)),
                             workload=ETC, rng=rng,
                             service_time=SERVICE_TIME)
    memcached.start()

    netperf = None
    if with_b:
        g_b = None
        if paced:
            g_b = NetworkGuarantee(bandwidth=bw_b, burst=1.5 * units.KB)
        vms_b = list(range(VMS_EACH, 2 * VMS_EACH))
        for vm in vms_b:
            net.add_vm(vm, 2, vm % N_SERVERS, guarantee=g_b, paced=paced)
        netperf = BulkApp(net, metrics, 2, all_to_all_pairs(vms_b),
                          chunk_size=units.MB)
        netperf.start()
    net.sim.run(until=DURATION)
    summary = summarize(metrics.latencies(1))
    throughput = netperf.throughput(DURATION) if netperf else 0.0
    return summary, throughput, memcached.rpcs_completed


def compute():
    results = {}
    results["tcp-idle"] = run_scenario("tcp", with_b=False)
    results["tcp"] = run_scenario("tcp")
    for label, bw_a, bw_b in REQUIREMENTS:
        results[f"silo-{label}"] = run_scenario("silo", bw_a, bw_b)
    return results


@pytest.mark.benchmark(group="fig11")
def test_fig11_testbed_guarantees(benchmark):
    results = run_once(benchmark, compute)
    # The message-latency guarantee of section 6.1 (~2 ms): one maximum
    # 1 KB value at Bmax after the 1 ms delay allowance, doubled for the
    # request leg.
    guarantee = 2 * message_latency_bound(
        1 * units.KB, AVG_BANDWIDTH, 1.5 * units.KB, units.msec(1),
        units.gbps(1))

    rows = []
    for label, (summary, throughput, rpcs) in results.items():
        rows.append([
            label, f"{rpcs}",
            f"{units.to_usec(summary.median):.0f}",
            f"{units.to_usec(summary.p99):.0f}",
            f"{units.to_usec(summary.p999):.0f}",
            f"{units.to_gbps(throughput):.2f}" if throughput else "-",
        ])
    print_table(
        f"Fig. 11: memcached latency (us) and netperf throughput; "
        f"message-latency guarantee ~{units.to_msec(guarantee):.2f} ms",
        ["scenario", "rpcs", "median", "p99", "p99.9", "B Gbps"], rows)

    idle = results["tcp-idle"][0]
    tcp = results["tcp"][0]
    # TCP under contention suffers at the tail (Fig. 11b).
    assert tcp.p999 >= 10 * idle.p999
    for label, _, bw_b in REQUIREMENTS:
        summary, throughput, _ = results[f"silo-{label}"]
        # Silo keeps the p99 within the guarantee (Fig. 11a/b)...
        assert summary.p99 <= guarantee
        # ...while tenant B achieves >= 85% of its aggregate hose
        # reservation (Fig. 11c: "92% to 99% of bandwidth achieved by
        # TCP alone").
        assert throughput >= 0.85 * VMS_EACH * bw_b
    # Bigger reservations for tenant A monotonically trim its tail.
    tails = [results[f"silo-{label}"][0].p999
             for label, _, _ in REQUIREMENTS]
    assert tails[-1] <= tails[0] * 1.2
