"""Queue bounds from arrival and service curves (paper Fig. 6b).

Given a concave arrival curve ``A`` and a rate-latency service curve
``beta``, classic network-calculus results bound a FIFO queue:

* the maximum *delay* is the largest horizontal distance between the curves
  (``q`` in the paper's figure) -- this is the port's **queue bound**;
* the maximum *backlog* is the largest vertical distance -- compared against
  the port's buffer to rule out loss;
* the queue must have emptied at least once in any interval of length ``p``,
  the last time at which ``A`` still exceeds ``beta`` -- Silo uses ``p``
  (bounded by the queue capacity) to propagate egress burstiness.

For piecewise-linear concave ``A`` and convex ``beta`` all three extrema lie
at breakpoints, so every bound below is exact and O(#pieces).
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.netcalc.curves import Curve
from repro.netcalc.service import RateLatencyService

_INF = math.inf

#: Relative stability slack.  Rates here are bytes/second (~1.25e9 for a
#: 10 Gbps port), where an *absolute* 1e-9 is below one ulp -- i.e. an
#: exact-equality test in disguise.  A relative tolerance absorbs float
#: drift from summing tenant rates at any link speed.
_REL_TOL = 1e-9


def queue_is_stable(arrival: Curve, service: RateLatencyService) -> bool:
    """True when the long-run arrival rate does not exceed the service rate.

    An unstable queue has unbounded delay and backlog; Silo's admission
    control must never create one.
    """
    return arrival.sustained_rate <= service.rate * (1.0 + _REL_TOL)


def _candidate_times(arrival: Curve,
                     service: RateLatencyService) -> List[float]:
    times = [0.0, service.latency]
    times.extend(t for t in arrival.breakpoints if t > 0.0)
    return times


def delay_bound(arrival: Curve, service: RateLatencyService) -> float:
    """Maximum queuing delay (seconds): the horizontal deviation.

    Returns ``math.inf`` for an unstable queue.  For a stable queue the
    deviation ``sup_t [T + A(t)/R - t]`` is concave piecewise-linear in
    ``t`` and therefore attained at a breakpoint of ``A``.
    """
    if not queue_is_stable(arrival, service):
        return _INF
    best = 0.0
    for t in _candidate_times(arrival, service):
        dev = service.latency + arrival(t) / service.rate - t
        if dev > best:
            best = dev
    return best


def backlog_bound(arrival: Curve, service: RateLatencyService) -> float:
    """Maximum queued bytes: the vertical deviation ``sup_t A(t) - beta(t)``.

    Returns ``math.inf`` for an unstable queue.
    """
    if not queue_is_stable(arrival, service):
        return _INF
    best = 0.0
    for t in _candidate_times(arrival, service):
        dev = arrival(t) - service(t)
        if dev > best:
            best = dev
    return best


def empty_interval(arrival: Curve, service: RateLatencyService) -> float:
    """The ``p`` value: by time ``p`` the queue must have emptied once.

    ``p = sup { t : A(t) > beta(t) }``.  Kurose's analysis shows the burst a
    port can add to egress traffic is bounded by what arrives within ``p``;
    Silo substitutes the static queue *capacity* ``c >= p`` to decouple the
    bound from competing tenants.  Returns ``math.inf`` when the sustained
    arrival rate equals or exceeds the service rate with backlog remaining.
    """
    if arrival.sustained_rate > service.rate * (1.0 + _REL_TOL):
        return _INF
    # Walk the difference A - beta segment by segment; it starts >= 0 at t=0
    # (burst vs. zero service) and is eventually decreasing.  Find the last
    # zero crossing.
    times = sorted(set(_candidate_times(arrival, service)))
    # Add a far point on the final segment so the crossing is bracketed.
    last_piece = arrival.pieces[-1]
    rate_gap = service.rate - last_piece.rate
    if rate_gap <= service.rate * _REL_TOL:
        # Arrival keeps pace with service forever.
        return _INF if arrival(times[-1]) > service(times[-1]) else times[-1]
    far = times[-1] + (arrival(times[-1]) + 1.0) / rate_gap
    times.append(far)

    crossing = 0.0
    for lo, hi in zip(times, times[1:]):
        gap_lo = arrival(lo) - service(lo)
        gap_hi = arrival(hi) - service(hi)
        if gap_lo > 0 and gap_hi <= 0:
            # Linear interpolation is exact within one segment.
            span = gap_lo - gap_hi
            crossing = hi if span <= 0 else lo + (hi - lo) * gap_lo / span
        elif gap_hi > 0:
            crossing = hi
    return crossing


def total_delay_bound(arrivals: Iterable[Curve],
                      service: RateLatencyService) -> float:
    """Delay bound for the aggregate of several independent sources."""
    total = None
    for curve in arrivals:
        total = curve if total is None else total + curve
    if total is None:
        return 0.0
    return delay_bound(total, service)
