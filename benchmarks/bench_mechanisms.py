"""Mechanism-overhead benchmark: what each SLO mechanism costs and buys.

Runs the registered ``mechanism_compare`` scenario cell (the fig12-shape
contended workload: class-A incast epochs over class-B bulk) once per
mechanism -- ``none`` (no isolation), ``silo``, ``swp`` and ``eyeq`` --
and reports, per mechanism:

* simulator wall-clock and its overhead relative to the ``none``
  baseline (the price of the mechanism's extra machinery: pacer events,
  duplicate packets, control-loop ticks);
* the class-A latency tail (p50/p99/p99.9) against the tenant's
  contractual bound, plus late-message counts;
* the mechanism's own cost counters (speculative bytes for SWP, rate
  feedback messages for EyeQ).

The full run asserts the paper's headline ordering -- Silo's p99 at or
below EyeQ's p99 (reactive control cannot beat admission-time pacing at
the tail) and Silo alone meeting the contractual bound -- and writes
the committed ``BENCH_mechanisms.json`` baseline.

Run::

    PYTHONPATH=src python benchmarks/bench_mechanisms.py          # full
    PYTHONPATH=src python benchmarks/bench_mechanisms.py --quick

Quick mode shortens the simulated duration and never overwrites the
committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.campaign.scenarios import CAMPAIGN_DURATION, mechanism_compare_cell

#: Benchmark order: the no-isolation baseline first so every later
#: mechanism's wall-clock overhead is measured against it.
MECHANISMS = ("none", "silo", "swp", "eyeq")

#: The contended workload shape (class-A incast over class-B bulk) --
#: the cell where mechanisms actually differ at the tail.
WORKLOAD = "fig12"


def run_cell(mechanism: str, duration: float, seed: int) -> dict:
    """One timed scenario cell; returns the result plus wall-clock."""
    t0 = time.perf_counter()
    result = mechanism_compare_cell(mechanism=mechanism,
                                    workload=WORKLOAD,
                                    duration=duration, seed=seed)
    result["wall_s"] = round(time.perf_counter() - t0, 4)
    return result


def bench(duration: float, seed: int) -> dict:
    results = {m: run_cell(m, duration, seed) for m in MECHANISMS}
    base_wall = results["none"]["wall_s"]
    for mechanism, cell in results.items():
        cell["overhead_vs_none"] = (round(cell["wall_s"] / base_wall, 3)
                                    if base_wall > 0 else None)
    return {
        "workload": WORKLOAD,
        "duration": duration,
        "seed": seed,
        "bound_us": results["silo"]["bound_us"],
        "mechanisms": results,
    }


def check(report: dict) -> None:
    """The orderings the paper predicts, as hard assertions."""
    cells = report["mechanisms"]
    for mechanism, cell in cells.items():
        assert cell["messages"] > 0, (mechanism, cell)
    # Silo keeps its admission-time promise on the contended workload.
    assert cells["silo"]["guarantee_met"], cells["silo"]
    # Reactive control cannot beat admission-time pacing at the tail:
    # EyeQ's p99 is a floor for nothing, Silo's p99 must sit at or
    # below it.
    silo_p99 = cells["silo"]["latency_us"]["p99"]
    eyeq_p99 = cells["eyeq"]["latency_us"]["p99"]
    assert silo_p99 <= eyeq_p99, (silo_p99, eyeq_p99)
    # The mechanisms actually ran their machinery.
    assert cells["swp"]["counters"]["spec_packets_sent"] > 0
    assert cells["eyeq"]["counters"]["feedback_messages"] > 0


def report_rows(report: dict) -> None:
    print(f"workload {report['workload']}  duration "
          f"{report['duration'] * 1e3:.0f} ms  class-A bound "
          f"{report['bound_us']:.0f} us")
    for mechanism, cell in report["mechanisms"].items():
        tail = cell["latency_us"]
        verdict = "met" if cell["guarantee_met"] else "violated"
        print(f"{mechanism:6s} wall {cell['wall_s']:>7.2f}s "
              f"({cell['overhead_vs_none']:>5.2f}x none)  "
              f"p50 {tail['p50']:>8.1f}  p99 {tail['p99']:>9.1f}  "
              f"late {cell['late']:>4d}/{cell['messages']:<4d} "
              f"{verdict}")


def main(argv=None) -> None:
    """CLI entry point: full run writes the committed baseline."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short simulated duration; never "
                             "overwrites the committed baseline")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON report path (default: the committed "
                             "BENCH_mechanisms.json for a full run)")
    args = parser.parse_args(argv)
    duration = 0.02 if args.quick else CAMPAIGN_DURATION
    report = bench(duration, args.seed)
    check(report)
    report_rows(report)
    out = args.out
    if out is None and not args.quick:
        out = _REPO / "BENCH_mechanisms.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=True)
                       + "\n")
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
