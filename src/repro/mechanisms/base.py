"""The ``Mechanism`` interface and registry.

A *mechanism* is everything an SLO scheme does on the data path once
VMs are placed: how the :class:`~repro.phynet.network.PacketNetwork` is
configured (queue discipline, ECN), how each VM's hypervisor egress is
paced, which transport its flows run, and what control machinery runs
alongside the simulation.  Scenario construction consumes exactly this
interface, so every packet-level experiment gains a ``mechanism`` axis
for free: build the network through the mechanism, add VMs through the
mechanism, pass its transport class to the applications, call
:meth:`Mechanism.start` before ``sim.run`` and :meth:`Mechanism.counters`
after.

Registered implementations (see :mod:`repro.mechanisms`):

========  ==========================================================
``silo``  the paper's stack: network-calculus pacing + priorities
``swp``   speculative duplicates racing paced originals
``eyeq``  distributed RTT-scale hose congestion control
``none``  plain TCP, no pacing -- the overhead/latency baseline
========  ==========================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional, Type

from repro.core.guarantees import NetworkGuarantee
from repro.pacer.hierarchy import PacerConfig
from repro.phynet.network import PacketNetwork, VirtualMachine
from repro.phynet.transport.base import Transport
from repro.topology.tree import TreeTopology

__all__ = ["Mechanism", "MECHANISMS", "register_mechanism",
           "get_mechanism", "mechanism_names"]


class Mechanism(ABC):
    """One end-to-end SLO mechanism: pacing, transport, queueing, control.

    Instances are cheap, stateless-until-:meth:`start` configuration
    objects; create a fresh one per simulation run.
    """

    #: Registry key and display name ("silo", "swp", "eyeq", "none").
    name: str = ""
    #: The :class:`PacketNetwork` scheme this mechanism runs on.
    scheme: str = "tcp"
    #: Whether the mechanism relies on Silo's admission control and
    #: delay-aware placement (scenarios fall back to striped placement
    #: and skip admission when False -- host-level mechanisms like SWP
    #: and EyeQ run under any placement).
    uses_admission: bool = False

    def build_network(self, topology: TreeTopology,
                      tracer=None, **kwargs: Any) -> PacketNetwork:
        """Construct the simulated network this mechanism runs on."""
        return PacketNetwork(topology, scheme=self.scheme, tracer=tracer,
                             **kwargs)

    @abstractmethod
    def add_vm(self, net: PacketNetwork, vm_id: int, tenant_id: int,
               server: int, guarantee: Optional[NetworkGuarantee],
               pacer_config: Optional[PacerConfig] = None
               ) -> VirtualMachine:
        """Place one VM with this mechanism's hypervisor egress config."""

    def transport_class(self) -> Optional[Type[Transport]]:
        """Transport for application flows; ``None`` = scheme default."""
        return None

    def transport_kwargs(self) -> Dict[str, Any]:
        """Extra keyword arguments for every created transport."""
        return {}

    def start(self, net: PacketNetwork) -> None:
        """Attach control machinery before ``sim.run`` (default: none)."""

    def counters(self, net: PacketNetwork) -> Dict[str, Any]:
        """Mechanism-specific counters after a run (JSON-serializable)."""
        return {}


#: Mechanism factories keyed by registry name.
MECHANISMS: Dict[str, Callable[[], Mechanism]] = {}


def register_mechanism(factory: Type[Mechanism]) -> Type[Mechanism]:
    """Class decorator adding a :class:`Mechanism` to the registry."""
    if not factory.name:
        raise ValueError(f"{factory.__name__} has no registry name")
    if factory.name in MECHANISMS:
        raise ValueError(f"mechanism {factory.name!r} already registered")
    MECHANISMS[factory.name] = factory
    return factory


def get_mechanism(name: str) -> Mechanism:
    """A fresh instance of the named mechanism.

    Raises:
        KeyError: unknown name (message lists the registered ones).
    """
    try:
        factory = MECHANISMS[name]
    except KeyError:
        raise KeyError(f"unknown mechanism {name!r}; pick from "
                       f"{sorted(MECHANISMS)}") from None
    return factory()


def mechanism_names() -> tuple:
    """Registered mechanism names, sorted (CLI choices, docs tables)."""
    return tuple(sorted(MECHANISMS))
