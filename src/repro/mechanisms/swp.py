"""SWP end to end: speculative duplicates racing paced originals.

Silo's pacing trades average latency for a delay *bound*; SWP (the
"speculative window protocol" family of duplicate-transmission schemes)
tries to claw the average back without giving up the pacer.  For every
small message the sender immediately emits a second, low-priority copy
that bypasses the pacer entirely, while the original follows through the
token-bucket hierarchy on the guaranteed class.  Whichever copy arrives
first wins; the receiver's sequence-number dedup makes the race
invisible to the application.

The scheme's weakness -- and why the three-way campaign exists -- is
that the speculative copy rides the *best-effort* class behind strict
priority: precisely when the network is busy enough for pacing delay to
hurt, the copy sits behind (or is pushed out by) every guaranteed-class
byte, so the original's paced latency becomes the tail.  And because the
originals here are paced from rate alone (no admission control sizing a
burst allowance), SWP holds no delay guarantee to fall back on.

Data-path details -- the dedup rule, duplicate-load counters, and the
pacer bypass -- live in :class:`repro.phynet.transport.swp.SwpTransport`
and ``phynet/network.py``; this module only packages them behind the
:class:`~repro.mechanisms.base.Mechanism` interface.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.mechanisms.base import Mechanism, register_mechanism
from repro.pacer.hierarchy import PacerConfig
from repro.phynet.network import PacketNetwork, VirtualMachine
from repro.phynet.transport.base import Transport
from repro.phynet.transport.swp import SwpTransport

__all__ = ["SwpMechanism"]


@register_mechanism
class SwpMechanism(Mechanism):
    """Rate-paced originals + unpaced low-priority speculative copies."""

    name = "swp"
    scheme = "swp"

    def add_vm(self, net: PacketNetwork, vm_id: int, tenant_id: int,
               server: int, guarantee: Optional[NetworkGuarantee],
               pacer_config: Optional[PacerConfig] = None
               ) -> VirtualMachine:
        """Place the VM the way an SWP-only cloud would.

        Delay-sensitive VMs (``guarantee.wants_delay``) get their
        originals paced at the guaranteed rate with a single-packet
        bucket: without admission control there is no calculus sizing a
        safe burst ``S``, so the speculative copy is what SWP relies on
        for low latency.  Everything else runs plain unpaced TCP at the
        normal priority -- SWP's two queue levels separate *copies*
        from originals, not tenants from each other, and the scheme
        offers no bandwidth isolation for bulk traffic.
        """
        if guarantee is None or not guarantee.wants_delay:
            return net.add_vm(vm_id, tenant_id, server,
                              guarantee=guarantee, paced=False)
        if pacer_config is None:
            pacer_config = PacerConfig(
                bandwidth=guarantee.bandwidth, burst=units.MTU,
                peak_rate=guarantee.bandwidth, packet_size=units.MTU)
        return net.add_vm(vm_id, tenant_id, server, guarantee=guarantee,
                          paced=True, pacer_config=pacer_config)

    def transport_class(self) -> Optional[Type[Transport]]:
        """Flows must run :class:`SwpTransport` to emit/dedup copies."""
        return SwpTransport

    def counters(self, net: PacketNetwork) -> Dict[str, Any]:
        """Duplicate-load accounting summed over the run's transports."""
        totals = {"spec_packets_sent": 0, "spec_bytes_sent": 0.0,
                  "spec_wins": 0, "duplicate_deliveries": 0}
        for flow in net.transports.values():
            if isinstance(flow, SwpTransport):
                totals["spec_packets_sent"] += flow.spec_packets_sent
                totals["spec_bytes_sent"] += flow.spec_bytes_sent
                totals["spec_wins"] += flow.spec_wins
                totals["duplicate_deliveries"] += flow.duplicate_deliveries
        return totals
