"""Message-oriented reliable transports for the packet simulator."""

from repro.phynet.transport.base import Transport, Segment
from repro.phynet.transport.tcp import TcpReno
from repro.phynet.transport.dctcp import Dctcp
from repro.phynet.transport.hull import HullTcp

__all__ = ["Transport", "Segment", "TcpReno", "Dctcp", "HullTcp"]
