#!/usr/bin/env python
"""Look at the wire: how void packets realise sub-microsecond pacing.

Stamps a 2 Gbps packet stream with the Fig. 8 token-bucket hierarchy,
expands it into the exact wire schedule (data frames + void frames +
batch boundaries) and prints the first slots plus pacing-accuracy and
overhead statistics -- the mechanics behind Fig. 9 and Fig. 10b.

Run:  python examples/pacer_wire_view.py
"""

from repro import units
from repro.pacer import (
    PacedBatcher,
    PacerConfig,
    VMPacer,
    VoidScheduler,
    min_void_spacing,
)

LINK = units.gbps(10)
RATE_LIMIT = units.gbps(2)
N_PACKETS = 2000


def main() -> None:
    print(f"link {units.to_gbps(LINK):.0f} Gbps, rate limit "
          f"{units.to_gbps(RATE_LIMIT):.0f} Gbps, MTU {units.MTU} B")
    print(f"minimum achievable spacing: one {units.MIN_WIRE_FRAME}-byte "
          f"void frame = {min_void_spacing(LINK) * 1e9:.1f} ns "
          f"(the paper's 68 ns)\n")

    # A saturated VM: packets stamped back-to-back by the hierarchy.
    pacer = VMPacer(PacerConfig(bandwidth=RATE_LIMIT, burst=units.MTU,
                                peak_rate=RATE_LIMIT))
    stamped = [(pacer.stamp("dst", units.MTU, 0.0), units.MTU)
               for _ in range(N_PACKETS)]

    schedule = VoidScheduler(LINK).schedule(stamped)
    print("first wire slots:")
    for slot in schedule.slots[:8]:
        print(f"  t={slot.start_time * 1e6:7.3f} us  {slot.kind:5s} "
              f"{slot.wire_bytes:6.0f} B")

    data_rate, void_rate = schedule.rates()
    print(f"\nwire occupancy: data {units.to_gbps(data_rate):.2f} Gbps "
          f"+ void {units.to_gbps(void_rate):.2f} Gbps "
          f"= {units.to_gbps(data_rate + void_rate):.2f} Gbps")
    print(f"void frames per data packet: "
          f"{len(schedule.void_slots) / len(schedule.data_slots):.2f}")
    print(f"worst pacing error: {schedule.max_pacing_error() * 1e9:.1f} ns")

    batches = PacedBatcher(LINK, batch_window=50 * units.MICROS).carve(
        schedule)
    sizes = [b.data_packets + b.void_packets for b in batches]
    print(f"\npaced IO batching: {len(batches)} batches of <= 50 us, "
          f"{sum(sizes) / len(sizes):.0f} frames each "
          f"(one DMA hand-off per batch instead of per frame)")


if __name__ == "__main__":
    main()
