"""Failure-recovery benchmark: recovery under load, and no-faults overhead.

Two campaigns over the fault-injection subsystem:

* **recovery sweep** -- fill a two-pod cluster to 85% slot occupancy,
  replay a Poisson server-crash schedule through the self-healing
  :class:`ClusterController`, and sweep the failure rate (MTBF 50 ms
  down to 2.5 ms with a 50 ms MTTR, so outages overlap at the
  aggressive end).  The full run asserts the Silo recovered fraction,
  pooled over seeds, is non-increasing as the failure rate grows, and
  that Silo recovers at least as many tenants as Oktopus at every
  point of the sweep (both managers are filled to the same slot
  occupancy by the same workload draw).
* **overhead check** (``--overhead-check``) -- the fault machinery must
  be free when unused.  Placement: a churning admission campaign on
  the current manager vs a seed-style subclass with the per-port
  release registry compiled out.  Flowsim: the same workload on a
  plain :class:`ClusterSim` vs one with an (idle) controller attached.
  Both best-of-N ratios must stay under 1.02 (2% overhead).

Run::

    PYTHONPATH=src python benchmarks/bench_failure_recovery.py            # sweep
    PYTHONPATH=src python benchmarks/bench_failure_recovery.py --quick
    PYTHONPATH=src python benchmarks/bench_failure_recovery.py --overhead-check

The quick mode runs a reduced sweep without the monotonicity asserts
(single seed, two rate points); the full sweep is deterministic, so
its asserts are stable across machines.  ``--overhead-check`` runs
only the timing comparison (used as a CI floor).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro import units
from repro.campaign import (get_sweep, pool_values, run_campaign,
                            sum_counters)
from repro.campaign.scenarios import (RECOVERY_MTBF_MS, RECOVERY_MTTR_S,
                                      RECOVERY_OCCUPANCY, RECOVERY_SEEDS)
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
from repro.placement import ClusterController, SiloPlacementManager
from repro.topology import TreeTopology

#: No-faults overhead ceiling: armed/instrumented vs seed-style timing.
OVERHEAD_CEILING = 1.02

#: Grid aliases; the actual sweep definition (cells, seeds, fill
#: occupancy, MTTR, horizon) is the registered ``failure-recovery``
#: campaign in :mod:`repro.campaign.scenarios`.
SWEEP_MTBF_MS = RECOVERY_MTBF_MS
SWEEP_SEEDS = RECOVERY_SEEDS
SWEEP_OCCUPANCY = RECOVERY_OCCUPANCY
SWEEP_MTTR_S = RECOVERY_MTTR_S


# ---------------------------------------------------------------------------
# Part 1: recovery sweep
# ---------------------------------------------------------------------------

def bench_recovery(quick: bool) -> dict:
    mtbf_points = SWEEP_MTBF_MS[::2] if quick else SWEEP_MTBF_MS
    seeds = SWEEP_SEEDS[:1] if quick else SWEEP_SEEDS
    spec = get_sweep("failure-recovery")
    if quick:
        spec = spec.restrict(seeds=seeds, mtbf_ms=list(mtbf_points))
    campaign = run_campaign(spec)
    points = []
    for mtbf_ms in mtbf_points:
        point = {"mtbf_ms": mtbf_ms, "mttr_ms": SWEEP_MTTR_S * 1e3,
                 "occupancy": SWEEP_OCCUPANCY, "seeds": len(seeds)}
        for name in ("silo", "oktopus"):
            cells = [campaign.get(mtbf_ms=mtbf_ms, policy=name, seed=s)
                     for s in seeds]
            counts = sum_counters([{"affected": c["affected"],
                                    "recovered": c["recovered"]}
                                   for c in cells])
            guarantee_seconds = sum(c["guarantee_seconds_lost"]
                                    for c in cells)
            recover_times = pool_values([c["recover_times"]
                                         for c in cells])
            affected = counts.get("affected", 0)
            recovered = counts.get("recovered", 0)
            point[name] = {
                "affected": affected,
                "recovered": recovered,
                "recovered_fraction": round(
                    recovered / affected if affected else 1.0, 4),
                "guarantee_seconds_lost": round(guarantee_seconds, 4),
                "mean_ttr_ms": round(
                    1e3 * sum(recover_times) / len(recover_times), 3)
                    if recover_times else None,
            }
        points.append(point)
    if not quick:
        fractions = [p["silo"]["recovered_fraction"] for p in points]
        for faster, slower in zip(fractions[1:], fractions):
            assert faster <= slower + 1e-12, (
                f"recovered fraction not monotone in failure rate: "
                f"{fractions}")
        for point in points:
            assert point["silo"]["recovered"] >= \
                point["oktopus"]["recovered"], (
                    f"Silo recovered fewer tenants than Oktopus at "
                    f"mtbf={point['mtbf_ms']}ms: {point}")
    return {"points": points}


# ---------------------------------------------------------------------------
# Part 2: no-faults overhead
# ---------------------------------------------------------------------------

class _SeedStylePlacementManager(SiloPlacementManager):
    """Fault machinery compiled out, as the seed had it.

    Skips the per-port release registry on commit and decrements totals
    on remove instead of rebuilding them, so timing against the current
    manager isolates what exact release + fault hooks cost the
    no-faults hot path.
    """

    def _commit(self, request, assignment):
        from repro.placement.base import Placement
        vm_servers = []
        for server, count in sorted(assignment.items()):
            self._change_slots(server, -count)
            vm_servers.extend([server] * count)
        commits = list(self._port_contributions(request, assignment))
        for port_id, contribution in commits:
            self.states[port_id].add(contribution)
        placement = Placement(request=request, vm_servers=vm_servers)
        self.placements[request.tenant_id] = placement
        self._commits[request.tenant_id] = commits
        return placement

    def remove(self, tenant_id):
        placement = self.placements.pop(tenant_id, None)
        if placement is None:
            raise KeyError(f"tenant {tenant_id} is not placed")
        for server, count in placement.vms_per_server().items():
            self._change_slots(server, count)
        for port_id, contribution in self._commits.pop(tenant_id):
            self.states[port_id].remove(contribution)


def _overhead_topology() -> TreeTopology:
    return TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=10,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0, buffer_bytes=312 * units.KB)


def _placement_campaign(manager, n_requests: int, seed: int) -> int:
    """A churning admission campaign (15% removals); returns accepts."""
    rng = random.Random(seed)
    placed = []
    accepted = 0
    for _ in range(n_requests):
        n_vms = rng.randint(2, 24)
        if rng.random() < 0.4:
            guarantee = NetworkGuarantee(
                bandwidth=units.mbps(rng.choice([25, 50, 100])),
                burst=15e3, delay=1e-3, peak_rate=units.gbps(1))
            klass = TenantClass.CLASS_A
        else:
            guarantee = NetworkGuarantee(
                bandwidth=units.mbps(rng.choice([100, 200, 400])),
                burst=rng.choice([15e3, 60e3, 150e3]),
                peak_rate=units.gbps(1))
            klass = TenantClass.CLASS_B
        request = TenantRequest(n_vms=n_vms, guarantee=guarantee,
                                tenant_class=klass)
        if manager.place(request) is not None:
            placed.append(request.tenant_id)
            accepted += 1
        if placed and rng.random() < 0.15:
            manager.remove(placed.pop(rng.randrange(len(placed))))
    return accepted


def _best_of(n_trials: int, run) -> float:
    return min(run() for _ in range(n_trials))


def bench_overhead(quick: bool) -> dict:
    n_requests = 300 if quick else 1500
    trials = 3 if quick else 5

    def time_placement(manager_cls):
        def trial():
            manager = manager_cls(_overhead_topology())
            t0 = time.perf_counter()
            _placement_campaign(manager, n_requests, seed=7)
            return time.perf_counter() - t0
        return _best_of(trials, trial)

    current_s = time_placement(SiloPlacementManager)
    seed_style_s = time_placement(_SeedStylePlacementManager)
    placement_ratio = current_s / seed_style_s

    horizon = 4.0 if quick else 12.0

    def time_flowsim(armed: bool):
        def trial():
            topology = _overhead_topology()
            manager = SiloPlacementManager(topology)
            controller = (ClusterController(manager, retry_evicted=False)
                          if armed else None)
            sim = ClusterSim(manager, sharing="reserved",
                             controller=controller)
            workload = TenantWorkload(WorkloadConfig(mean_compute_time=6.0),
                                      arrival_rate=40.0, seed=5)
            t0 = time.perf_counter()
            stats = sim.run(workload, until=horizon)
            return time.perf_counter() - t0, stats.finished_jobs
        times, jobs = zip(*(trial() for _ in range(trials)))
        assert len(set(jobs)) == 1, "armed run changed the simulation"
        return min(times), jobs[0]

    plain_s, plain_jobs = time_flowsim(armed=False)
    armed_s, armed_jobs = time_flowsim(armed=True)
    assert plain_jobs == armed_jobs, (
        f"idle controller changed outcomes: {plain_jobs} != {armed_jobs}")
    flowsim_ratio = armed_s / plain_s

    report = {
        "requests": n_requests,
        "trials": trials,
        "placement": {
            "current_s": round(current_s, 4),
            "seed_style_s": round(seed_style_s, 4),
            "ratio": round(placement_ratio, 4),
        },
        "flowsim": {
            "plain_s": round(plain_s, 4),
            "armed_idle_s": round(armed_s, 4),
            "ratio": round(flowsim_ratio, 4),
            "finished_jobs": plain_jobs,
        },
    }
    if not quick:
        assert placement_ratio < OVERHEAD_CEILING, (
            f"placement no-faults overhead {placement_ratio:.4f} exceeds "
            f"{OVERHEAD_CEILING} ceiling")
        assert flowsim_ratio < OVERHEAD_CEILING, (
            f"flowsim no-faults overhead {flowsim_ratio:.4f} exceeds "
            f"{OVERHEAD_CEILING} ceiling")
    return report


# ---------------------------------------------------------------------------


def run(quick: bool, overhead_only: bool, out: Path) -> dict:
    report = {"quick": quick, "overhead_ceiling": OVERHEAD_CEILING}
    if overhead_only:
        report["overhead"] = bench_overhead(quick)
        o = report["overhead"]
        print(f"placement  current {o['placement']['current_s']:.3f}s  "
              f"seed-style {o['placement']['seed_style_s']:.3f}s  "
              f"ratio {o['placement']['ratio']:.4f}")
        print(f"flowsim    armed   {o['flowsim']['armed_idle_s']:.3f}s  "
              f"plain      {o['flowsim']['plain_s']:.3f}s  "
              f"ratio {o['flowsim']['ratio']:.4f}")
        if not quick:
            print(f"no-faults overhead under {OVERHEAD_CEILING} ceiling: OK")
    else:
        report["recovery"] = bench_recovery(quick)
        header = (f"{'mtbf':>6s} {'policy':8s} {'affected':>8s} "
                  f"{'recovered':>9s} {'fraction':>8s} {'G-sec lost':>10s} "
                  f"{'mean TTR':>9s}")
        print(header)
        print("-" * len(header))
        for point in report["recovery"]["points"]:
            for name in ("silo", "oktopus"):
                row = point[name]
                ttr = (f"{row['mean_ttr_ms']:>7.1f}ms"
                       if row["mean_ttr_ms"] is not None else f"{'--':>9s}")
                print(f"{point['mtbf_ms']:>4.1f}ms {name:8s} "
                      f"{row['affected']:>8d} {row['recovered']:>9d} "
                      f"{row['recovered_fraction']:>8.4f} "
                      f"{row['guarantee_seconds_lost']:>10.2f} {ttr}")
        if not quick:
            print("recovered fraction monotone in failure rate: OK")
            print("Silo recovers no fewer tenants than Oktopus: OK")
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep / short timing, no asserts")
    parser.add_argument("--overhead-check", action="store_true",
                        help="run only the no-faults overhead comparison "
                             "and enforce the <2%% ceiling")
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON report path (default: the committed "
                             "BENCH_failure_recovery.json for a full "
                             "sweep; quick/overhead runs never overwrite "
                             "the baseline)")
    args = parser.parse_args(argv)
    out = args.out
    if out is None and not args.quick and not args.overhead_check:
        out = _REPO / "BENCH_failure_recovery.json"
    run(args.quick, args.overhead_check, out)


if __name__ == "__main__":
    main()
