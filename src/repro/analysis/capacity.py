"""Capacity reporting: where a datacenter's admission headroom went.

Operators running Silo need to see which resource is binding -- VM slots,
bandwidth reservations at some tree level, or buffer (burst) budget --
before tenants start bouncing.  :func:`capacity_report` aggregates the
placement manager's per-port state by level into exactly that view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.placement.base import PlacementManager
from repro.topology.switch import PortKind


@dataclass(frozen=True)
class LevelUsage:
    """Aggregate reservations across all ports of one kind."""

    kind: PortKind
    ports: int
    bandwidth_reserved: float
    bandwidth_capacity: float
    worst_port_bandwidth_fraction: float
    worst_port_backlog_fraction: float

    @property
    def bandwidth_fraction(self) -> float:
        """Reserved bandwidth as a fraction of this level's capacity."""
        if self.bandwidth_capacity <= 0:
            return 0.0
        return self.bandwidth_reserved / self.bandwidth_capacity


@dataclass(frozen=True)
class CapacityReport:
    """Slots plus per-level bandwidth/burst usage."""

    total_slots: int
    used_slots: int
    levels: List[LevelUsage]

    @property
    def slot_fraction(self) -> float:
        """Occupied VM slots as a fraction of the cluster total."""
        return self.used_slots / self.total_slots if self.total_slots \
            else 0.0

    def level(self, kind: PortKind) -> LevelUsage:
        """The usage entry for one port level of the tree."""
        for usage in self.levels:
            if usage.kind is kind:
                return usage
        raise KeyError(f"no ports of kind {kind}")

    @property
    def binding_level(self) -> PortKind:
        """The port level closest to bandwidth exhaustion."""
        return max(self.levels,
                   key=lambda u: u.worst_port_bandwidth_fraction).kind


def capacity_report(manager: PlacementManager) -> CapacityReport:
    """Summarize a manager's current reservations by tree level."""
    by_kind: Dict[PortKind, List] = {}
    for state in manager.states.values():
        by_kind.setdefault(state.port.kind, []).append(state)

    levels = []
    for kind, states in sorted(by_kind.items(), key=lambda kv: kv[0].value):
        reserved = sum(s.bandwidth for s in states)
        capacity = sum(s.port.capacity for s in states)
        worst_bw = max((s.bandwidth / s.port.capacity for s in states),
                       default=0.0)
        worst_backlog = max(
            (s.backlog() / s.port.buffer_bytes for s in states),
            default=0.0)
        levels.append(LevelUsage(
            kind=kind, ports=len(states),
            bandwidth_reserved=reserved, bandwidth_capacity=capacity,
            worst_port_bandwidth_fraction=worst_bw,
            worst_port_backlog_fraction=worst_backlog))
    return CapacityReport(total_slots=manager.topology.n_slots,
                          used_slots=manager.used_slots,
                          levels=levels)
