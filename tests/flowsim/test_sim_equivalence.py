"""The heap-driven ClusterSim must reproduce the seed simulator.

:class:`~repro.flowsim.sim.ClusterSim` replaces the seed's rescan-every-
flow-every-event loop with an indexed min-heap of predicted finish times
and lazily-advanced fluids.  :class:`~repro.flowsim.reference.
ReferenceClusterSim` preserves the seed loop verbatim; running both over
identical workloads must yield the same :class:`ClusterStats` --
``finished_jobs`` exactly, ``carried_bytes``/``job_durations``/
``occupancy_integral`` to 1e-6 relative.
"""

import math

import pytest

from repro import units
from repro.flowsim import (ClusterSim, ReferenceClusterSim, TenantWorkload,
                           WorkloadConfig)
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology


def _run(sim_cls, sharing, seed, arrival_rate=25.0, until=6.0):
    topology = TreeTopology(n_pods=1, racks_per_pod=4, servers_per_rack=10,
                            slots_per_server=4, link_rate=units.gbps(10),
                            oversubscription=2.0)
    sim = sim_cls(SiloPlacementManager(topology), sharing=sharing)
    workload = TenantWorkload(WorkloadConfig(mean_compute_time=4.0),
                              arrival_rate=arrival_rate, seed=seed)
    return sim.run(workload, until)


def _assert_equal(new, ref):
    assert new.finished_jobs == ref.finished_jobs
    assert new.carried_bytes == pytest.approx(ref.carried_bytes,
                                              rel=1e-6, abs=1e-3)
    assert new.occupancy_integral == pytest.approx(ref.occupancy_integral,
                                                   rel=1e-6, abs=1e-9)
    assert new.elapsed == pytest.approx(ref.elapsed, rel=1e-9, abs=1e-9)
    assert len(new.job_durations) == len(ref.job_durations)
    for a, b in zip(new.job_durations, ref.job_durations):
        assert a == pytest.approx(b, rel=1e-6, abs=1e-9)
    # Tenant ids auto-increment globally, so the two runs' keys differ;
    # the per-tenant duration multisets must still match.
    for a, b in zip(sorted(new.durations_by_tenant.values()),
                    sorted(ref.durations_by_tenant.values())):
        assert a == pytest.approx(b, rel=1e-6, abs=1e-9)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_reserved_sharing_matches_reference(seed):
    _assert_equal(_run(ClusterSim, "reserved", seed),
                  _run(ReferenceClusterSim, "reserved", seed))


@pytest.mark.parametrize("seed", [1, 2])
def test_maxmin_sharing_matches_reference(seed):
    _assert_equal(_run(ClusterSim, "maxmin", seed),
                  _run(ReferenceClusterSim, "maxmin", seed))


def test_reference_finishes_work():
    """Guard the oracle itself: the workload actually exercises it."""
    stats = _run(ReferenceClusterSim, "reserved", seed=1)
    assert stats.finished_jobs > 0
    assert stats.carried_bytes > 0
    assert not math.isnan(stats.occupancy_integral)
