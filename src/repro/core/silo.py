"""The Silo controller: the system's front door.

Ties the two halves of the paper together: the placement manager admits a
tenant and decides where its VMs go (section 4.2), and the controller hands
each hypervisor the pacer configuration that makes the admitted guarantees
hold on the wire (section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.topology.switch import Port

from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import Placement, TenantClass, TenantRequest
from repro.pacer.hierarchy import PacerConfig
from repro.placement.silo import SiloPlacementManager
from repro.topology.tree import TreeTopology

#: Relative slack for the diagnostic constraint checks: queue bounds and
#: delay guarantees are seconds (micro- to millisecond magnitudes), where
#: a fixed absolute epsilon is either negligible or overwhelming
#: depending on the guarantee; relative tolerance scales with both.
_REL_TOL = 1e-9


@dataclass
class AdmittedTenant:
    """Everything the provider needs to run one admitted tenant."""

    placement: Placement
    #: Pacer configuration for each of the tenant's VMs (same guarantee for
    #: all VMs of a tenant, per Silo's per-tenant pricing model).
    pacer_config: Optional[PacerConfig]

    @property
    def request(self) -> TenantRequest:
        """The original request this admission answered."""
        return self.placement.request

    @property
    def tenant_id(self) -> int:
        """The admitted tenant's id."""
        return self.placement.tenant_id


class SiloController:
    """Admission control + placement + pacer configuration.

    Example::

        topo = TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=10)
        silo = SiloController(topo)
        request = TenantRequest(
            n_vms=9,
            guarantee=NetworkGuarantee(bandwidth=gbps(1), burst=100_000,
                                       delay=usec(1000),
                                       peak_rate=gbps(10)),
            tenant_class=TenantClass.CLASS_A)
        admitted = silo.admit(request)
    """

    def __init__(self, topology: TreeTopology):
        self.topology = topology
        self.placement_manager = SiloPlacementManager(topology)
        self.tenants: Dict[int, AdmittedTenant] = {}

    def admit(self, request: TenantRequest) -> Optional[AdmittedTenant]:
        """Admit a tenant if its guarantees can be met; ``None`` otherwise."""
        placement = self.placement_manager.place(request)
        if placement is None:
            return None
        config = None
        if request.guarantee is not None:
            config = PacerConfig.from_guarantee(request.guarantee)
        admitted = AdmittedTenant(placement=placement, pacer_config=config)
        self.tenants[request.tenant_id] = admitted
        return admitted

    def release(self, tenant_id: int) -> None:
        """Tear a tenant down and release its reservations."""
        if tenant_id not in self.tenants:
            raise KeyError(f"tenant {tenant_id} is not admitted")
        self.placement_manager.remove(tenant_id)
        del self.tenants[tenant_id]

    def message_latency_bound(self, tenant_id: int,
                              message_size: float) -> float:
        """The latency guarantee a tenant can compute for one message.

        This is the tenant-visible number from section 4.1: independent of
        every other tenant in the datacenter.
        """
        admitted = self.tenants.get(tenant_id)
        if admitted is None:
            raise KeyError(f"tenant {tenant_id} is not admitted")
        guarantee = admitted.request.guarantee
        if guarantee is None:
            raise ValueError("best-effort tenants have no latency bound")
        return guarantee.message_latency_bound(message_size)

    # -- provider-side introspection -------------------------------------------

    @property
    def occupancy(self) -> float:
        """Fraction of VM slots currently occupied."""
        return self.placement_manager.occupancy

    def admitted_fraction(self,
                          tenant_class: Optional[TenantClass] = None
                          ) -> float:
        """Fraction of requests admitted (optionally one class's)."""
        return self.placement_manager.admitted_fraction(tenant_class)

    def worst_queue_bound(self) -> float:
        """Largest queue bound (seconds) across all ports right now."""
        return max(
            (state.queue_bound()
             for state in self.placement_manager.states.values()),
            default=0.0)

    def explain_tenant(self, tenant_id: int) -> "TenantDiagnostics":
        """Per-hop breakdown of a tenant's worst path (diagnostics).

        Shows, for the tenant's longest VM-to-VM path, each port's
        current queue bound and static queue capacity, plus the path
        totals against the delay guarantee -- the two constraints of
        section 4.2.3, itemised.
        """
        admitted = self.tenants.get(tenant_id)
        if admitted is None:
            raise KeyError(f"tenant {tenant_id} is not admitted")
        placement = admitted.placement
        servers = sorted(set(placement.vm_servers))
        worst_path = []
        worst_capacity = -1.0
        for src in servers:
            for dst in servers:
                if src == dst:
                    continue
                path = self.topology.path_ports(src, dst)
                capacity = sum(p.queue_capacity for p in path)
                if capacity > worst_capacity:
                    worst_capacity = capacity
                    worst_path = path
        states = self.placement_manager.states
        hops = [HopDiagnostics(
                    port=port,
                    queue_bound=states[port.port_id].queue_bound(),
                    queue_capacity=port.queue_capacity)
                for port in worst_path]
        guarantee = admitted.request.guarantee
        return TenantDiagnostics(
            tenant_id=tenant_id,
            hops=hops,
            delay_guarantee=(guarantee.delay if guarantee is not None
                             else None))


@dataclass
class HopDiagnostics:
    """One port on a tenant's worst path."""

    port: "Port"
    queue_bound: float
    queue_capacity: float

    @property
    def headroom(self) -> float:
        """Spare queueing before the capacity is exhausted (seconds)."""
        return self.queue_capacity - self.queue_bound


@dataclass
class TenantDiagnostics:
    """Itemised view of the two placement constraints for one tenant."""

    tenant_id: int
    hops: List["HopDiagnostics"]
    delay_guarantee: Optional[float]

    @property
    def total_queue_capacity(self) -> float:
        """Summed queue capacity along the tenant's hops."""
        return sum(h.queue_capacity for h in self.hops)

    @property
    def total_queue_bound(self) -> float:
        """Summed worst-case queue bound along the tenant's hops."""
        return sum(h.queue_bound for h in self.hops)

    @property
    def delay_constraint_satisfied(self) -> bool:
        """Whether the summed queueing stays inside the delay guarantee."""
        if self.delay_guarantee is None:
            return True
        return (self.total_queue_capacity
                <= self.delay_guarantee * (1.0 + _REL_TOL))

    @property
    def buffer_constraints_satisfied(self) -> bool:
        """Whether every hop's queue bound fits its buffer."""
        return all(h.queue_bound <= h.queue_capacity * (1.0 + _REL_TOL)
                   for h in self.hops)
