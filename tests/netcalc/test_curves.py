"""Unit tests for the piecewise-linear concave curve algebra."""

import math

import pytest

from repro.netcalc.curves import AffinePiece, Curve


class TestAffinePiece:
    def test_evaluates_affine_function(self):
        piece = AffinePiece(rate=2.0, burst=5.0)
        assert piece(0.0) == 5.0
        assert piece(3.0) == 11.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            AffinePiece(rate=-1.0, burst=0.0)

    def test_rejects_negative_burst(self):
        with pytest.raises(ValueError):
            AffinePiece(rate=1.0, burst=-0.1)


class TestCurveConstruction:
    def test_single_piece(self):
        curve = Curve.affine(10.0, 100.0)
        assert curve(0.0) == 100.0
        assert curve(5.0) == 150.0
        assert curve.burst == 100.0
        assert curve.sustained_rate == 10.0

    def test_needs_at_least_one_piece(self):
        with pytest.raises(ValueError):
            Curve([])

    def test_rejects_negative_time(self):
        curve = Curve.affine(1.0, 1.0)
        with pytest.raises(ValueError):
            curve(-0.5)

    def test_dominated_piece_is_pruned(self):
        # (5, 10) is above (5, 3) everywhere.
        curve = Curve.from_pieces([(5.0, 10.0), (5.0, 3.0)])
        assert len(curve.pieces) == 1
        assert curve.burst == 3.0

    def test_never_active_piece_is_pruned(self):
        # The middle piece never attains the minimum.
        curve = Curve.from_pieces([(10.0, 0.0), (9.9, 1000.0), (1.0, 10.0)])
        rates = [p.rate for p in curve.pieces]
        assert 9.9 not in rates

    def test_dual_rate_breakpoint(self):
        # min(10 t + 1, 2 t + 9): crossover at t = 1.
        curve = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        assert curve.breakpoints == (0.0, 1.0)
        assert curve(1.0) == pytest.approx(11.0)
        assert curve(0.5) == pytest.approx(6.0)   # steep piece
        assert curve(2.0) == pytest.approx(13.0)  # flat piece

    def test_peak_and_sustained_rates(self):
        curve = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        assert curve.peak_rate == 10.0
        assert curve.sustained_rate == 2.0


class TestCurveAlgebra:
    def test_addition_of_token_buckets(self):
        a = Curve.affine(3.0, 7.0)
        b = Curve.affine(2.0, 5.0)
        total = a + b
        assert total(0.0) == pytest.approx(12.0)
        assert total(10.0) == pytest.approx(12.0 + 50.0)

    def test_addition_is_pointwise_exact(self):
        a = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        b = Curve.from_pieces([(8.0, 2.0), (1.0, 20.0)])
        total = a + b
        for t in [0.0, 0.3, 1.0, 2.5, 7.0, 100.0]:
            assert total(t) == pytest.approx(a(t) + b(t))

    def test_minimum_is_pointwise_exact(self):
        a = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        b = Curve.affine(3.0, 4.0)
        low = a.minimum(b)
        for t in [0.0, 0.5, 1.0, 3.0, 50.0]:
            assert low(t) == pytest.approx(min(a(t), b(t)))

    def test_scale(self):
        a = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        doubled = a.scale(2.0)
        for t in [0.0, 1.0, 4.0]:
            assert doubled(t) == pytest.approx(2 * a(t))

    def test_scale_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Curve.affine(1.0, 1.0).scale(0.0)

    def test_shift_earlier_token_bucket(self):
        # Silo's egress propagation: A(t + c) for a token bucket adds B*c
        # to the burst.
        a = Curve.affine(10.0, 100.0)
        shifted = a.shift_earlier(2.0)
        assert shifted.burst == pytest.approx(120.0)
        assert shifted.sustained_rate == 10.0

    def test_shift_earlier_is_composition(self):
        a = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        shifted = a.shift_earlier(0.7)
        for t in [0.0, 0.3, 1.0, 5.0]:
            assert shifted(t) == pytest.approx(a(t + 0.7))

    def test_shift_rejects_negative(self):
        with pytest.raises(ValueError):
            Curve.affine(1.0, 1.0).shift_earlier(-1.0)

    def test_dominates(self):
        big = Curve.affine(10.0, 10.0)
        small = Curve.affine(5.0, 5.0)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_equality(self):
        a = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        b = Curve.from_pieces([(2.0, 9.0), (10.0, 1.0)])
        assert a == b

    def test_active_piece(self):
        curve = Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        assert curve.active_piece(0.5).rate == 10.0
        assert curve.active_piece(2.0).rate == 2.0

    def test_sum_of_many_stays_small(self):
        # Aggregating many identical tenants must not blow up the
        # representation: identical rates collapse.
        total = Curve.affine(1.0, 1.0)
        for _ in range(50):
            total = total + Curve.from_pieces([(10.0, 1.0), (2.0, 9.0)])
        assert len(total.pieces) <= 3
