"""Regenerate EXPERIMENTS.md's measured tables from campaign outputs.

The sweep-derived tables in ``EXPERIMENTS.md`` live between marker
comments::

    <!-- begin:fig15 -->
    | policy | moderate | high |
    ...
    <!-- end:fig15 -->

``python -m repro report`` re-renders each block from the committed
``campaigns/<name>/merged.json`` and splices it back, so the document's
numbers provably come from the checked-in campaign data rather than
hand transcription; ``--check`` verifies the document is up to date
without writing (CI runs this as the docs-drift gate).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Callable, Dict, List, Mapping

from repro.campaign.merge import pool_values, sum_counters

__all__ = ["render_tables", "splice", "update_document"]

#: Renderers keyed by marker id; each maps a campaign dir name to the
#: markdown block generated from its merged.json.
_RENDERERS: Dict[str, str] = {
    "table1": "table1",
    "fig15": "fig15",
    "fig16": "fig16",
    "fig16-32k": "fig16-32k",
    "failure-recovery": "failure-recovery",
    "whatif-error": "whatif-error",
    "mechanism-compare": "mechanism-compare",
    "hybrid-smoke": "hybrid-smoke",
}

_MARKER = re.compile(
    r"(<!-- begin:(?P<id>[\w.-]+) -->\n)(?P<body>.*?)(<!-- end:(?P=id) -->)",
    re.DOTALL)


def _load_cells(campaigns: Path, name: str) -> List[Mapping]:
    merged = campaigns / name / "merged.json"
    data = json.loads(merged.read_text(encoding="utf-8"))
    return data["cells"]


def _cell_map(cells: List[Mapping], *axes: str) -> Dict[tuple, Mapping]:
    """Index cell results by the given parameter axes (must be unique)."""
    indexed: Dict[tuple, Mapping] = {}
    for cell in cells:
        key = tuple(cell["params"][axis] for axis in axes)
        if key in indexed:
            raise ValueError(f"duplicate cells for {key}")
        indexed[key] = cell
    return indexed


def _render_table1(campaigns: Path) -> str:
    cells = _cell_map(_load_cells(campaigns, "table1"),
                      "burst_mult", "bw_mult")
    bursts = sorted({k[0] for k in cells})
    bws = sorted({k[1] for k in cells})
    lines = ["| burst\\bw | " + " | ".join(f"{bw:g}B" for bw in bws)
             + " |",
             "|---|" + "---|" * len(bws)]
    for burst in bursts:
        row = [f"{burst:g}M"]
        for bw in bws:
            late = cells[(burst, bw)]["result"]["late_fraction"]
            row.append(f"{100 * late:.2f}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def _render_fig15(campaigns: Path) -> str:
    cells = _cell_map(_load_cells(campaigns, "fig15"), "load", "policy")
    policies = ("locality", "oktopus", "silo")
    lines = ["| policy | moderate | high |", "|---|---|---|"]
    for policy in policies:
        row = [policy]
        for load in ("moderate", "high"):
            row.append(f"{cells[(load, policy)]['result']['total']:.1%}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def _render_fig16(campaigns: Path) -> str:
    cells = _cell_map(_load_cells(campaigns, "fig16"),
                      "boost", "permutation_x", "policy")
    boosts = sorted({k[0] for k in cells})
    densities = sorted({k[1] for k in cells})
    policies = ("locality", "oktopus", "silo")
    lines = ["16a — utilization vs offered load (Permutation-3):", "",
             "| load | " + " | ".join(policies) + " | silo occupancy |",
             "|---|" + "---|" * (len(policies) + 1)]
    for boost in boosts:
        row = [f"{boost:g}x"]
        for policy in policies:
            result = cells[(boost, 3.0, policy)]["result"]
            row.append(f"{result['utilization']:.2%}")
        row.append(f"{cells[(boost, 3.0, 'silo')]['result']['occupancy']:.0%}")
        lines.append("| " + " | ".join(row) + " |")
    lines += ["", "16b — utilization vs Permutation-x (high load):", "",
              "| x | " + " | ".join(policies) + " |",
              "|---|" + "---|" * len(policies)]
    for density in densities:
        if density == 3.0:
            continue
        row = [f"{density:g}"]
        for policy in policies:
            result = cells[(4.0, density, policy)]["result"]
            row.append(f"{result['utilization']:.2%}")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def _render_fig16_32k(campaigns: Path) -> str:
    cells = _cell_map(_load_cells(campaigns, "fig16-32k"),
                      "servers", "policy")
    sizes = sorted({k[0] for k in cells})
    lines = ["Fig. 16a operating point (4.0x load, Permutation-3) scaled"
             " to the paper's 32K servers:", "",
             "| servers | policy | utilization | admitted | occupancy |"
             " peak flows | jobs done |",
             "|--------:|--------|------------:|---------:|----------:|"
             "-----------:|----------:|"]
    for servers in sizes:
        for policy in ("locality", "oktopus", "silo"):
            result = cells[(servers, policy)]["result"]
            lines.append(
                f"| {servers} | {policy} "
                f"| {result['utilization']:.2%} "
                f"| {result['admitted']:.1%} "
                f"| {result['occupancy']:.0%} "
                f"| {result['peak_concurrent_flows']} "
                f"| {result['finished_jobs']} |")
    return "\n".join(lines) + "\n"


def _render_failure_recovery(campaigns: Path) -> str:
    raw = _load_cells(campaigns, "failure-recovery")
    mtbfs: List[float] = []
    for cell in raw:
        mtbf = cell["params"]["mtbf_ms"]
        if mtbf not in mtbfs:
            mtbfs.append(mtbf)
    lines = ["| MTBF | policy | affected | recovered | fraction |"
             " guarantee-sec lost | mean TTR |",
             "|-----:|--------|---------:|----------:|---------:|"
             "-------------------:|---------:|"]
    for mtbf in mtbfs:
        for policy in ("silo", "oktopus"):
            cells = [c["result"] for c in raw
                     if c["params"]["mtbf_ms"] == mtbf
                     and c["params"]["policy"] == policy]
            counts = sum_counters([{"affected": c["affected"],
                                    "recovered": c["recovered"]} for c
                                   in cells])
            lost = sum(c["guarantee_seconds_lost"] for c in cells)
            times = pool_values([c["recover_times"] for c in cells])
            fraction = (counts["recovered"] / counts["affected"]
                        if counts["affected"] else 1.0)
            ttr = (f"{1e3 * sum(times) / len(times):.1f} ms"
                   if times else "--")
            lines.append(
                f"| {mtbf:g} ms | {policy.capitalize()} "
                f"| {counts['affected']} | {counts['recovered']} "
                f"| {fraction:.3f} | {lost:.2f} | {ttr} |")
    return "\n".join(lines) + "\n"


def _render_whatif_error(campaigns: Path) -> str:
    raw = _load_cells(campaigns, "whatif-error")
    seeds = sorted({cell["seed"] for cell in raw})
    keys = []
    for cell in raw:
        key = (cell["params"]["message_kb"], cell["params"]["class_a"])
        if key not in keys:
            keys.append(key)
    lines = ["| message | class-A tenants | sim p99 | est p99 |"
             " rel. error (per seed) |",
             "|--------:|----------------:|--------:|--------:|"
             "----------------------|"]
    errors: List[float] = []
    for message_kb, class_a in keys:
        cells = [c for c in raw
                 if c["params"]["message_kb"] == message_kb
                 and c["params"]["class_a"] == class_a]
        cells.sort(key=lambda c: c["seed"])
        cell_errors = [c["result"]["rel_error_p99"] for c in cells]
        errors.extend(cell_errors)
        sim_p99 = sum(c["result"]["sim"]["p99_us"]
                      for c in cells) / len(cells)
        est_p99 = sum(c["result"]["est"]["p99_us"]
                      for c in cells) / len(cells)
        per_seed = " / ".join(f"{e:.1%}" for e in cell_errors)
        lines.append(f"| {message_kb:g} KB | {class_a} "
                     f"| {sim_p99:.1f} us | {est_p99:.1f} us "
                     f"| {per_seed} |")
    errors.sort()
    median = errors[len(errors) // 2] if len(errors) % 2 else (
        errors[len(errors) // 2 - 1] + errors[len(errors) // 2]) / 2
    lines += ["",
              f"Median relative p99 error across all "
              f"{len(errors)} cells ({len(seeds)} held-out seeds): "
              f"**{median:.1%}** (acceptance floor: 15%)."]
    return "\n".join(lines) + "\n"


def _render_mechanism_compare(campaigns: Path) -> str:
    cells = _cell_map(_load_cells(campaigns, "mechanism-compare"),
                      "workload", "mechanism")
    workloads = []
    for key in cells:
        if key[0] not in workloads:
            workloads.append(key[0])
    mechanisms = ("silo", "swp", "eyeq")
    lines = ["| workload | mechanism | p50 | p99 | p99.9 | max |"
             " late | guarantee |",
             "|----------|-----------|----:|----:|------:|----:|"
             "-----:|-----------|"]
    for workload in workloads:
        for mechanism in mechanisms:
            result = cells[(workload, mechanism)]["result"]
            pct = result["latency_us"]
            late = result["late"]
            verdict = "**met**" if result["guarantee_met"] else "violated"
            lines.append(
                f"| {workload} | {mechanism} "
                f"| {pct['p50']:.0f} us | {pct['p99']:.0f} us "
                f"| {pct['p999']:.0f} us "
                f"| {result['max_latency_us']:.0f} us "
                f"| {late}/{result['messages']} | {verdict} |")
    any_cell = next(iter(cells.values()))["result"]
    swp = [cells[(w, "swp")]["result"] for w in workloads]
    spec_sent = sum(c["counters"]["spec_packets_sent"] for c in swp)
    spec_wins = sum(c["counters"]["spec_wins"] for c in swp)
    eyeq_fb = sum(cells[(w, "eyeq")]["result"]["counters"]
                  ["feedback_messages"] for w in workloads)
    lines += ["",
              f"Class-A contract: {any_cell['bound_us']:.0f} us for a "
              f"15 KB message.  SWP sent {spec_sent} speculative copies "
              f"({spec_wins} arrived first); EyeQ exchanged {eyeq_fb} "
              f"rate-feedback messages."]
    return "\n".join(lines) + "\n"


def _render_hybrid_smoke(campaigns: Path) -> str:
    cells = _cell_map(_load_cells(campaigns, "hybrid-smoke"),
                      "fg_app", "policy")
    apps = ("memcached", "burst")
    policies = ("silo", "locality")
    lines = ["| foreground | background policy | bg admitted |"
             " residual events | messages | p50 | p99 | late |",
             "|------------|-------------------|------------:|"
             "----------------:|---------:|----:|----:|-----:|"]
    for app in apps:
        for policy in policies:
            result = cells[(app, policy)]["result"]
            fg = result["foreground"][0]
            late = (f"{fg['late']:.0%}" if fg.get("late") is not None
                    else "--")
            lines.append(
                f"| {app} | {policy} "
                f"| {result['bg_admitted']:.1%} "
                f"| {result['residual_events']} "
                f"| {fg['messages']} "
                f"| {fg['p50_us']:.1f} us | {fg['p99_us']:.1f} us "
                f"| {late} |")
    any_cell = next(iter(cells.values()))["result"]
    lines += ["",
              f"Each packet window covers {1e3 * any_cell['fg_horizon']:g}"
              f" ms of the fluid background run, aligned to the recorded"
              f" peak of background usage on the foreground's"
              f" {any_cell['watched_ports']} path ports."]
    return "\n".join(lines) + "\n"


def render_tables(campaigns: Path) -> Dict[str, str]:
    """All marker blocks renderable from ``campaigns`` (id -> markdown).

    Campaign directories without a committed ``merged.json`` are
    skipped, so a partially populated campaigns tree regenerates what
    it can.
    """
    renderers: Dict[str, Callable[[Path], str]] = {
        "table1": _render_table1,
        "fig15": _render_fig15,
        "fig16": _render_fig16,
        "fig16-32k": _render_fig16_32k,
        "failure-recovery": _render_failure_recovery,
        "whatif-error": _render_whatif_error,
        "mechanism-compare": _render_mechanism_compare,
        "hybrid-smoke": _render_hybrid_smoke,
    }
    tables = {}
    for marker_id, render in renderers.items():
        if (campaigns / marker_id / "merged.json").is_file():
            tables[marker_id] = render(campaigns)
    return tables


def splice(document: str, tables: Mapping[str, str]) -> str:
    """Replace every marker block in ``document`` with its new table.

    Markers without a rendered table are left untouched; rendered
    tables without a marker are an error (the document must opt in to
    regeneration explicitly).
    """
    seen = set()

    def replace(match: re.Match) -> str:
        marker_id = match.group("id")
        if marker_id not in tables:
            return match.group(0)
        seen.add(marker_id)
        return (match.group(1) + tables[marker_id] + match.group(4))

    updated = _MARKER.sub(replace, document)
    missing = set(tables) - seen
    if missing:
        raise ValueError(
            f"no markers for rendered tables: {sorted(missing)} "
            f"(add <!-- begin:ID --> / <!-- end:ID --> to the document)")
    return updated


def update_document(doc_path: Path, campaigns: Path,
                    check: bool = False) -> bool:
    """Regenerate ``doc_path``'s campaign tables; True if it changed.

    With ``check=True`` the document is not written -- the return value
    says whether it *would* change (the CI drift gate fails on True).
    """
    document = doc_path.read_text(encoding="utf-8")
    updated = splice(document, render_tables(campaigns))
    changed = updated != document
    if changed and not check:
        doc_path.write_text(updated, encoding="utf-8")
    return changed
