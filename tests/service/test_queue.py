"""The bounded ingress queue: priorities, backpressure, shedding."""

import pytest

from repro.service import BoundedIngressQueue, IngressItem, Priority


def admit(t, deadline=None, attempt=0):
    return IngressItem(Priority.ADMIT, t, payload=f"req@{t}",
                       deadline=deadline, attempt=attempt)


class TestOffer:
    def test_admissions_bounce_at_capacity_with_retry_after(self):
        q = BoundedIngressQueue(capacity=2)
        assert q.offer(admit(0.0, deadline=1.0)) is None
        assert q.offer(admit(0.1, deadline=2.0)) is None
        retry_after = q.offer(admit(0.2, deadline=3.0))
        assert retry_after is not None and retry_after > 0
        assert len(q) == 2

    def test_retry_after_grows_with_fill_and_attempt(self):
        q = BoundedIngressQueue(capacity=4)
        empty_hint = q.retry_after(0)
        q.offer(admit(0.0))
        q.offer(admit(0.1))
        fuller_hint = q.retry_after(0)
        assert fuller_hint > empty_hint
        # Exponential in the attempt count, capped at 64x.
        assert q.retry_after(3) == pytest.approx(8 * q.retry_after(0))
        assert q.retry_after(6) == q.retry_after(99)

    def test_control_items_always_enqueue_past_capacity(self):
        q = BoundedIngressQueue(capacity=1)
        assert q.offer(admit(0.0)) is None
        assert q.offer(IngressItem(Priority.FAULT, 0.1, "f")) is None
        assert q.offer(IngressItem(Priority.DEPARTURE, 0.2, 7)) is None
        assert len(q) == 3
        assert q.max_depth == 3
        assert q.max_admit_depth == 1

    def test_force_bypasses_the_bound(self):
        q = BoundedIngressQueue(capacity=1)
        assert q.offer(admit(0.0)) is None
        assert q.offer(admit(0.1), force=True) is None
        assert q.admit_depth == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedIngressQueue(capacity=0)


class TestDrainOrder:
    def test_faults_then_departures_then_admissions(self):
        q = BoundedIngressQueue(capacity=8)
        q.offer(admit(0.0, deadline=5.0))
        q.offer(IngressItem(Priority.DEPARTURE, 0.1, 7))
        q.offer(IngressItem(Priority.FAULT, 0.2, "f"))
        kinds = [q.pop().priority for _ in range(3)]
        assert kinds == [Priority.FAULT, Priority.DEPARTURE,
                         Priority.ADMIT]
        assert q.pop() is None

    def test_admissions_drain_earliest_deadline_first(self):
        q = BoundedIngressQueue(capacity=8)
        q.offer(admit(0.0, deadline=9.0))
        q.offer(admit(0.1, deadline=3.0))
        q.offer(admit(0.2, deadline=6.0))
        batch = q.pop_admissions(limit=10)
        assert [item.deadline for item in batch] == [3.0, 6.0, 9.0]

    def test_no_deadline_sorts_last_in_arrival_order(self):
        q = BoundedIngressQueue(capacity=8)
        q.offer(admit(0.0))
        q.offer(admit(0.1, deadline=5.0))
        q.offer(admit(0.2))
        batch = q.pop_admissions(limit=10)
        assert batch[0].deadline == 5.0
        assert [item.enqueued_at for item in batch[1:]] == [0.0, 0.2]


class TestShed:
    def test_sheds_earliest_deadline_first_down_to_target(self):
        q = BoundedIngressQueue(capacity=8)
        for i in range(4):
            q.offer(admit(0.1 * i, deadline=float(10 - i)))
        victims = q.shed(target_depth=2)
        assert [v.deadline for v in victims] == [7.0, 8.0]
        assert len(q) == 2

    def test_control_items_are_never_shed(self):
        q = BoundedIngressQueue(capacity=8)
        q.offer(IngressItem(Priority.FAULT, 0.0, "f"))
        q.offer(IngressItem(Priority.DEPARTURE, 0.1, 7))
        q.offer(admit(0.2, deadline=1.0))
        victims = q.shed(target_depth=0)
        assert len(victims) == 1
        assert victims[0].priority is Priority.ADMIT
        assert len(q) == 2  # both control items survive
