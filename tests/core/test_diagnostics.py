"""The explain_tenant diagnostics API."""

import pytest

from repro import SiloController, TenantClass, TenantRequest, units
from repro.core.guarantees import NetworkGuarantee
from repro.topology import TreeTopology


@pytest.fixture
def controller():
    topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10))
    return SiloController(topo)


def admit(controller, n_vms=8, delay=units.msec(1)):
    request = TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(250),
                                   burst=15 * units.KB, delay=delay,
                                   peak_rate=units.gbps(1)),
        tenant_class=TenantClass.CLASS_A)
    assert controller.admit(request) is not None
    return request


class TestExplainTenant:
    def test_constraints_reported_satisfied(self, controller):
        request = admit(controller)
        diag = controller.explain_tenant(request.tenant_id)
        assert diag.delay_constraint_satisfied
        assert diag.buffer_constraints_satisfied
        assert diag.total_queue_capacity <= request.guarantee.delay

    def test_hops_match_worst_path(self, controller):
        request = admit(controller, n_vms=8)
        diag = controller.explain_tenant(request.tenant_id)
        # 8 VMs across two servers of one rack: two-hop paths.
        assert len(diag.hops) == 2
        for hop in diag.hops:
            assert hop.queue_bound <= hop.queue_capacity
            assert hop.headroom >= 0

    def test_single_server_tenant_has_no_hops(self, controller):
        request = admit(controller, n_vms=4)
        diag = controller.explain_tenant(request.tenant_id)
        assert diag.hops == []
        assert diag.total_queue_bound == 0.0
        assert diag.delay_constraint_satisfied

    def test_unknown_tenant_raises(self, controller):
        with pytest.raises(KeyError):
            controller.explain_tenant(987654)

    def test_bounds_grow_with_neighbours(self, controller):
        first = admit(controller, n_vms=8)
        before = controller.explain_tenant(first.tenant_id)
        admit(controller, n_vms=8)
        after = controller.explain_tenant(first.tenant_id)
        assert after.total_queue_bound >= before.total_queue_bound
