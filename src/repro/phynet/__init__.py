"""Packet-level discrete-event network simulator.

Reproduces the paper's ns2 experiments (section 6.2): switches with
shallow drop-tail output queues, ECN marking (DCTCP) and phantom queues
(HULL), 802.1q-style strict priorities, hypervisor pacing for Silo, and
message-oriented transports on top of TCP-style congestion control.

The simulator is deliberately at the same abstraction level as ns2: every
data packet and ACK is an individual event crossing individual output
ports; pacing releases packets at the exact token-bucket stamps (the
void-packet wire realisation is modelled and validated separately in
:mod:`repro.pacer`, since its sub-100 ns quantization is far below packet
serialization times).
"""

from repro.phynet.engine import Simulator
from repro.phynet.packet import Packet, PRIORITY_GUARANTEED, PRIORITY_BEST_EFFORT
from repro.phynet.port import OutputPort, PortStats
from repro.phynet.network import PacketNetwork, VirtualMachine
from repro.phynet.metrics import MessageRecord, MetricsCollector
from repro.phynet.oldi import PartitionAggregateApp, QueryRecord
from repro.phynet.transport.base import Transport
from repro.phynet.transport.tcp import TcpReno
from repro.phynet.transport.dctcp import Dctcp
from repro.phynet.transport.hull import HullTcp
from repro.phynet.transport.swp import SwpTransport

__all__ = [
    "Simulator",
    "Packet",
    "PRIORITY_GUARANTEED",
    "PRIORITY_BEST_EFFORT",
    "OutputPort",
    "PortStats",
    "PacketNetwork",
    "VirtualMachine",
    "MessageRecord",
    "MetricsCollector",
    "PartitionAggregateApp",
    "QueryRecord",
    "Transport",
    "TcpReno",
    "Dctcp",
    "HullTcp",
    "SwpTransport",
]
