"""Docstring coverage lint for the public API.

Walks every module under ``src/repro/`` with :mod:`ast` (no imports,
so a syntax-error-free tree is the only requirement) and demands a
docstring on:

* every module;
* every public module-level function and class;
* every public method of a public class.

"Public" means the name has no leading underscore and is not reached
through a private parent (a ``_Private`` class may have undocumented
methods).  ``@overload`` stubs, ``__init__`` and other dunders except
``__init__``'s siblings are exempt -- dataclass-style ``__post_init__``
and friends document themselves through the class docstring.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Dunders are implicitly specified by the data model; the class
#: docstring covers their behavior.
_EXEMPT_METHODS = {"__init__", "__post_init__", "__repr__", "__str__",
                   "__eq__", "__hash__", "__len__", "__iter__",
                   "__enter__", "__exit__", "__getattr__",
                   "__call__", "__lt__", "__contains__"}

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_overload(node) -> bool:
    return any(isinstance(d, ast.Name) and d.id == "overload"
               or isinstance(d, ast.Attribute) and d.attr == "overload"
               for d in node.decorator_list)


def _missing_in_class(node: ast.ClassDef, path: str):
    for child in node.body:
        if not isinstance(child, _FUNCTION_NODES):
            continue
        name = child.name
        if name.startswith("_") and name not in _EXEMPT_METHODS:
            continue
        if name in _EXEMPT_METHODS or _is_overload(child):
            continue
        if ast.get_docstring(child) is None:
            yield f"{path}:{child.lineno} method " \
                  f"{node.name}.{name} has no docstring"


def _missing_in_module(tree: ast.Module, path: str):
    if ast.get_docstring(tree) is None:
        yield f"{path}:1 module has no docstring"
    for node in tree.body:
        if isinstance(node, _FUNCTION_NODES):
            if node.name.startswith("_") or _is_overload(node):
                continue
            if ast.get_docstring(node) is None:
                yield f"{path}:{node.lineno} function {node.name} " \
                      f"has no docstring"
        elif isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                yield f"{path}:{node.lineno} class {node.name} " \
                      f"has no docstring"
            yield from _missing_in_class(node, path)


def iter_public_api_gaps():
    """Every missing public docstring under ``src/repro/``, as strings."""
    for source in sorted(SRC.rglob("*.py")):
        rel = source.relative_to(SRC.parent.parent).as_posix()
        tree = ast.parse(source.read_text(encoding="utf-8"))
        yield from _missing_in_module(tree, rel)


def test_sources_exist():
    """The tree being linted is where this repo keeps it."""
    assert SRC.is_dir()
    assert any(SRC.rglob("*.py"))


def test_every_public_name_has_a_docstring():
    """The whole public surface of :mod:`repro` is documented."""
    gaps = list(iter_public_api_gaps())
    assert not gaps, (
        f"{len(gaps)} public definitions lack docstrings:\n"
        + "\n".join(gaps))


def test_lint_catches_a_seeded_gap(tmp_path, monkeypatch):
    """The linter itself works: an undocumented def is reported."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        '"""Module docstring."""\n\n\ndef documented():\n'
        '    """Fine."""\n\n\ndef naked():\n    pass\n')
    monkeypatch.setattr("test_lint_docstrings.SRC", pkg)
    gaps = list(iter_public_api_gaps())
    assert len(gaps) == 1
    assert "naked" in gaps[0]
