"""Fig. 16: network utilization vs offered load and traffic density.

(a) Average network utilization as the offered load sweeps from light to
    heavy: utilization tracks load for every policy, and Silo's full
    admission control costs at most a modest utilization discount versus
    bandwidth-only Oktopus (the paper's 9-11%).

(b) Utilization at high load as class-B traffic density sweeps
    Permutation-x: denser matrices raise reserved-policy utilization
    several-fold, and Silo's discount versus Oktopus stays modest at
    every density.

Documented deviation (see EXPERIMENTS.md): absolute utilization of the
work-conserving locality/TCP baseline exceeds the reserved policies at
this 320-server scale, whereas the paper's 32K-server runs show Silo
matching or beating it; the *trends* asserted below are the paper's.
"""

import pytest

from repro import units
from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
from repro.placement import (
    LocalityPlacementManager,
    OktopusPlacementManager,
    SiloPlacementManager,
)
from repro.topology import TreeTopology

from conftest import print_table, run_once

HORIZON = 120.0
POLICIES = [
    ("locality", LocalityPlacementManager, "maxmin"),
    ("oktopus", OktopusPlacementManager, "reserved"),
    ("silo", SiloPlacementManager, "reserved"),
]
#: Offered-load multipliers for sweep (a), light to heavy.
BOOSTS = [0.8, 1.5, 2.2, 4.0]
PERMUTATIONS = [0.5, 1.0, 2.0, 4.0]


def build_topology():
    return TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=10,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0)


def run_cell(manager_class, sharing, boost, permutation_x):
    topo = build_topology()
    config = WorkloadConfig(b_flow_bytes=250 * units.MB,
                            a_flow_bytes=5 * units.MB,
                            mean_compute_time=8.0,
                            a_delay=600 * units.MICROS,
                            permutation_x=permutation_x,
                            mean_vms=10, max_vms=16)
    manager = manager_class(topo)
    workload = TenantWorkload.for_occupancy(config, 0.5, topo.n_slots,
                                            seed=47)
    workload.arrival_rate *= boost
    sim = ClusterSim(manager, sharing=sharing)
    stats = sim.run(workload, until=HORIZON)
    return stats.network_utilization, stats.mean_occupancy


def compute():
    sweep_a = {}
    for boost in BOOSTS:
        for name, cls, sharing in POLICIES:
            sweep_a[(boost, name)] = run_cell(cls, sharing, boost, 3.0)
    sweep_b = {}
    for x in PERMUTATIONS:
        for name, cls, sharing in POLICIES:
            sweep_b[(x, name)] = run_cell(cls, sharing, 4.0, x)
    return sweep_a, sweep_b


@pytest.mark.benchmark(group="fig16")
def test_fig16_utilization(benchmark):
    sweep_a, sweep_b = run_once(benchmark, compute)

    rows = [[f"{boost:g}x"]
            + [f"{sweep_a[(boost, name)][0]:.2%}"
               for name, _, _ in POLICIES]
            + [f"{sweep_a[(boost, 'silo')][1]:.0%}"]
            for boost in BOOSTS]
    print_table("Fig. 16a: network utilization vs offered load",
                ["load"] + [name for name, _, _ in POLICIES]
                + ["silo occupancy"], rows)

    rows = [[f"{x:g}"]
            + [f"{sweep_b[(x, name)][0]:.2%}" for name, _, _ in POLICIES]
            for x in PERMUTATIONS]
    print_table("Fig. 16b: utilization vs Permutation-x (high load)",
                ["x"] + [name for name, _, _ in POLICIES], rows)

    # (a) Utilization grows with offered load for every policy.
    for name, _, _ in POLICIES:
        series = [sweep_a[(boost, name)][0] for boost in BOOSTS]
        assert series[-1] > series[0]
    # Silo's utilization price versus Oktopus stays modest at high load
    # (the paper: 9-11% lower at high occupancy).
    silo_hi = sweep_a[(BOOSTS[-1], "silo")][0]
    okto_hi = sweep_a[(BOOSTS[-1], "oktopus")][0]
    assert silo_hi >= 0.7 * okto_hi
    # (b) Denser matrices raise every policy's utilization strongly
    # (Silo ~5x from Permutation-0.5 to Permutation-4)...
    for name, _, _ in POLICIES:
        series = [sweep_b[(x, name)][0] for x in PERMUTATIONS]
        assert series[-1] > 3 * series[0], name
    # ...and Silo's discount versus Oktopus stays modest at every
    # density -- for sparse patterns the two are indistinguishable (the
    # paper's ~4% sparse-pattern cost is against the TCP baseline, whose
    # absolute utilization our fluid model overstates; see
    # EXPERIMENTS.md deviations).
    for x in PERMUTATIONS:
        assert sweep_b[(x, "silo")][0] >= 0.75 * sweep_b[(x,
                                                          "oktopus")][0]
