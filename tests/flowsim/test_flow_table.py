"""Columnar flow-state storage and its equivalence guarantees.

Covers the :class:`~repro.flowsim.job.FlowTable` slot lifecycle, the
scalar/columnar property proxying on :class:`FlowState`, the simulator's
batched (numpy) versus scalar rate-application paths being bit-identical,
and the no-op-rate-skip regression: a recompute touching one max-min
component must not re-rate flows in a disjoint component.
"""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.flowsim import ClusterSim, FlowState, FlowTable, TenantWorkload
from repro.flowsim import sim as sim_module
from repro.flowsim.workload import TenantArrival, WorkloadConfig
from repro.placement import LocalityPlacementManager
from repro.topology import TreeTopology


def make_flow(remaining=100.0, rate=2.0, updated=1.5):
    return FlowState(tenant_id=1, src_vm=0, dst_vm=1, links=(3, 4),
                     remaining=remaining, rate=rate, updated=updated)


class TestFlowTable:
    def test_adopt_moves_state_to_columns(self):
        table = FlowTable(capacity=4)
        flow = make_flow(remaining=100.0, rate=2.0, updated=1.5)
        table.adopt(flow)
        assert len(table) == 1
        assert flow.remaining == 100.0
        assert flow.rate == 2.0
        assert flow.updated == 1.5
        flow.remaining = 40.0
        assert table.remaining[flow._slot] == 40.0
        table.rate[flow._slot] = 7.0
        assert flow.rate == 7.0

    def test_release_copies_back_to_scalars(self):
        table = FlowTable(capacity=2)
        flow = make_flow()
        table.adopt(flow)
        flow.remaining = 12.5
        flow.rate = 3.0
        table.release(flow)
        assert len(table) == 0
        assert flow._table is None
        assert flow.remaining == 12.5
        assert flow.rate == 3.0
        # Detached flows are plain scalars again.
        flow.remaining = 9.0
        assert flow._remaining == 9.0

    def test_growth_preserves_values(self):
        table = FlowTable(capacity=2)
        flows = [make_flow(remaining=float(i)) for i in range(40)]
        for flow in flows:
            table.adopt(flow)
        assert len(table) == 40
        assert [f.remaining for f in flows] == [float(i) for i in range(40)]

    def test_slot_recycling(self):
        table = FlowTable(capacity=4)
        first = make_flow()
        table.adopt(first)
        slot = first._slot
        table.release(first)
        second = make_flow(remaining=5.0)
        table.adopt(second)
        assert second._slot == slot
        assert second.remaining == 5.0

    def test_double_adopt_rejected(self):
        table = FlowTable()
        flow = make_flow()
        table.adopt(flow)
        with pytest.raises(ValueError):
            table.adopt(flow)
        with pytest.raises(ValueError):
            FlowTable().release(flow)


def _locality_topo():
    return TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10))


def _rack_job(flow_bytes, time=0.0):
    request = TenantRequest(
        n_vms=16,
        guarantee=NetworkGuarantee(bandwidth=units.gbps(2),
                                   burst=1.5 * units.KB),
        tenant_class=TenantClass.CLASS_B)
    return TenantArrival(time=time, request=request, pairs=[(0, 15)],
                         flow_bytes=flow_bytes, compute_time=0.0)


class StaticWorkload:
    def __init__(self, items):
        self._items = items

    def arrivals(self, until):
        return iter([a for a in self._items if a.time < until])


class TestNoOpRateSkip:
    def test_disjoint_component_drain_skips_untouched_flows(self):
        """Draining one rack-local tenant must not re-rate the other.

        Two 16-VM tenants fill the two racks of a 32-slot tree; each
        runs one rack-local flow, so the max-min components are
        disjoint.  When the short flow drains, the recompute must leave
        the long flow's rate (and epoch) untouched: exactly two rate
        updates happen over the whole run, one per flow at admission.
        """
        manager = LocalityPlacementManager(_locality_topo())
        sim = ClusterSim(manager, sharing="maxmin")
        short = _rack_job(flow_bytes=1 * units.MB)
        long = _rack_job(flow_bytes=200 * units.MB)
        stats = sim.run(StaticWorkload([short, long]), until=30.0)
        assert stats.finished_jobs == 2
        assert sim.rate_update_count == 2
        # The departed flow was alone in its component, so the
        # drain-time recompute found an empty dirty closure and cost
        # nothing: one counted solve (admission) over two flows, ever.
        assert sim._mm_solver.recompute_count == 1
        assert sim._mm_solver.affected_flow_count == 2


class TestBatchScalarEquivalence:
    def test_batched_paths_match_scalar_paths_exactly(self):
        """Forcing the numpy batch path yields bit-identical stats.

        numpy float64 element-wise arithmetic is IEEE double
        arithmetic, so `_apply_rates_batch` / `_materialize_batch`
        must reproduce the scalar loop exactly, not approximately.
        """
        def run():
            topo = TreeTopology(n_pods=2, racks_per_pod=2,
                                servers_per_rack=4, slots_per_server=4,
                                link_rate=units.gbps(10),
                                oversubscription=2.0)
            manager = LocalityPlacementManager(topo)
            sim = ClusterSim(manager, sharing="maxmin")
            workload = TenantWorkload(
                WorkloadConfig(b_flow_bytes=20 * units.MB,
                               mean_compute_time=0.5),
                arrival_rate=6.0, seed=9)
            return sim.run(workload, until=8.0)

        original = sim_module._BATCH_MIN
        try:
            sim_module._BATCH_MIN = 10 ** 9   # always scalar
            scalar = run()
            sim_module._BATCH_MIN = 1         # always batch
            batched = run()
        finally:
            sim_module._BATCH_MIN = original
        assert batched.finished_jobs == scalar.finished_jobs
        assert batched.job_durations == scalar.job_durations
        assert batched.carried_bytes == scalar.carried_bytes
        assert batched.network_utilization == scalar.network_utilization
