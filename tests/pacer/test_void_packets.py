"""Void-packet pacing: gaps, quantization and the 68 ns claim."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.pacer.void_packets import (
    FRAME_OVERHEAD,
    MAX_VOID,
    MIN_VOID,
    VoidScheduler,
    min_void_spacing,
    split_void_bytes,
    void_gap_for_rate,
)


class TestMinSpacing:
    def test_the_paper_headline_number(self):
        """84 bytes at 10 Gbps is 67.2 ns -- the paper's '68 ns'."""
        spacing = min_void_spacing(units.gbps(10))
        assert spacing == pytest.approx(67.2e-9)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            min_void_spacing(0.0)


class TestGapArithmetic:
    def test_gap_for_one_gbps_on_ten(self):
        # 1 Gbps of 1500 B packets on a 10 Gbps wire: 9x the packet size.
        gap = void_gap_for_rate(units.gbps(1), units.gbps(10))
        assert gap == pytest.approx(9 * units.MTU)

    def test_gap_at_line_rate_is_zero(self):
        assert void_gap_for_rate(units.gbps(10), units.gbps(10)) == 0.0

    def test_gap_for_nine_gbps_is_sub_packet(self):
        # The paper: at 9 Gbps the pacer inserts ~150 B voids.
        gap = void_gap_for_rate(units.gbps(9), units.gbps(10))
        assert gap == pytest.approx(units.MTU / 9)

    def test_rejects_rate_above_line(self):
        with pytest.raises(ValueError):
            void_gap_for_rate(units.gbps(11), units.gbps(10))


class TestSplitVoidBytes:
    def test_zero_gap(self):
        assert split_void_bytes(0.0) == []

    def test_sub_half_byte_gap_is_noise(self):
        # Below the wire's resolution (half a byte) there is nothing to
        # pace; rounding to the nearest byte yields no void.
        assert split_void_bytes(0.4) == []

    def test_sub_frame_gap_rounds_up_never_early(self):
        # Regression: gaps under half a minimum frame used to be dropped,
        # letting the following data packet depart *before* its stamp.
        # Any positive gap must round UP to a full minimum void frame.
        assert split_void_bytes(MIN_VOID / 2 - 1) == [MIN_VOID]
        assert split_void_bytes(1.0) == [MIN_VOID]

    def test_small_gap_rounds_up_to_min_frame(self):
        frames = split_void_bytes(60.0)
        assert frames == [MIN_VOID]

    def test_exact_cover(self):
        for gap in [84, 200, 1520, 3000, 10000]:
            frames = split_void_bytes(gap)
            assert sum(frames) == gap
            assert all(MIN_VOID <= f <= MAX_VOID for f in frames)


class TestVoidScheduler:
    def test_paced_stream_hits_stamps(self):
        link = units.gbps(10)
        scheduler = VoidScheduler(link)
        interval = 1520 / units.gbps(1)  # 1 Gbps pacing
        packets = [(i * interval, units.MTU) for i in range(50)]
        schedule = scheduler.schedule(packets)
        # Every data packet leaves within half a void frame of its stamp.
        assert schedule.max_pacing_error() <= MIN_VOID / link + 1e-12

    def test_void_bytes_fill_the_gaps(self):
        link = units.gbps(10)
        scheduler = VoidScheduler(link)
        interval = 1520 / units.gbps(5)
        packets = [(i * interval, units.MTU) for i in range(100)]
        schedule = scheduler.schedule(packets)
        data_rate, void_rate = schedule.rates()
        # rates() reports wire occupancy (frame overhead included).
        assert data_rate == pytest.approx(units.gbps(5), rel=0.02)
        # Data + void saturate the wire.
        assert data_rate + void_rate == pytest.approx(link, rel=0.02)

    def test_idle_gaps_are_not_filled(self):
        scheduler = VoidScheduler(units.gbps(10),
                                  idle_threshold=50 * units.MICROS)
        packets = [(0.0, units.MTU), (1.0, units.MTU)]  # 1 s apart
        schedule = scheduler.schedule(packets)
        assert len(schedule.void_slots) == 0

    def test_back_to_back_line_rate_has_no_voids(self):
        link = units.gbps(10)
        scheduler = VoidScheduler(link)
        wire = (units.MTU + FRAME_OVERHEAD) / link
        packets = [(i * wire, units.MTU) for i in range(20)]
        schedule = scheduler.schedule(packets)
        assert len(schedule.void_slots) == 0
        data_rate, _ = schedule.rates()
        # Back-to-back frames occupy the whole wire.
        assert data_rate == pytest.approx(link, rel=1e-6)

    def test_rejects_decreasing_stamps(self):
        scheduler = VoidScheduler(units.gbps(10))
        with pytest.raises(ValueError):
            scheduler.schedule([(1.0, 100.0), (0.5, 100.0)])

    def test_empty_schedule(self):
        schedule = VoidScheduler(units.gbps(10)).schedule([])
        assert schedule.slots == []
        assert schedule.rates() == (0.0, 0.0)


class TestPacingErrorBound:
    """The scheduler's stamp-fidelity contract (section 5).

    Regression for the sub-frame-gap bug: gaps shorter than half a void
    frame used to be *dropped*, letting the following data packet depart
    up to ~42 byte-times before its token-bucket stamp -- i.e. faster
    than its guarantee.  The fixed scheduler only errs late (it rounds
    gaps up to a whole void frame); the only early departure allowed is
    the half-byte wire-quantization noise.
    """

    @given(st.lists(
        st.tuples(
            # Gap to the previous stamp, in byte-times on the wire:
            # exercises zero, sub-frame, multi-frame and idle gaps.
            st.floats(min_value=0.0, max_value=5e5),
            st.floats(min_value=64.0, max_value=float(units.MTU))),
        min_size=1, max_size=40))
    def test_data_never_departs_early_beyond_wire_quantum(self, stream):
        link = units.gbps(10)
        scheduler = VoidScheduler(link)
        stamps = []
        t = 0.0
        for gap_bytes, size in stream:
            t += gap_bytes / link
            stamps.append((t, size))
        schedule = scheduler.schedule(stamps)
        half_byte = 0.5 / link
        for slot in schedule.data_slots:
            assert slot.pacing_error >= -half_byte
        assert schedule.max_pacing_error() >= 0.0

    @given(st.lists(
        # Gaps wider than a full MTU frame: the wire is never backlogged,
        # so lateness is pure void-frame rounding, under one MIN_VOID.
        st.tuples(st.floats(min_value=float(MAX_VOID), max_value=4e4),
                  st.floats(min_value=64.0, max_value=float(units.MTU))),
        min_size=1, max_size=40))
    def test_unbacklogged_stream_is_late_by_under_one_void_frame(
            self, stream):
        link = units.gbps(10)
        scheduler = VoidScheduler(link, idle_threshold=5e4 / link)
        stamps = []
        t = 0.0
        for gap_bytes, size in stream:
            t += gap_bytes / link
            stamps.append((t, size))
        schedule = scheduler.schedule(stamps)
        assert schedule.max_pacing_error() < (MIN_VOID + 1) / link
