"""Communication patterns used across the evaluation.

* all-to-one: the partition-aggregate pattern of OLDI applications
  (class-A tenants);
* all-to-all: the shuffle pattern of data-parallel jobs (class-B);
* permutation-x: each VM talks to ``x`` randomly chosen other VMs
  (section 6.3's knob for traffic-matrix density; Permutation-N is
  all-to-all).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple


def all_to_one_pairs(vms: Sequence[int],
                     receiver_index: int = 0) -> List[Tuple[int, int]]:
    """Every VM sends to one receiver."""
    if not vms:
        return []
    receiver = vms[receiver_index]
    return [(vm, receiver) for vm in vms if vm != receiver]


def all_to_all_pairs(vms: Sequence[int]) -> List[Tuple[int, int]]:
    """Every ordered pair of distinct VMs."""
    return [(a, b) for a in vms for b in vms if a != b]


def permutation_pairs(vms: Sequence[int], x: float,
                      rng: random.Random) -> List[Tuple[int, int]]:
    """Each VM sends to ``x`` random distinct other VMs (Permutation-x).

    Fractional ``x`` means each VM sends to ``floor(x)`` destinations plus
    one more with probability ``x - floor(x)`` (so Permutation-0.5 has half
    the VMs sending to one destination each, in expectation).
    """
    if x < 0:
        raise ValueError("x must be >= 0")
    pairs: List[Tuple[int, int]] = []
    n = len(vms)
    if n < 2:
        return pairs
    for vm in vms:
        count = int(x)
        if rng.random() < x - count:
            count += 1
        count = min(count, n - 1)
        if count <= 0:
            continue
        others = [v for v in vms if v != vm]
        for dst in rng.sample(others, count):
            pairs.append((vm, dst))
    return pairs
