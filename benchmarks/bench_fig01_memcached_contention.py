"""Fig. 1: memcached request latency, alone vs with competing traffic.

The paper's motivating measurement: a memcached tenant (Facebook-ETC-like
values) shares five servers with a netperf tenant; under plain TCP the
99th-percentile RPC latency inflates by roughly an order of magnitude and
the 99.9th by far more.  The testbed is substituted by the packet-level
simulator (see DESIGN.md); a fixed per-request service time stands in for
the end-host stack the paper's numbers include.

Expected shape: contention multiplies the p99 by >= 5x and the p99.9 by
more, while the median moves far less.
"""

import random

import pytest

from repro import units
from repro.analysis import summarize
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import BulkApp, MemcachedApp
from repro.topology import TreeTopology
from repro.workloads import EtcWorkload, Fixed
from repro.workloads.patterns import all_to_all_pairs

from conftest import print_table, run_once

DURATION = 0.05
N_SERVERS = 3
SERVICE_TIME = Fixed(80 * units.MICROS)  # end-host stack stand-in


def run_scenario(with_netperf: bool):
    topo = TreeTopology(n_pods=1, racks_per_pod=1,
                        servers_per_rack=N_SERVERS, slots_per_server=4,
                        link_rate=units.gbps(10))
    net = PacketNetwork(topo, scheme="tcp")
    metrics = MetricsCollector()
    rng = random.Random(17)
    for vm in range(6):
        net.add_vm(vm, 1, vm % N_SERVERS)
    memcached = MemcachedApp(net, metrics, 1, server_vm=0,
                             client_vms=list(range(1, 6)),
                             workload=EtcWorkload(), rng=rng,
                             service_time=SERVICE_TIME)
    memcached.start()
    if with_netperf:
        vms_b = list(range(6, 12))
        for vm in vms_b:
            net.add_vm(vm, 2, vm % N_SERVERS)
        BulkApp(net, metrics, 2, all_to_all_pairs(vms_b),
                chunk_size=units.MB).start()
    net.sim.run(until=DURATION)
    return summarize(metrics.latencies(1))


def compute():
    return run_scenario(False), run_scenario(True)


@pytest.mark.benchmark(group="fig1")
def test_fig01_memcached_contention(benchmark):
    alone, contended = run_once(benchmark, compute)

    def fmt(s):
        return [f"{s.count}", f"{units.to_usec(s.median):.0f}",
                f"{units.to_usec(s.p99):.0f}",
                f"{units.to_usec(s.p999):.0f}",
                f"{units.to_usec(s.maximum):.0f}"]

    print_table("Fig. 1: memcached RPC latency (us)",
                ["scenario", "rpcs", "median", "p99", "p99.9", "max"],
                [["alone"] + fmt(alone),
                 ["with netperf"] + fmt(contended)])

    # The paper's shape: an order of magnitude at the tail.
    assert contended.p99 >= 5 * alone.p99
    assert contended.p999 >= 5 * alone.p999
    # The tail inflates far more than the median (tail-at-scale effect).
    assert (contended.p999 / alone.p999) > (contended.median
                                            / alone.median)
