"""Fig. 5: why bandwidth-aware placement is insufficient.

The paper's example: three servers behind a 10 Gbps switch with 300 KB
per-port buffers; a tenant wants nine VMs with 1 Gbps bandwidth, 100 KB
burst allowance, 1 ms delay and a 10 Gbps burst rate.  A bandwidth-aware
placement (4 + 4 + 1) lets eight VMs converge 800 KB on the ninth's port
-- 400 KB of queuing, overflowing the buffer -- while the balanced
3 + 3 + 3 placement needs only 300 KB.

This bench reproduces the paper's own burst arithmetic for both
placements and checks the overflow verdicts.
"""

import pytest

from repro import units
from repro.analysis.burst import burst_convergence, worst_port_backlog
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import OktopusPlacementManager
from repro.topology import TreeTopology

from conftest import print_table, run_once

BUFFER = 300 * units.KB


def fig5_topology():
    return TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        buffer_bytes=BUFFER)


FIG5_GUARANTEE = NetworkGuarantee(bandwidth=units.gbps(1),
                                  burst=100 * units.KB,
                                  delay=units.msec(1),
                                  peak_rate=units.gbps(10))


def compute():
    topo = fig5_topology()
    # (a) What a bandwidth-aware manager actually produces.
    okto = OktopusPlacementManager(fig5_topology())
    request = TenantRequest(n_vms=9, guarantee=FIG5_GUARANTEE,
                            tenant_class=TenantClass.CLASS_A)
    placement = okto.place(request)
    bandwidth_aware = placement.vms_per_server()
    # (b) The balanced placement Silo's example shows.
    balanced = {0: 3, 1: 3, 2: 3}

    rows = []
    verdicts = {}
    for label, assignment in [("bandwidth-aware", bandwidth_aware),
                              ("silo (balanced)", balanced)]:
        backlog, worst = worst_port_backlog(topo, assignment,
                                            FIG5_GUARANTEE)
        overflow = backlog > BUFFER
        verdicts[label] = (backlog, overflow)
        split = "+".join(str(c) for c in sorted(assignment.values(),
                                                reverse=True))
        rows.append([label, split,
                     f"{worst.burst_bytes / 1e3:.0f}KB",
                     f"{units.to_gbps(worst.arrival_rate):.0f}Gbps",
                     f"{backlog / 1e3:.0f}KB",
                     "OVERFLOW" if overflow else "fits"])
    return rows, verdicts


@pytest.mark.benchmark(group="fig5")
def test_fig05_placement_example(benchmark):
    rows, verdicts = run_once(benchmark, compute)
    print_table(
        "Fig. 5: worst-case burst convergence (300 KB port buffers)",
        ["placement", "split", "burst", "arrives at", "queued",
         "verdict"], rows)

    ba_backlog, ba_overflow = verdicts["bandwidth-aware"]
    silo_backlog, silo_overflow = verdicts["silo (balanced)"]
    # The paper's numbers: 400 KB vs 300 KB.
    assert ba_backlog == pytest.approx(400 * units.KB, rel=0.01)
    assert silo_backlog == pytest.approx(300 * units.KB, rel=0.01)
    assert ba_overflow
    assert not silo_overflow
