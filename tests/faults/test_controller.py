"""The self-healing cluster controller: release, fence, re-place, report."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.faults import FaultEvent, FaultTarget
from repro.obs import RingBufferSink
from repro.placement import ClusterController, SiloPlacementManager
from repro.topology import TreeTopology


def build_manager(servers_per_rack=2, racks=2, slots=4):
    topo = TreeTopology(n_pods=1, racks_per_pod=racks,
                        servers_per_rack=servers_per_rack,
                        slots_per_server=slots, link_rate=units.gbps(10),
                        oversubscription=2.5,
                        buffer_bytes=312 * units.KB)
    return SiloPlacementManager(topo)


def class_b_request(n_vms, mbps=250.0, tenant_id=None):
    kwargs = {} if tenant_id is None else {"tenant_id": tenant_id}
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(mbps),
                                   burst=15 * units.KB),
        tenant_class=TenantClass.CLASS_B, **kwargs)


def class_a_request(n_vms, mbps=250.0, delay=1e-3, tenant_id=None):
    kwargs = {} if tenant_id is None else {"tenant_id": tenant_id}
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.mbps(mbps),
                                   burst=15 * units.KB, delay=delay,
                                   peak_rate=units.gbps(1)),
        tenant_class=TenantClass.CLASS_A, **kwargs)


class TestCrashRecovery:
    def test_crash_relocates_tenant_off_dead_server(self):
        manager = build_manager()
        controller = ClusterController(manager)
        request = class_b_request(6)
        assert manager.place(request, now=0.0) is not None
        victim_server = next(iter(
            manager.placements[request.tenant_id].vms_per_server()))
        outcomes = controller.apply(
            FaultEvent.down(1.0, FaultTarget("server", victim_server)))
        assert outcomes == {request.tenant_id: "recovered"}
        # Still placed, but not on the crashed (cordoned) server.
        servers = manager.placements[request.tenant_id].vms_per_server()
        assert victim_server not in servers
        assert manager.cordoned_servers == [victim_server]
        assert manager.tenants_on_server(victim_server) == []

    def test_unaffected_tenants_are_left_alone(self):
        manager = build_manager()
        controller = ClusterController(manager)
        a = class_b_request(2)
        b = class_b_request(4)  # does not fit next to a: lands elsewhere
        assert manager.place(a, now=0.0) is not None
        assert manager.place(b, now=0.0) is not None
        server_a = next(iter(
            manager.placements[a.tenant_id].vms_per_server()))
        placement_b = manager.placements[b.tenant_id]
        outcomes = controller.apply(
            FaultEvent.down(1.0, FaultTarget("server", server_a)))
        assert b.tenant_id not in outcomes
        assert manager.placements[b.tenant_id] is placement_b

    def test_no_capacity_means_eviction_then_repair_readmits(self):
        manager = build_manager(servers_per_rack=1, racks=2, slots=4)
        controller = ClusterController(manager)
        spanning = class_b_request(8)  # needs both servers
        assert manager.place(spanning, now=0.0) is not None
        outcomes = controller.apply(
            FaultEvent.down(1.0, FaultTarget("server", 0)))
        assert outcomes == {spanning.tenant_id: "evicted"}
        assert spanning.tenant_id not in manager.placements
        # Repair: the evicted tenant is re-admitted (retry_evicted=True).
        outcomes = controller.apply(
            FaultEvent.up(3.0, FaultTarget("server", 0)))
        assert outcomes == {spanning.tenant_id: "recovered"}
        assert manager.cordoned_servers == []
        [row] = controller.report().rows
        assert row.outcome == "recovered"
        assert row.time_to_recover == pytest.approx(2.0)
        # 2 s without the guarantee, VM-weighted.
        assert row.guarantee_seconds_lost == pytest.approx(2.0 * 8)

    def test_flowsim_mode_does_not_resurrect_evicted_tenants(self):
        manager = build_manager(servers_per_rack=1, racks=2, slots=4)
        controller = ClusterController(manager, retry_evicted=False)
        spanning = class_b_request(8)
        assert manager.place(spanning, now=0.0) is not None
        controller.apply(FaultEvent.down(1.0, FaultTarget("server", 0)))
        outcomes = controller.apply(
            FaultEvent.up(3.0, FaultTarget("server", 0)))
        assert outcomes == {}
        assert spanning.tenant_id not in manager.placements


class TestDegradedMode:
    def test_degraded_link_is_fenced_for_admission(self):
        manager = build_manager()
        controller = ClusterController(manager)
        port_id = manager.topology.tor_up(0).port_id
        capacity = manager.states[port_id].port.capacity
        controller.apply(
            FaultEvent.degrade(1.0, FaultTarget("link", port_id), 0.25))
        # 75% of the link is fenced off from admission.
        assert manager.states[port_id].bandwidth == \
            pytest.approx(0.75 * capacity)
        controller.apply(
            FaultEvent.up(2.0, FaultTarget("link", port_id)))
        assert manager.states[port_id].bandwidth == 0.0

    def test_delay_tenant_falls_back_to_bandwidth_only(self):
        # A 600us delay budget admits rack-scope paths only.  After the
        # crash the survivors span both racks (a class-B blocker holds
        # rack 1's slots), so the full guarantee is infeasible but the
        # bandwidth-only fallback places cluster-wide -> degraded, and
        # the repair upgrades it back.
        manager = build_manager(servers_per_rack=2, racks=2, slots=4)
        controller = ClusterController(manager)
        request = class_a_request(6, mbps=400.0, delay=600e-6)
        assert manager.place(request, now=0.0) is not None
        assert set(manager.placements[request.tenant_id]
                   .vms_per_server()) == {0, 1}
        blocker = class_b_request(6, mbps=100.0)
        assert manager.place(blocker, now=0.0) is not None
        outcomes = controller.apply(
            FaultEvent.down(1.0, FaultTarget("server", 0)))
        assert outcomes == {request.tenant_id: "degraded"}
        # Still placed (bandwidth-only, now cross-rack); the original
        # guarantee stays in the controller's book for the upgrade.
        servers = manager.placements[request.tenant_id].vms_per_server()
        assert {manager.topology.rack_of(s) for s in servers} == {0, 1}
        outcomes = controller.apply(
            FaultEvent.up(2.0, FaultTarget("server", 0)))
        assert outcomes == {request.tenant_id: "recovered"}
        [row] = controller.report().rows
        assert row.time_to_recover == pytest.approx(1.0)
        assert row.guarantee_seconds_lost == pytest.approx(1.0 * 6)


class TestReporting:
    def test_recovery_events_reach_the_tracer(self):
        manager = build_manager()
        sink = RingBufferSink()
        controller = ClusterController(manager, tracer=sink)
        request = class_b_request(6)
        assert manager.place(request, now=0.0) is not None
        server = next(iter(
            manager.placements[request.tenant_id].vms_per_server()))
        controller.apply(FaultEvent.down(1.0, FaultTarget("server",
                                                          server)))
        kinds = [e.kind for e in sink.events]
        assert "fault.recovery" in kinds

    def test_departure_closes_the_outage_interval(self):
        manager = build_manager(servers_per_rack=1, racks=2, slots=4)
        controller = ClusterController(manager)
        spanning = class_b_request(8)
        assert manager.place(spanning, now=0.0) is not None
        controller.apply(
            FaultEvent.down(1.0, FaultTarget("server", 0)))
        controller.notify_departed(spanning.tenant_id, now=4.0)
        controller.finalize(end_time=100.0)
        [row] = controller.report().rows
        assert row.outcome == "evicted"
        # Accrues only up to departure, not to the campaign end.
        assert row.guarantee_seconds_lost == pytest.approx(3.0 * 8)

    def test_finalize_accrues_open_intervals(self):
        manager = build_manager(servers_per_rack=1, racks=2, slots=4)
        controller = ClusterController(manager)
        spanning = class_b_request(8)
        assert manager.place(spanning, now=0.0) is not None
        controller.apply(
            FaultEvent.down(1.0, FaultTarget("server", 0)))
        controller.finalize(end_time=5.0)
        controller.finalize(end_time=50.0)  # idempotent
        report = controller.report()
        assert report.guarantee_seconds_lost == pytest.approx(4.0 * 8)
        assert report.recovered_fraction() == 0.0
        assert report.mean_time_to_recover is None
