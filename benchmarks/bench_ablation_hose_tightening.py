"""Ablation: the hose-model aggregation tightening (section 4.2.2).

Silo adds tenant curves across a cut as ``A_{min(m, N-m)B, mS}`` instead
of the naive ``A_{mB, mS}`` -- the receiving side's hose caps the
sustainable rate, so reserving ``m*B`` would double-count.  This bench
measures what the tightening buys: how many tenants the same datacenter
admits with and without it, at two oversubscription levels.
"""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology

from conftest import print_table, run_once

N_REQUESTS = 60


def admitted_count(hose_tightening: bool, oversubscription: float) -> int:
    topo = TreeTopology(n_pods=1, racks_per_pod=4, servers_per_rack=5,
                        slots_per_server=8, link_rate=units.gbps(10),
                        oversubscription=oversubscription)
    manager = SiloPlacementManager(topo, hose_tightening=hose_tightening)
    admitted = 0
    for _ in range(N_REQUESTS):
        request = TenantRequest(
            n_vms=10,
            guarantee=NetworkGuarantee(bandwidth=units.gbps(1.5),
                                       burst=2 * units.KB,
                                       delay=units.msec(2),
                                       peak_rate=units.gbps(1.5)),
            tenant_class=TenantClass.CLASS_A)
        if manager.place(request) is not None:
            admitted += 1
    return admitted


def compute():
    rows = []
    gains = {}
    for oversub in (2.0, 5.0):
        tight = admitted_count(True, oversub)
        naive = admitted_count(False, oversub)
        gains[oversub] = (tight, naive)
        rows.append([f"1:{oversub:.0f}", str(naive), str(tight),
                     f"{(tight - naive) / max(naive, 1):+.0%}"])
    return rows, gains


@pytest.mark.benchmark(group="ablation-hose")
def test_ablation_hose_tightening(benchmark):
    rows, gains = run_once(benchmark, compute)
    print_table(
        "Ablation: tenants admitted with naive vs tightened hose "
        "aggregation (60 offered)",
        ["oversubscription", "naive m*B", "min(m,N-m)*B", "gain"], rows)

    for oversub, (tight, naive) in gains.items():
        # Tightening never hurts, and under oversubscription it strictly
        # helps: the naive sum exhausts uplink reservations early.
        assert tight >= naive
    assert gains[5.0][0] > gains[5.0][1]
