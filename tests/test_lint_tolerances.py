"""Lint: no inline absolute epsilons in comparisons.

The quantities this codebase compares span ~12 orders of magnitude
(bytes/second rates around 1e9, simulation times around 1e-6), so a
bare absolute tolerance like ``x <= y + 1e-9`` is either exact equality
in disguise (rates: 1e-9 is below one ulp) or enormous slack (times).
Comparisons must instead use a *named* module constant -- whose
definition documents which magnitude regime makes it valid -- or a
relative form like ``y * (1.0 + _REL_TOL)``.

The check walks every token in ``src/repro``: a tiny exponent literal
is flagged when it participates directly in arithmetic or comparison
(preceded by ``+ - < <= > >= == !=``).  Definitions (``_EPS = 1e-12``),
keyword arguments (``rel_tol=1e-9``) and container literals are exempt
-- those are the named-constant escape hatch this rule funnels code
toward.
"""

import io
import pathlib
import tokenize

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Operators that make a literal an inline tolerance.
_FLAGGED_PRECEDING = {"+", "-", "<", "<=", ">", ">=", "==", "!="}
#: Magnitude band of "suspicious epsilon" literals.
_LOW, _HIGH = 1e-13, 1e-4
_SIGNIFICANT = frozenset([tokenize.NAME, tokenize.NUMBER, tokenize.OP,
                          tokenize.STRING])


def _inline_tolerances(path):
    """(line, literal) pairs of inline epsilon comparisons in one file."""
    hits = []
    prev = None
    with open(path, "rb") as handle:
        for tok in tokenize.tokenize(handle.readline):
            if tok.type == tokenize.NUMBER:
                text = tok.string.lower()
                if "e" in text and "j" not in text:
                    value = abs(float(text))
                    if (_LOW < value < _HIGH and prev is not None
                            and prev.type == tokenize.OP
                            and prev.string in _FLAGGED_PRECEDING):
                        hits.append((tok.start[0], tok.string))
            if tok.type in _SIGNIFICANT:
                prev = tok
    return hits


def test_no_inline_absolute_tolerances_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for line, literal in _inline_tolerances(path):
            offenders.append(
                f"{path.relative_to(SRC.parent.parent)}:{line}: "
                f"inline epsilon {literal} -- use a named, documented "
                f"constant (or a relative tolerance)")
    assert not offenders, "\n" + "\n".join(offenders)


class TestTheLintItself:
    """The linter must catch the patterns it exists for."""

    def _lint_source(self, source):
        tokens = io.BytesIO(source.encode())
        hits = []
        prev = None
        for tok in tokenize.tokenize(tokens.readline):
            if tok.type == tokenize.NUMBER:
                text = tok.string.lower()
                if "e" in text and "j" not in text:
                    value = abs(float(text))
                    if (_LOW < value < _HIGH and prev is not None
                            and prev.type == tokenize.OP
                            and prev.string in _FLAGGED_PRECEDING):
                        hits.append(tok.string)
            if tok.type in _SIGNIFICANT:
                prev = tok
        return hits

    def test_flags_comparison_and_additive_slack(self):
        assert self._lint_source("ok = x <= y + 1e-9\n") == ["1e-9"]
        assert self._lint_source("if gap <= 1e-12: pass\n") == ["1e-12"]
        assert self._lint_source("done = r < 1e-6\n") == ["1e-6"]

    def test_exempts_definitions_and_kwargs(self):
        assert self._lint_source("_EPS = 1e-12\n") == []
        assert self._lint_source("isclose(a, b, rel_tol=1e-9)\n") == []
        assert self._lint_source("xs = [1e-9, 2e-9]\n") == []

    def test_exempts_ordinary_magnitudes(self):
        assert self._lint_source("big = x + 1e6\n") == []
        assert self._lint_source("frac = x < 0.5\n") == []
