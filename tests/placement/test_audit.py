"""Admission audit trail: which constraint bound each decision.

Silo rejects a tenant for one of two reasons from the paper's admission
criteria -- the delay guarantee cannot be met at any scope, or the
per-port queueing constraints fail -- plus the trivial "no slots left".
The audit log must attribute every rejection to the right one.
"""

import io

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.obs import RingBufferSink
from repro.placement import SiloPlacementManager
from repro.placement.audit import (
    CONSTRAINT_CAPACITY,
    CONSTRAINT_DELAY,
    CONSTRAINT_NONE,
    CONSTRAINT_QUEUE_BOUND,
    AdmissionAudit,
)
from repro.topology import TreeTopology


def make_topo(**kwargs):
    defaults = dict(n_pods=1, racks_per_pod=2, servers_per_rack=2,
                    slots_per_server=4, link_rate=units.gbps(10),
                    oversubscription=5.0, buffer_bytes=312 * units.KB)
    defaults.update(kwargs)
    return TreeTopology(**defaults)


def request(tenant_id=0, n_vms=4, bandwidth=units.gbps(0.25),
            burst=15 * units.KB, delay=units.msec(1),
            peak=units.gbps(1)):
    return TenantRequest(
        tenant_id=tenant_id, n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=bandwidth, burst=burst,
                                   delay=delay, peak_rate=peak),
        tenant_class=TenantClass.CLASS_A)


def audited_manager(topo=None, tracer=None):
    audit = AdmissionAudit()
    manager = SiloPlacementManager(topo or make_topo(), audit=audit,
                                   tracer=tracer)
    return manager, audit


class TestConstraintAttribution:
    def test_admission_records_none_and_scope(self):
        manager, audit = audited_manager()
        assert manager.place(request(n_vms=4), now=1.5) is not None
        assert len(audit) == 1
        record = audit.records[0]
        assert record.admitted
        assert record.constraint == CONSTRAINT_NONE
        assert record.scope == "server"
        assert record.time == 1.5
        assert record.n_vms == 4
        assert record.tenant_class == "CLASS_A"

    def test_scope_capping_delay_is_a_delay_rejection(self):
        manager, audit = audited_manager()
        # Tighter than one rack's path queue capacity: the tenant may not
        # leave a single server, yet 5 VMs need more than the 4 slots a
        # server has.  Slots exist cluster-wide, so the binding
        # constraint is the delay guarantee, not capacity.
        tight = manager.topology.scope_queue_capacity("rack") / 2
        assert manager.place(request(n_vms=5, delay=tight)) is None
        assert audit.records[-1].constraint == CONSTRAINT_DELAY
        assert audit.records[-1].scope is None

    def test_full_cluster_is_a_capacity_rejection(self):
        manager, audit = audited_manager()
        # 16 slots total; 17 VMs cannot fit regardless of queueing.
        assert manager.place(request(n_vms=17)) is None
        assert audit.records[-1].constraint == CONSTRAINT_CAPACITY

    def test_port_check_failure_is_a_queue_bound_rejection(self):
        manager, audit = audited_manager()
        # 8 VMs must span >= 2 servers; the tightened hose aggregate
        # min(4, 4) * 6 Gbps = 24 Gbps swamps a 10 Gbps NIC, so slots
        # exist but no arrangement passes the port checks.
        big = request(n_vms=8, bandwidth=units.gbps(6), delay=None,
                      peak=units.gbps(10))
        assert manager.place(big) is None
        assert audit.records[-1].constraint == CONSTRAINT_QUEUE_BOUND

    def test_constraint_counts_aggregate(self):
        manager, audit = audited_manager()
        manager.place(request(tenant_id=0, n_vms=4))
        tight = manager.topology.scope_queue_capacity("rack") / 2
        manager.place(request(tenant_id=1, n_vms=5, delay=tight))
        manager.place(request(tenant_id=2, n_vms=17))
        counts = audit.constraint_counts()
        assert counts == {CONSTRAINT_NONE: 1, CONSTRAINT_DELAY: 1,
                          CONSTRAINT_CAPACITY: 1}
        assert len(audit.rejections()) == 2


class TestOutputs:
    def test_summary_line(self):
        manager, audit = audited_manager()
        manager.place(request(tenant_id=0, n_vms=4))
        manager.place(request(tenant_id=1, n_vms=17))
        summary = audit.summary()
        assert "admitted=1" in summary
        assert "capacity=1" in summary

    def test_write_csv(self):
        manager, audit = audited_manager()
        manager.place(request(n_vms=4), now=0.25)
        out = io.StringIO()
        audit.write_csv(out)
        lines = out.getvalue().splitlines()
        assert lines[0] == ("seq,tenant_id,n_vms,tenant_class,admitted,"
                            "constraint,scope,time")
        assert lines[1].startswith("0,0,4,CLASS_A,")

    def test_tracer_emits_admission_events(self):
        sink = RingBufferSink()
        manager, audit = audited_manager(tracer=sink)
        manager.place(request(tenant_id=0, n_vms=4), now=2.0)
        manager.place(request(tenant_id=1, n_vms=17), now=3.0)
        events = sink.of_kind("admission")
        assert len(events) == len(audit.records) == 2
        assert events[0].admitted and events[0].constraint == "none"
        assert not events[1].admitted
        assert events[1].constraint == CONSTRAINT_CAPACITY
        assert events[1].time == 3.0

    def test_audit_off_by_default_costs_nothing(self):
        manager = SiloPlacementManager(make_topo())
        assert manager.audit is None and manager.tracer is None
        assert manager.place(request(n_vms=4)) is not None
