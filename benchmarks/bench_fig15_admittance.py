"""Fig. 15: admitted requests at moderate and high offered load.

A Poisson tenant stream (half class-A all-to-one, half class-B
permutation) offered identically to three placement policies at two load
levels (calibrated so the reserved policies sit near ~75% and ~90% mean
occupancy, the paper's operating points).

Reproduced claims:

* at moderate load every policy admits the large majority of tenants,
  and Silo's full (bandwidth + delay + burst) admission control costs
  only a few percent versus bandwidth-only Oktopus (the paper's "4%
  fewer accepted tenants");
* Silo rejects class-A at least as hard as class-B (delay is the scarce
  constraint);
* at high load everyone's admittance drops, and Silo stays within a few
  percent of Oktopus.

Documented deviation (see EXPERIMENTS.md): the paper additionally finds
locality-based placement admitting *less* than Silo at 90% occupancy,
an emergent effect of outlier tenants at 32K-server scale; at this
reproduction's 320-server scale, locality's work-conserving jobs finish
faster than reserved-rate jobs, so its measured occupancy -- and hence
rejection rate -- stays lower.  We report locality for comparison but do
not assert the paper's direction.
"""

import pytest

from repro import units
from repro.core.tenant import TenantClass
from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
from repro.placement import (
    LocalityPlacementManager,
    OktopusPlacementManager,
    SiloPlacementManager,
)
from repro.topology import TreeTopology

from conftest import print_table, run_once

HORIZON = 150.0
POLICIES = [
    ("locality", LocalityPlacementManager, "maxmin"),
    ("oktopus", OktopusPlacementManager, "reserved"),
    ("silo", SiloPlacementManager, "reserved"),
]

#: Arrival-rate multipliers calibrated to land the reserved policies near
#: the paper's 75% / 90% mean occupancies.
LOADS = [("moderate", 2.2), ("high", 4.0)]

#: Class-A delay scaled so it binds placement to a rack of *this*
#: topology, as the paper's 1 ms bound confined tenants to a sub-tree of
#: its fabric (queue capacities differ with link speeds).
WORKLOAD = WorkloadConfig(b_flow_bytes=250 * units.MB,
                          a_flow_bytes=5 * units.MB,
                          mean_compute_time=8.0,
                          a_delay=600 * units.MICROS,
                          permutation_x=3, mean_vms=10, max_vms=16)


def build_topology():
    return TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=10,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0)


def run_policy(manager_class, sharing, boost):
    topo = build_topology()
    manager = manager_class(topo)
    workload = TenantWorkload.for_occupancy(WORKLOAD, 0.5,
                                            topo.n_slots, seed=31)
    workload.arrival_rate *= boost
    sim = ClusterSim(manager, sharing=sharing)
    stats = sim.run(workload, until=HORIZON)
    return {
        "total": manager.admitted_fraction(),
        "class_a": manager.admitted_fraction(TenantClass.CLASS_A),
        "class_b": manager.admitted_fraction(TenantClass.CLASS_B),
        "occupancy": stats.mean_occupancy,
    }


def compute():
    results = {}
    for load_label, boost in LOADS:
        for name, manager_class, sharing in POLICIES:
            results[(load_label, name)] = run_policy(manager_class,
                                                     sharing, boost)
    return results


@pytest.mark.benchmark(group="fig15")
def test_fig15_admittance(benchmark):
    results = run_once(benchmark, compute)

    rows = []
    for load_label, _ in LOADS:
        for name, _, _ in POLICIES:
            r = results[(load_label, name)]
            rows.append([
                load_label, name,
                f"{r['total']:.1%}", f"{r['class_a']:.1%}",
                f"{r['class_b']:.1%}", f"{r['occupancy']:.1%}",
            ])
    print_table("Fig. 15: admitted requests by policy and load",
                ["load", "policy", "total", "class-A", "class-B",
                 "mean occupancy"], rows)

    low = {name: results[("moderate", name)] for name, _, _ in POLICIES}
    high = {name: results[("high", name)] for name, _, _ in POLICIES}
    # Moderate load: the large majority is admitted by every policy.
    assert low["locality"]["total"] > 0.95
    assert low["oktopus"]["total"] > 0.8
    assert low["silo"]["total"] > 0.8
    # Silo's extra constraints cost at most a few percent vs Oktopus
    # (the paper's "4% fewer accepted tenants" figure).
    assert low["silo"]["total"] >= low["oktopus"]["total"] - 0.06
    assert high["silo"]["total"] >= high["oktopus"]["total"] - 0.06
    # Silo rejects class-A at least as hard as class-B: delay is the
    # scarce resource (its placements are confined in the hierarchy).
    assert low["silo"]["class_a"] <= low["silo"]["class_b"] + 0.03
    # High load bites everyone.
    for name, _, _ in POLICIES:
        assert high[name]["total"] < low[name]["total"]
