"""Observability hooks in the fluid simulator.

Same contract as the packet simulator's tracing tests: events mirror the
simulator's own accounting, and running with no sink attached changes
nothing.
"""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.flowsim import ClusterSim
from repro.flowsim.workload import TenantArrival
from repro.obs import RingBufferSink
from repro.placement import SiloPlacementManager
from repro.placement.audit import AdmissionAudit
from repro.topology import TreeTopology


def topo():
    return TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=2.0)


def arrival(tenant_id, time=0.0, n_vms=2, bandwidth=units.gbps(1),
            flow_bytes=10 * units.MB):
    request = TenantRequest(
        tenant_id=tenant_id, n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=bandwidth,
                                   burst=1.5 * units.KB),
        tenant_class=TenantClass.CLASS_B)
    pairs = [(i, (i + 1) % n_vms) for i in range(n_vms)]
    return TenantArrival(time=time, request=request, pairs=pairs,
                         flow_bytes=flow_bytes, compute_time=0.0)


class StaticWorkload:
    def __init__(self, items):
        self._items = items

    def arrivals(self, until):
        return iter([a for a in self._items if a.time < until])


def run_traced(sink, audit=None, utilization=False):
    manager = SiloPlacementManager(topo(), audit=audit, tracer=sink)
    sim = ClusterSim(manager, sharing="reserved", tracer=sink)
    series = (sim.monitor_utilization(interval=0.1)
              if utilization else None)
    items = [arrival(0, time=0.0), arrival(1, time=0.5)]
    stats = sim.run(StaticWorkload(items), until=10.0)
    return stats, series


class TestFlowEvents:
    def test_lifecycle_events_match_accounting(self):
        sink = RingBufferSink()
        stats, _ = run_traced(sink)
        starts = sink.of_kind("flow.start")
        finishes = sink.of_kind("flow.finish")
        # Two tenants, two flows each (the ring of 2 VMs has 2 pairs).
        assert len(starts) == 4
        assert len(finishes) == 4
        assert {e.tenant_id for e in starts} == {0, 1}
        # Each flow's traced latency matches the fluid model: 10 MB over
        # a 1 Gbps hose shared by nothing else.
        expected = 10 * units.MB / units.gbps(1)
        for event in finishes:
            assert event.latency == pytest.approx(expected, rel=0.01)

    def test_admission_events_and_audit(self):
        sink = RingBufferSink()
        audit = AdmissionAudit()
        stats, _ = run_traced(sink, audit=audit)
        decisions = sink.of_kind("admission")
        assert len(decisions) == len(audit.records) == 2
        assert all(d.admitted for d in decisions)
        # Arrival times annotate the decisions.
        assert sorted(d.time for d in decisions) == [0.0, 0.5]

    def test_utilization_series_records(self):
        manager = SiloPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        series = sim.monitor_utilization(interval=0.1)
        # 8 VMs exceed one 4-slot server, so the flows cross real links
        # (same-server traffic would leave utilization at zero).
        sim.run(StaticWorkload([arrival(0, n_vms=8)]), until=10.0)
        assert series.count > 0
        peak = max(b.vmax for b in series.buckets())
        assert 0.0 < peak <= 1.0

    def test_tracing_does_not_change_results(self):
        def run(sink):
            manager = SiloPlacementManager(topo(), tracer=sink)
            sim = ClusterSim(manager, sharing="reserved", tracer=sink)
            items = [arrival(0, time=0.0), arrival(1, time=0.5)]
            stats = sim.run(StaticWorkload(items), until=10.0)
            return (stats.finished_jobs, tuple(stats.job_durations),
                    manager.accepted, manager.rejected)

        assert run(None) == run(RingBufferSink())
