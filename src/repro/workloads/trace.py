"""Message-trace capture and replay.

Lets users drive the packet simulator with recorded traffic instead of
synthetic generators: a trace is a time-ordered list of message events
``(time, src_vm, dst_vm, size)``, loadable from CSV or JSON-lines files.
The same format works the other way -- a finished simulation's
:class:`~repro.phynet.metrics.MetricsCollector` can be dumped back out,
so experiments are replayable and diffable.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.phynet.metrics import MetricsCollector
from repro.phynet.network import PacketNetwork

_FIELDS = ("time", "src_vm", "dst_vm", "size")


@dataclass(frozen=True)
class MessageEvent:
    """One recorded message send."""

    time: float
    src_vm: int
    dst_vm: int
    size: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be >= 0")
        if self.size <= 0:
            raise ValueError("message size must be positive")
        if self.src_vm == self.dst_vm:
            raise ValueError("a message needs two distinct VMs")


class MessageTrace:
    """A time-ordered sequence of message events."""

    def __init__(self, events: Iterable[MessageEvent]):
        self.events: List[MessageEvent] = sorted(events,
                                                 key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def duration(self) -> float:
        """Time of the last event (0 for an empty trace)."""
        return self.events[-1].time if self.events else 0.0

    @property
    def total_bytes(self) -> float:
        """Total bytes across all events."""
        return sum(e.size for e in self.events)

    # -- file I/O ------------------------------------------------------------

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "MessageTrace":
        """Load from CSV with a ``time,src_vm,dst_vm,size`` header."""
        events = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            missing = set(_FIELDS) - set(reader.fieldnames or ())
            if missing:
                raise ValueError(f"trace CSV missing columns: "
                                 f"{sorted(missing)}")
            for row in reader:
                events.append(MessageEvent(
                    time=float(row["time"]), src_vm=int(row["src_vm"]),
                    dst_vm=int(row["dst_vm"]), size=float(row["size"])))
        return cls(events)

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "MessageTrace":
        """Load from JSON lines, one event object per line."""
        events = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                events.append(MessageEvent(
                    time=float(record["time"]),
                    src_vm=int(record["src_vm"]),
                    dst_vm=int(record["dst_vm"]),
                    size=float(record["size"])))
        return cls(events)

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_FIELDS)
            for event in self.events:
                writer.writerow([event.time, event.src_vm, event.dst_vm,
                                 event.size])

    @classmethod
    def from_metrics(cls, metrics: MetricsCollector) -> "MessageTrace":
        """Capture a finished run's messages as a replayable trace."""
        events = []
        for record in metrics.records:
            if record.src_vm == record.dst_vm:
                continue
            events.append(MessageEvent(time=record.start,
                                       src_vm=record.src_vm,
                                       dst_vm=record.dst_vm,
                                       size=record.size))
        return cls(events)


class TraceReplayer:
    """Inject a trace's messages into a packet network."""

    def __init__(self, network: PacketNetwork, metrics: MetricsCollector,
                 tenant_id: int):
        self.network = network
        self.metrics = metrics
        self.tenant_id = tenant_id

    def schedule(self, trace: MessageTrace, offset: float = 0.0) -> None:
        """Arm every event; run the simulator afterwards to execute."""
        for event in trace:
            self.network.sim.schedule_at(offset + event.time,
                                         self._send, event)

    def _send(self, event: MessageEvent) -> None:
        record = self.metrics.new_message(self.tenant_id, event.src_vm,
                                          event.dst_vm, event.size,
                                          self.network.sim.now)
        flow = self.network.transport(event.src_vm, event.dst_vm)
        flow.send_message(record)
