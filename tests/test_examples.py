"""Smoke tests: the fast example scripts and doc examples run end to end."""

import os
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bound holds!" in out
        assert "switch drops: 0" in out

    def test_pacer_wire_view(self):
        out = run_example("pacer_wire_view.py")
        assert "67.2 ns" in out
        assert "void" in out

    def test_guarantee_inference(self):
        out = run_example("guarantee_inference.py", timeout=300.0)
        assert "inferred guarantee" in out
        assert "ACCEPTED" in out

    def test_campaign_sweep(self):
        out = run_example("campaign_sweep.py", timeout=300.0)
        assert out.count("byte-identical") == 2
        assert "DIFFER" not in out
        assert "resuming" in out
        for policy in ("locality", "oktopus", "silo"):
            assert policy in out


def architecture_doc_commands():
    """The commands between ARCHITECTURE.md's ``hybrid-examples`` markers."""
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    block = text.split("<!-- hybrid-examples:begin -->")[1]
    block = block.split("<!-- hybrid-examples:end -->")[0]
    commands, pending = [], ""
    for line in block.splitlines():
        line = line.strip()
        if not line or line.startswith(("#", "```")):
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        commands.append(pending + line)
        pending = ""
    return commands


class TestArchitectureDocExamples:
    """The hybrid tutorial's CLI examples stay runnable verbatim."""

    def test_markers_present_and_nonempty(self):
        commands = architecture_doc_commands()
        assert commands, "no commands between the hybrid-examples markers"
        assert any("hybrid" in c for c in commands)

    @pytest.mark.parametrize(
        "command", architecture_doc_commands(),
        ids=lambda c: " ".join(shlex.split(c)[3:5]))
    def test_example_runs_verbatim(self, command, tmp_path):
        argv = shlex.split(command.replace("/tmp/repro-demo",
                                           str(tmp_path)))
        assert argv[:3] == ["python", "-m", "repro"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p)
        proc = subprocess.run([sys.executable, *argv[1:]], cwd=REPO,
                              env=env, capture_output=True, text=True,
                              timeout=300)
        assert proc.returncode == 0, proc.stderr
