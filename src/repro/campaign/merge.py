"""Deterministic aggregation of per-cell results.

A campaign's merge stage runs after every cell has a checkpoint.  It
processes cells strictly in spec commit order, so anything built here
is independent of worker count and completion order -- the property
the byte-identity guarantees rest on.  This module holds the reusable
reductions:

* :func:`sum_counters` -- recursively sum numeric leaves of nested
  dicts (fault sweep pooling over seeds, drop/pushout totals);
* :func:`pool_values` / :func:`pooled_stats` -- concatenate per-cell
  value lists and summarize them;
* :func:`bucket_rows` / :func:`merge_bucket_rows` -- turn a
  :class:`~repro.obs.timeseries.TimeSeries` into JSON-ready bucket
  rows and combine rows from many cells bucket-by-bucket (counts sum,
  means weight by count, extremes widen).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["sum_counters", "pool_values", "pooled_stats", "bucket_rows",
           "merge_bucket_rows"]


def sum_counters(parts: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Recursively sum the numeric leaves of several counter dicts.

    Keys are unioned; numbers add; nested dicts recurse; ``None``
    leaves are skipped (a cell with no observation contributes
    nothing); any other type must be equal across parts or the merge
    refuses rather than silently picking one.
    """
    merged: Dict[str, Any] = {}
    for part in parts:
        for key, value in part.items():
            if value is None:
                continue
            if key not in merged or merged[key] is None:
                merged[key] = (sum_counters([value])
                               if isinstance(value, Mapping) else value)
            elif isinstance(value, Mapping):
                if not isinstance(merged[key], dict):
                    raise ValueError(f"counter {key!r} is a dict in one "
                                     f"cell and a scalar in another")
                merged[key] = sum_counters([merged[key], value])
            elif isinstance(value, bool) or not isinstance(value,
                                                           (int, float)):
                if merged[key] != value:
                    raise ValueError(f"non-numeric counter {key!r} "
                                     f"differs across cells: "
                                     f"{merged[key]!r} != {value!r}")
            else:
                merged[key] = merged[key] + value
    return merged


def pool_values(parts: Iterable[Sequence[float]]) -> List[float]:
    """Concatenate per-cell value lists in cell order."""
    pooled: List[float] = []
    for part in parts:
        pooled.extend(part)
    return pooled


def pooled_stats(values: Sequence[float]) -> Dict[str, Optional[float]]:
    """Count/mean/min/max summary of pooled values (``None`` mean if empty)."""
    if not values:
        return {"count": 0, "mean": None, "min": None, "max": None}
    return {"count": len(values), "mean": sum(values) / len(values),
            "min": min(values), "max": max(values)}


def bucket_rows(series) -> List[Dict[str, float]]:
    """JSON-ready rows of a :class:`TimeSeries`'s buckets.

    The row schema matches :meth:`TimeSeries.write_csv`'s bucket
    columns, so a checkpointed series round-trips into the same plots.
    """
    return [{"start": b.start, "count": b.count, "mean": b.mean,
             "min": b.vmin, "max": b.vmax, "last": b.last}
            for b in series.buckets()]


def merge_bucket_rows(parts: Iterable[Sequence[Mapping[str, float]]]
                      ) -> List[Dict[str, float]]:
    """Combine bucket rows from many cells, aligned on bucket start.

    Counts sum, means combine count-weighted, min/max widen; ``last``
    is taken from the latest part (in iteration order) contributing to
    the bucket, which is deterministic because the merge stage feeds
    parts in spec commit order.
    """
    merged: Dict[float, Dict[str, float]] = {}
    for part in parts:
        for row in part:
            start = row["start"]
            into = merged.get(start)
            if into is None:
                merged[start] = dict(row)
                continue
            total = into["count"] + row["count"]
            into["mean"] = (into["mean"] * into["count"]
                            + row["mean"] * row["count"]) / total
            into["count"] = total
            into["min"] = min(into["min"], row["min"])
            into["max"] = max(into["max"], row["max"])
            into["last"] = row["last"]
    return [merged[start] for start in sorted(merged)]
