"""Priority-aware buffer admission: push-out protects guaranteed traffic."""

import pytest

from repro import units
from repro.phynet.engine import Simulator
from repro.phynet.packet import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_GUARANTEED,
    Packet,
)
from repro.phynet.port import OutputPort


def port(sim, buffer_bytes=4500.0):
    delivered = []
    p = OutputPort(sim, "t", units.gbps(10), buffer_bytes,
                   on_delivery=delivered.append)
    return p, delivered


def packet(priority):
    return Packet(src=0, dst=1, size=1500.0, route=[], priority=priority)


class TestPushOut:
    def test_guaranteed_evicts_best_effort(self):
        sim = Simulator()
        p, delivered = port(sim)
        # One packet transmits immediately; fill the 3-packet buffer with
        # best effort, then offer guaranteed traffic.
        blocker = packet(PRIORITY_GUARANTEED)
        p.enqueue(blocker)
        low = [packet(PRIORITY_BEST_EFFORT) for _ in range(3)]
        for pk in low:
            p.enqueue(pk)
        high = [packet(PRIORITY_GUARANTEED) for _ in range(3)]
        for pk in high:
            p.enqueue(pk)
        sim.run()
        # All guaranteed packets made it; best effort was pushed out.
        for pk in high:
            assert pk in delivered
        # Evictions are pushouts, not tail drops: conflating the two made
        # drop-rate metrics blame congestion for deliberate evictions.
        assert p.stats.pushouts == 3
        assert p.stats.pushed_out_bytes == 3 * 1500.0
        assert p.stats.drops == 0
        assert p.stats.dropped_bytes == 0.0

    def test_guaranteed_still_drops_against_guaranteed(self):
        sim = Simulator()
        p, delivered = port(sim)
        packets = [packet(PRIORITY_GUARANTEED) for _ in range(8)]
        for pk in packets:
            p.enqueue(pk)
        sim.run()
        # No class to push out: classic drop-tail within the class.
        assert p.stats.drops > 0
        assert len(delivered) + p.stats.drops == 8

    def test_best_effort_never_evicts_anything(self):
        sim = Simulator()
        p, delivered = port(sim)
        blocker = packet(PRIORITY_GUARANTEED)
        p.enqueue(blocker)
        high = [packet(PRIORITY_GUARANTEED) for _ in range(3)]
        for pk in high:
            p.enqueue(pk)
        low = packet(PRIORITY_BEST_EFFORT)
        p.enqueue(low)
        sim.run()
        assert low not in delivered
        for pk in high:
            assert pk in delivered

    def test_eviction_notifies_victim_flow(self):
        class Spy:
            def __init__(self):
                self.drops = []

            def on_drop(self, pk):
                self.drops.append(pk)

        sim = Simulator()
        p, _ = port(sim)
        spy = Spy()
        p.enqueue(packet(PRIORITY_GUARANTEED))  # occupies the wire
        victim = packet(PRIORITY_BEST_EFFORT)
        victim.flow = spy
        for _ in range(3):
            p.enqueue(packet(PRIORITY_BEST_EFFORT))
        # Buffer is full of BE; this high packet evicts from the BE tail.
        p.enqueue(victim)  # dropped on entry (buffer full, BE)
        sim.run()
        assert victim in spy.drops
