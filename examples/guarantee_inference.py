#!/usr/bin/env python
"""Infer a tenant's guarantees from its own measured traffic.

Section 4.1 expects tenants to pick {B, S} with tools like Cicada.  This
example closes that loop end to end:

1. run a bursty application on the packet simulator and *capture* its
   traffic as a trace;
2. extract the empirical arrival envelope (the burst each candidate
   sustained rate would need) and pick an operating point;
3. admit a tenant with the inferred guarantee and verify, by replaying
   the same trace through a Silo pacer, that nothing is throttled late.

Run:  python examples/guarantee_inference.py
"""

import random

from repro import NetworkGuarantee, SiloController, TenantClass, TenantRequest
from repro import units
from repro.netcalc.inference import empirical_envelope, infer_guarantee
from repro.netcalc.trace import conforms
from repro.netcalc.arrival import token_bucket
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import EpochBurstApp
from repro.topology import TreeTopology
from repro.workloads import Fixed
from repro.workloads.trace import MessageTrace


def capture_trace() -> MessageTrace:
    """Step 1: record a bursty OLDI-ish workload."""
    topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10))
    net = PacketNetwork(topo)
    metrics = MetricsCollector()
    for vm in range(6):
        net.add_vm(vm, 1, vm % 3)
    app = EpochBurstApp(net, metrics, 1, list(range(6)),
                        Fixed(15 * units.KB), epoch=units.msec(2),
                        rng=random.Random(21))
    app.start(phase=0.0)
    net.sim.run(until=0.2)
    return MessageTrace.from_metrics(metrics)


def main() -> None:
    trace = capture_trace()
    # Per-sender view: take one worker's messages to the aggregator.
    sender = [(e.time, e.size) for e in trace if e.src_vm == 1]
    print(f"captured {len(sender)} messages from one VM over "
          f"{trace.duration * 1e3:.0f} ms "
          f"({sum(s for _, s in sender) / 1e6:.2f} MB)\n")

    # Step 2: the rate/burst trade-off this VM's traffic actually needs.
    rates = [units.mbps(m) for m in (30, 60, 90, 120, 240)]
    print("empirical arrival envelope (burst needed at each rate):")
    for point in empirical_envelope(sender, rates):
        print(f"  B = {units.to_mbps(point.rate):6.0f} Mbps -> "
              f"S >= {point.burst / 1e3:6.1f} KB")

    guarantee = infer_guarantee(sender, delay=units.msec(1),
                                peak_rate=units.gbps(1), headroom=1.5)
    print(f"\ninferred guarantee: B = "
          f"{units.to_mbps(guarantee.bandwidth):.0f} Mbps, "
          f"S = {guarantee.burst / 1e3:.1f} KB, d = 1 ms")
    assert conforms(sender, token_bucket(guarantee.bandwidth,
                                         guarantee.burst),
                    tolerance=units.MTU)
    print("the captured trace conforms to the inferred curve "
          "(no message would ever be throttled late)")

    # Step 3: this guarantee is admissible.
    silo = SiloController(TreeTopology(n_pods=1, racks_per_pod=2,
                                       servers_per_rack=4,
                                       slots_per_server=4,
                                       link_rate=units.gbps(10)))
    request = TenantRequest(n_vms=6, guarantee=guarantee,
                            tenant_class=TenantClass.CLASS_A)
    admitted = silo.admit(request)
    print(f"admission: {'ACCEPTED' if admitted else 'rejected'}; "
          f"15 KB message bound = "
          f"{silo.message_latency_bound(request.tenant_id, 15e3) * 1e3:.2f}"
          f" ms" if admitted else "")


if __name__ == "__main__":
    main()
