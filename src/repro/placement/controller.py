"""Self-healing cluster controller: re-validate guarantees after faults.

Silo's admission control reasons about a static, healthy topology.  When a
component fails, every tenant whose reserved paths (or VMs) the fault
touches no longer has a sound guarantee -- the controller's job is to put
the cluster back into a state where every *claimed* guarantee is again
backed by the admission math:

1. **identify** the tenants whose placements touch the faulted component
   (VMs on a crashed server, or reserved paths crossing an impaired port);
2. **release** them through the normal :meth:`PlacementManager.remove`
   path, so the port books are exact again;
3. **fence** the lost capacity: crashed servers are cordoned out of the
   slot pool, and each impaired port gets a "poison" reservation for the
   lost capacity fraction (:meth:`PlacementManager.reserve_capacity`), so
   the *existing* admission checks reject anything the degraded component
   cannot carry -- no degraded-topology fork of the admission math;
4. **re-place** each affected tenant on the surviving topology with the
   ordinary admission check, classifying it as ``recovered`` (full
   guarantee re-admitted), ``degraded`` (delay guarantee stripped,
   bandwidth-only re-admission) or ``evicted``;
5. on **repair** events the fences come down and the controller
   self-heals: degraded tenants are upgraded back to their full guarantee
   and (optionally) evicted tenants are re-admitted.

Every transition lands in the audit trail (via the manager), the trace
stream (``fault.recovery`` events) and the controller's
:class:`RecoveryReport` -- guarantee-seconds lost and time-to-recover per
tenant, the SLO-violation currency of the failure-sweep experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set

from repro.core.tenant import TenantRequest
from repro.faults.model import ACTION_UP, FaultEvent, HealthState
from repro.obs.events import TenantRecovery
from repro.placement.base import PlacementManager
from repro.placement.state import Contribution

__all__ = ["ClusterController", "RecoveryReport", "TenantOutcome",
           "OUTCOME_RECOVERED", "OUTCOME_DEGRADED", "OUTCOME_EVICTED"]

OUTCOME_RECOVERED = "recovered"
OUTCOME_DEGRADED = "degraded"
OUTCOME_EVICTED = "evicted"

#: Registry key under which fault poisons are reserved at a port.
_POISON_KEY = "fault"


@dataclass
class TenantOutcome:
    """Final per-tenant verdict of a fault campaign (one report row)."""

    tenant_id: int
    n_vms: int
    tenant_class: str
    outcome: str
    #: When the tenant first lost its full guarantee.
    lost_at: float
    #: When the full guarantee came back (``None`` if it never did).
    recovered_at: Optional[float]
    #: ``recovered_at - lost_at`` for recovered tenants.
    time_to_recover: Optional[float]
    #: VM-weighted seconds spent without the full guarantee.
    guarantee_seconds_lost: float


@dataclass
class RecoveryReport:
    """Aggregate SLO-violation report over one fault campaign."""

    rows: List[TenantOutcome] = field(default_factory=list)

    @property
    def affected(self) -> int:
        """Number of tenants touched by faults."""
        return len(self.rows)

    def count(self, outcome: str) -> int:
        """Number of tenants with the given outcome."""
        return sum(1 for row in self.rows if row.outcome == outcome)

    @property
    def guarantee_seconds_lost(self) -> float:
        """Total guarantee-seconds lost across tenants."""
        return sum(row.guarantee_seconds_lost for row in self.rows)

    @property
    def mean_time_to_recover(self) -> Optional[float]:
        """Mean recovery time, or None when nothing recovered."""
        ttrs = [row.time_to_recover for row in self.rows
                if row.time_to_recover is not None]
        if not ttrs:
            return None
        return sum(ttrs) / len(ttrs)

    def recovered_fraction(self) -> float:
        """Fraction of affected tenants that got their full guarantee back."""
        if not self.rows:
            return 1.0
        return self.count(OUTCOME_RECOVERED) / len(self.rows)


class _Track:
    """Mutable per-tenant recovery bookkeeping."""

    __slots__ = ("request", "status", "lost_at", "recovered_at",
                 "guarantee_seconds")

    def __init__(self, request: TenantRequest, lost_at: float):
        #: The tenant's *original* (full-guarantee) request.
        self.request = request
        self.status = OUTCOME_EVICTED
        self.lost_at = lost_at
        self.recovered_at: Optional[float] = None
        self.guarantee_seconds = 0.0


class ClusterController:
    """Reacts to fault events by re-validating affected guarantees.

    Args:
        manager: the placement manager owning the cluster's books.
        tracer: optional trace sink for ``fault.recovery`` events (falls
            back to the manager's tracer).
        retry_evicted: on repair events, also retry tenants that were
            evicted (not just upgrade degraded ones).  Control-plane
            campaigns want ``True``; a fluid simulation attaches with
            ``False`` because an evicted tenant's job was killed and
            cannot resurrect.
        owns: optional ownership predicate over tenant ids.  When
            several controllers share responsibility for one manager's
            books (the sharded admission service mirrors tenants across
            managers), each controller only releases/re-places tenants
            it owns; fencing (cordons and port poisons) still applies
            to every fault.  ``None`` owns everything.
    """

    def __init__(self, manager: PlacementManager, tracer=None,
                 retry_evicted: bool = True,
                 owns: Optional[Callable[[int], bool]] = None):
        self.manager = manager
        self.health = HealthState(manager.topology)
        self.tracer = tracer if tracer is not None else manager.tracer
        self.retry_evicted = retry_evicted
        self.owns = owns
        self._tracks: Dict[int, _Track] = {}
        #: Rows of tenants that departed mid-campaign (interval closed).
        self._closed_rows: List[TenantOutcome] = []
        #: port id -> factor currently fenced by a poison reservation.
        self._poisoned: Dict[int, float] = {}
        self._finalized = False

    # -- event handling ------------------------------------------------------

    def apply(self, event: FaultEvent, now: Optional[float] = None
              ) -> Dict[int, str]:
        """Fold one fault event in; returns ``{tenant_id: outcome}`` for
        every tenant whose classification changed at this event."""
        if now is None:
            now = event.time
        was_faulted = event.target.spec in self.health._target_factor
        changed = self.health.apply(event)
        if event.action == ACTION_UP:
            return self._handle_repair(event, changed, now, was_faulted)
        return self._handle_fault(event, changed, now)

    def _handle_fault(self, event: FaultEvent, changed: Dict[int, float],
                      now: float) -> Dict[int, str]:
        manager = self.manager
        impaired = [pid for pid, factor in changed.items() if factor < 1.0]
        affected = self._tenants_touching(impaired)
        for server in event.target.servers(manager.topology):
            affected.update(manager.tenants_on_server(server))
        if self.owns is not None:
            affected = {tid for tid in affected if self.owns(tid)}
        # Release first: the re-place search must see the freed slots and
        # exact port books, and cordoning below withholds only truly free
        # slots.
        requests: List[TenantRequest] = []
        for tenant_id in sorted(affected):
            requests.append(manager.placements[tenant_id].request)
            manager.remove(tenant_id)
        for server in self.health.down_servers:
            manager.cordon_server(server)
        self._refresh_poisons(changed)
        outcomes: Dict[int, str] = {}
        for request in requests:
            track = self._tracks.get(request.tenant_id)
            if track is None:
                track = _Track(request, lost_at=now)
                self._tracks[request.tenant_id] = track
            elif track.status == OUTCOME_RECOVERED:
                # Hit again after an earlier full recovery: a new outage
                # interval opens.
                track.lost_at = now
                track.recovered_at = None
            outcomes[request.tenant_id] = self._replace(track, now)
        # Tenants already degraded/evicted may be re-hit; their jobs were
        # not re-released above (they hold no full guarantee), but a
        # degraded tenant whose *current* placement the fault touched was
        # in `affected` via its bandwidth-only reservation and was
        # reclassified by _replace.
        return outcomes

    def _handle_repair(self, event: FaultEvent, changed: Dict[int, float],
                       now: float, was_faulted: bool = True
                       ) -> Dict[int, str]:
        manager = self.manager
        woke = False
        for server in event.target.servers(manager.topology):
            if server not in self.health.down_servers:
                if server in manager._cordoned:
                    woke = True
                manager.uncordon_server(server)
        if not was_faulted and not changed and not woke:
            # A repair of an already-healthy target (a restarted service
            # replaying its log hits exactly this): nothing changed, so
            # re-running the upgrade/retry pass below would remove and
            # re-append registry entries -- same totals, different fold
            # order -- and recovery would no longer be idempotent.
            return {}
        self._refresh_poisons(changed)
        outcomes: Dict[int, str] = {}
        # Degraded tenants upgrade first: they still hold (bandwidth-only)
        # reservations, and lifting them back to full guarantees takes
        # priority over re-admitting evicted tenants into the same
        # recovered capacity.
        for tenant_id in sorted(self._tracks):
            track = self._tracks[tenant_id]
            if track.status == OUTCOME_DEGRADED:
                outcomes[tenant_id] = self._upgrade(track, now)
        if self.retry_evicted:
            for tenant_id in sorted(self._tracks):
                track = self._tracks[tenant_id]
                if track.status == OUTCOME_EVICTED:
                    outcome = self._replace(track, now)
                    if outcome != OUTCOME_EVICTED:
                        outcomes[tenant_id] = outcome
        return outcomes

    # -- placement transitions ----------------------------------------------

    def _replace(self, track: _Track, now: float) -> str:
        """(Re-)place an unplaced tenant: full guarantee, then degraded."""
        manager = self.manager
        request = track.request
        if manager.place(request, now=now) is not None:
            return self._mark(track, OUTCOME_RECOVERED, now)
        degraded = self._degraded_request(request)
        if degraded is not None and manager.place(degraded,
                                                  now=now) is not None:
            return self._mark(track, OUTCOME_DEGRADED, now)
        return self._mark(track, OUTCOME_EVICTED, now)

    def _upgrade(self, track: _Track, now: float) -> str:
        """Try to lift a degraded tenant back to its full guarantee."""
        manager = self.manager
        request = track.request
        manager.remove(request.tenant_id)
        if manager.place(request, now=now) is not None:
            return self._mark(track, OUTCOME_RECOVERED, now)
        degraded = self._degraded_request(request)
        if degraded is not None and manager.place(degraded,
                                                  now=now) is not None:
            return self._mark(track, OUTCOME_DEGRADED, now)
        return self._mark(track, OUTCOME_EVICTED, now)

    @staticmethod
    def _degraded_request(request: TenantRequest
                          ) -> Optional[TenantRequest]:
        """The bandwidth-only fallback of a request, or ``None`` when the
        request has no delay guarantee to strip."""
        if not request.wants_delay:
            return None
        return TenantRequest(
            n_vms=request.n_vms,
            guarantee=replace(request.guarantee, delay=None),
            tenant_class=request.tenant_class,
            name=request.name,
            tenant_id=request.tenant_id)

    def _mark(self, track: _Track, outcome: str, now: float) -> str:
        if outcome == OUTCOME_RECOVERED:
            track.guarantee_seconds += ((now - track.lost_at)
                                        * track.request.n_vms)
            track.recovered_at = now
        track.status = outcome
        if self.tracer is not None:
            ttr = (now - track.lost_at
                   if outcome == OUTCOME_RECOVERED else None)
            self.tracer.emit(TenantRecovery(
                time=now, tenant_id=track.request.tenant_id,
                n_vms=track.request.n_vms,
                tenant_class=track.request.tenant_class.name,
                outcome=outcome, time_to_recover=ttr))
        return outcome

    # -- capacity fencing ----------------------------------------------------

    def _refresh_poisons(self, changed: Dict[int, float]) -> None:
        """Keep each changed port's poison equal to its lost capacity."""
        manager = self.manager
        for port_id in sorted(changed):
            factor = changed[port_id]
            if port_id in self._poisoned:
                manager.release_capacity(port_id, _POISON_KEY)
                del self._poisoned[port_id]
            if factor < 1.0:
                capacity = manager.states[port_id].port.capacity
                lost = (1.0 - factor) * capacity
                manager.reserve_capacity(
                    port_id,
                    Contribution(bandwidth=lost, burst=0.0, peak_rate=lost,
                                 packet_slack=0.0),
                    _POISON_KEY)
                self._poisoned[port_id] = factor

    # -- affected-tenant discovery -------------------------------------------

    def _tenants_touching(self, port_ids: List[int]) -> Set[int]:
        """Tenants whose placement uses any of ``port_ids``.

        Computed from placement geometry rather than the reservation
        registry so it also works for managers without port checks
        (locality) and for best-effort tenants with no contributions.
        """
        if not port_ids:
            return set()
        wanted = set(port_ids)
        hit: Set[int] = set()
        for tenant_id, placement in self.manager.placements.items():
            if self._placement_ports(placement) & wanted:
                hit.add(tenant_id)
        return hit

    def _placement_ports(self, placement) -> Set[int]:
        """Directed ports a placement's hose traffic can cross (mirrors
        :meth:`PlacementManager._port_contributions`'s expansion)."""
        topo = self.manager.topology
        servers = sorted(placement.vms_per_server())
        if len(servers) <= 1:
            return set()
        ports: Set[int] = set()
        racks = {topo.rack_of(s) for s in servers}
        pods = {topo.pod_of(s) for s in servers}
        for server in servers:
            ports.add(topo.nic_up(server).port_id)
            ports.add(topo.tor_down(server).port_id)
        if len(racks) > 1:
            for rack in racks:
                ports.add(topo.tor_up(rack).port_id)
                ports.add(topo.agg_down(rack).port_id)
        if len(pods) > 1:
            for pod in pods:
                ports.add(topo.agg_up(pod).port_id)
                ports.add(topo.core_down(pod).port_id)
        return ports

    # -- reporting -----------------------------------------------------------

    def notify_departed(self, tenant_id: int, now: float) -> None:
        """A tracked tenant left on its own (its job completed).

        Closes the tenant's outage interval -- a tenant that finished
        while degraded stays a ``degraded`` row, with guarantee-seconds
        accrued up to its departure -- and drops it from self-healing.
        """
        track = self._tracks.pop(tenant_id, None)
        if track is None:
            return
        if track.status != OUTCOME_RECOVERED:
            track.guarantee_seconds += ((now - track.lost_at)
                                        * track.request.n_vms)
        self._closed_rows.append(self._row(tenant_id, track))

    def finalize(self, end_time: float) -> None:
        """Close open outage intervals at the end of the campaign."""
        if self._finalized:
            return
        for track in self._tracks.values():
            if track.status != OUTCOME_RECOVERED:
                track.guarantee_seconds += ((end_time - track.lost_at)
                                            * track.request.n_vms)
        self._finalized = True

    @staticmethod
    def _row(tenant_id: int, track: _Track) -> TenantOutcome:
        return TenantOutcome(
            tenant_id=tenant_id,
            n_vms=track.request.n_vms,
            tenant_class=track.request.tenant_class.name,
            outcome=track.status,
            lost_at=track.lost_at,
            recovered_at=track.recovered_at,
            time_to_recover=(track.recovered_at - track.lost_at
                             if track.recovered_at is not None
                             else None),
            guarantee_seconds_lost=track.guarantee_seconds,
        )

    def report(self) -> RecoveryReport:
        """The recovery report accumulated so far."""
        rows = self._closed_rows + [
            self._row(tid, track)
            for tid, track in sorted(self._tracks.items())]
        rows.sort(key=lambda row: (row.tenant_id, row.lost_at))
        return RecoveryReport(rows=rows)
