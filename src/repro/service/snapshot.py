"""Bit-exact serialization of placement books and controller state.

The service's crash-consistency story rests on one invariant from the
placement layer: a port's totals always equal the fold of its surviving
registry entries in insertion order (``PortState.reset_totals``, pinned
by ``tests/placement/test_remove_exact.py``).  A snapshot therefore
stores each port's registry *in insertion order* and restore folds it
back with ``reset_totals`` -- the restored totals are bit-identical to
the live ones, not merely close.  Everything else (slot caches, health
composition, ``_commits``) is recomputed from pure deterministic
functions of the restored state.

JSON is the wire format; Python floats survive a JSON round trip
exactly (repr-based encoding), so no precision is lost.

``state_digest`` hashes a state dict with the admission counters
stripped: counters count *attempts* (a replayed service never re-runs
rejected admissions, so they legitimately differ across a restart)
while the digest must pin the *books*.
"""

from __future__ import annotations

import copy
import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import Placement, TenantClass, TenantRequest
from repro.faults.model import FaultTarget
from repro.placement.base import PlacementManager
from repro.placement.controller import ClusterController, TenantOutcome
from repro.placement.controller import _Track
from repro.placement.state import Contribution

__all__ = ["dump_request", "restore_request", "dump_manager",
           "restore_manager", "dump_controller", "restore_controller",
           "state_digest"]


# -- tenant requests ---------------------------------------------------------

def dump_request(request: TenantRequest) -> List[Any]:
    """A tenant request as a compact JSON-serializable list."""
    guarantee = request.guarantee
    g = (None if guarantee is None else
         [guarantee.bandwidth, guarantee.burst, guarantee.delay,
          guarantee.peak_rate])
    return [request.n_vms, g, request.tenant_class.value, request.name,
            request.tenant_id]


def restore_request(dump: List[Any]) -> TenantRequest:
    """Rebuild the request :func:`dump_request` serialized."""
    n_vms, g, klass, name, tenant_id = dump
    guarantee = (None if g is None else
                 NetworkGuarantee(bandwidth=g[0], burst=g[1], delay=g[2],
                                  peak_rate=g[3]))
    return TenantRequest(n_vms=n_vms, guarantee=guarantee,
                         tenant_class=TenantClass(klass), name=name,
                         tenant_id=tenant_id)


# -- placement managers ------------------------------------------------------

def dump_manager(manager: PlacementManager) -> Dict[str, Any]:
    """Snapshot one manager's books (registry in insertion order)."""
    registry = []
    for port_id in sorted(manager._port_registry):
        entries = manager._port_registry[port_id]
        if not entries:
            continue
        registry.append([port_id,
                         [[kind, ident, c.bandwidth, c.burst, c.peak_rate,
                           c.packet_slack]
                          for (kind, ident), c in entries.items()]])
    placements = [[tid, dump_request(p.request), list(p.vm_servers)]
                  for tid, p in sorted(manager.placements.items())]
    return {
        "registry": registry,
        "placements": placements,
        "free_slots": list(manager.free_slots),
        "cordoned": sorted([s, c] for s, c in manager._cordoned.items()),
        "counters": {
            "accepted": manager.accepted,
            "rejected": manager.rejected,
            "accepted_by_class": {k.value: v for k, v in
                                  sorted(manager.accepted_by_class.items(),
                                         key=lambda kv: kv[0].value)},
            "rejected_by_class": {k.value: v for k, v in
                                  sorted(manager.rejected_by_class.items(),
                                         key=lambda kv: kv[0].value)},
            "decision_seq": manager._decision_seq,
        },
    }


def restore_manager(manager: PlacementManager,
                    dump: Dict[str, Any]) -> None:
    """Load a snapshot into a freshly built manager (same topology).

    The registry is replayed verbatim in dumped (= insertion) order and
    every port's totals rebuilt with ``reset_totals``; slot caches are
    recomputed from the raw free-slot vector; ``_commits`` is rebuilt by
    re-running the pure ``_port_contributions`` per placement.
    """
    manager.free_slots = [int(v) for v in dump["free_slots"]]
    manager._cordoned = {int(s): int(c) for s, c in dump["cordoned"]}
    _recompute_slot_caches(manager)
    manager.placements = {}
    manager._commits = {}
    for tid, request_dump, vm_servers in dump["placements"]:
        request = restore_request(request_dump)
        placement = Placement(request=request,
                              vm_servers=[int(s) for s in vm_servers])
        manager.placements[int(tid)] = placement
        manager._contribution_memo.clear()
        manager._commits[int(tid)] = list(manager._port_contributions(
            request, placement.vms_per_server()))
    for port_id, entries in dump["registry"]:
        registry = manager._port_registry[int(port_id)]
        registry.clear()
        for kind, ident, bandwidth, burst, peak, slack in entries:
            key = (kind, int(ident) if kind == "tenant" else ident)
            registry[key] = Contribution(bandwidth=bandwidth, burst=burst,
                                         peak_rate=peak,
                                         packet_slack=slack)
        manager.states[int(port_id)].reset_totals(registry.values())
    counters = dump.get("counters", {})
    manager.accepted = counters.get("accepted", 0)
    manager.rejected = counters.get("rejected", 0)
    manager.accepted_by_class = {
        TenantClass(k): v
        for k, v in counters.get("accepted_by_class", {}).items()}
    manager.rejected_by_class = {
        TenantClass(k): v
        for k, v in counters.get("rejected_by_class", {}).items()}
    manager._decision_seq = counters.get("decision_seq", 0)


def _recompute_slot_caches(manager: PlacementManager) -> None:
    topo = manager.topology
    full = topo.slots_per_server
    manager._rack_free = [0] * topo.n_racks
    manager._pod_free = [0] * topo.n_pods
    manager._rack_touched = [0] * topo.n_racks
    manager._pod_touched = [0] * topo.n_pods
    manager._total_free = 0
    for server, free in enumerate(manager.free_slots):
        rack = server // topo.servers_per_rack
        pod = rack // topo.racks_per_pod
        manager._rack_free[rack] += free
        manager._pod_free[pod] += free
        manager._total_free += free
        if free < full:
            manager._rack_touched[rack] += 1
            manager._pod_touched[pod] += 1


# -- cluster controllers -----------------------------------------------------

def dump_controller(controller: ClusterController) -> Dict[str, Any]:
    """Snapshot one controller's bookkeeping (tracks, health, rows)."""
    tracks = []
    for tid in sorted(controller._tracks):
        track = controller._tracks[tid]
        tracks.append([tid, dump_request(track.request), track.status,
                       track.lost_at, track.recovered_at,
                       track.guarantee_seconds])
    closed = [[row.tenant_id, row.n_vms, row.tenant_class, row.outcome,
               row.lost_at, row.recovered_at, row.time_to_recover,
               row.guarantee_seconds_lost]
              for row in controller._closed_rows]
    health = controller.health
    return {
        "tracks": tracks,
        "closed_rows": closed,
        "poisoned": sorted([pid, factor] for pid, factor
                           in controller._poisoned.items()),
        "finalized": controller._finalized,
        "health": {
            "target_factor": [[spec, factor] for spec, factor
                              in health._target_factor.items()],
            "down_servers": sorted(health.down_servers),
        },
    }


def restore_controller(controller: ClusterController,
                       dump: Dict[str, Any]) -> None:
    """Load controller bookkeeping into a fresh controller.

    Poison reservations themselves live in the manager registry (already
    restored); only the mirror map is reloaded here.  Health composition
    (``port_factor``) is recomputed from the per-target factors, which
    is exact: composition is a min over targets.
    """
    controller._tracks = {}
    for tid, request_dump, status, lost_at, recovered_at, gsec in \
            dump["tracks"]:
        track = _Track(restore_request(request_dump), lost_at=lost_at)
        track.status = status
        track.recovered_at = recovered_at
        track.guarantee_seconds = gsec
        controller._tracks[int(tid)] = track
    controller._closed_rows = [
        TenantOutcome(tenant_id=r[0], n_vms=r[1], tenant_class=r[2],
                      outcome=r[3], lost_at=r[4], recovered_at=r[5],
                      time_to_recover=r[6], guarantee_seconds_lost=r[7])
        for r in dump["closed_rows"]]
    controller._poisoned = {int(pid): factor
                            for pid, factor in dump["poisoned"]}
    controller._finalized = bool(dump.get("finalized", False))
    health = controller.health
    topology = controller.manager.topology
    health._target_factor = {spec: factor for spec, factor
                             in dump["health"]["target_factor"]}
    health._target_ports = {
        spec: tuple(FaultTarget.parse(spec).ports(topology))
        for spec in health._target_factor}
    health.port_factor = {}
    for ports in health._target_ports.values():
        for port_id in ports:
            if port_id in health.port_factor:
                continue
            composed = health._composed_factor(port_id)
            if composed != 1.0:
                health.port_factor[port_id] = composed
    health.down_servers = set(int(s) for s
                              in dump["health"]["down_servers"])


# -- digests -----------------------------------------------------------------

def _strip_counters(state: Any) -> Any:
    if isinstance(state, dict):
        return {k: _strip_counters(v) for k, v in state.items()
                if k != "counters"}
    if isinstance(state, list):
        return [_strip_counters(v) for v in state]
    return state


def state_digest(state: Dict[str, Any]) -> str:
    """SHA-256 over a canonical JSON rendering of ``state``.

    Admission counters are excluded: a restarted service replays only
    committed outcomes (it never re-runs rejected admission attempts),
    so attempt counters may differ across a crash while the books are
    identical -- the digest certifies the books.
    """
    canonical = json.dumps(_strip_counters(copy.deepcopy(state)),
                           sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
