"""Void-packet pacing: precise inter-packet gaps without NIC support.

NICs transmit a handed-over batch back-to-back, so a software pacer cannot
leave gaps between packets of one batch -- unless the gaps are themselves
packets.  A *void packet* is a frame whose destination MAC equals its source
MAC: the NIC serializes it (preserving spacing) and the first-hop switch
drops it.  The smallest frame occupies 84 bytes on the wire (64-byte frame
+ preamble + inter-frame gap), giving a minimum spacing quantum of
``84 B / 10 Gbps = 67.2 ns`` -- the paper's "68 ns" figure.

:class:`VoidScheduler` converts a stream of *stamped* data packets (from the
token-bucket hierarchy) into the exact wire schedule: data packets at their
stamps, void packets filling the gaps, idle time only between batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro import units
from repro.obs.events import VoidEmit

#: Wire overhead added to every frame: preamble (8) + inter-frame gap (12).
FRAME_OVERHEAD = 20
#: Smallest possible void frame on the wire, bytes.
MIN_VOID = units.MIN_WIRE_FRAME
#: Largest void frame on the wire (MTU + overhead), bytes.
MAX_VOID = units.MTU + FRAME_OVERHEAD


def min_void_spacing(link_rate: float) -> float:
    """Smallest achievable inter-packet spacing (seconds) on a link."""
    if link_rate <= 0:
        raise ValueError("link rate must be positive")
    return MIN_VOID / link_rate


def void_gap_for_rate(rate_limit: float, link_rate: float,
                      packet_size: float = units.MTU) -> float:
    """Wire bytes of void needed between packets to average ``rate_limit``.

    A source sending ``packet_size`` packets at average rate ``rate_limit``
    on a ``link_rate`` wire needs ``packet * (C/R - 1)`` bytes of spacing
    between consecutive packets.
    """
    if not 0 < rate_limit <= link_rate:
        raise ValueError("rate limit must be in (0, link rate]")
    return packet_size * (link_rate / rate_limit - 1.0)


def split_void_bytes(gap_bytes: float) -> List[int]:
    """Split a gap into valid void frames (each within [84, MTU+20] bytes).

    The gap is rounded to the nearest whole byte (wire serialization has
    no sub-byte resolution); any *positive* gap is then covered by whole
    frames, rounding short gaps **up** to one minimum (84-byte) frame.
    Rounding up means the following data packet departs at or *after* its
    token-bucket stamp -- never before it, which would violate the
    guarantee the stamp enforces.  Dropping sub-frame gaps instead (and
    letting data leave early) is exactly the bug this replaces; the void
    excess does not accumulate, because later gaps are computed from the
    absolute stamps and absorb it.
    """
    gap = int(round(gap_bytes))
    if gap <= 0:
        return []
    gap = max(gap, MIN_VOID)
    frames: List[int] = []
    while gap > 0:
        if gap <= MAX_VOID:
            frames.append(gap)
            break
        take = MAX_VOID
        # Never leave a remainder smaller than a minimum frame.
        if gap - take < MIN_VOID:
            take = gap - MIN_VOID
        frames.append(take)
        gap -= take
    return frames


@dataclass(frozen=True)
class WireSlot:
    """One frame on the wire: a data packet or a void filler.

    ``start_time`` is when the first bit hits the wire; ``stamp`` is the
    departure time the token buckets asked for (data slots only).
    """

    kind: str                 # "data" or "void"
    start_time: float
    wire_bytes: float
    stamp: Optional[float] = None
    payload: Any = None

    @property
    def pacing_error(self) -> float:
        """How far from its stamp a data packet actually left (seconds)."""
        if self.stamp is None:
            return 0.0
        return self.start_time - self.stamp


@dataclass
class WireSchedule:
    """The output of the void scheduler plus summary statistics."""

    slots: List[WireSlot] = field(default_factory=list)
    link_rate: float = 0.0

    @property
    def data_slots(self) -> List[WireSlot]:
        """The schedule's data-frame slots."""
        return [s for s in self.slots if s.kind == "data"]

    @property
    def void_slots(self) -> List[WireSlot]:
        """The schedule's void-frame slots."""
        return [s for s in self.slots if s.kind == "void"]

    @property
    def data_bytes(self) -> float:
        """Total data bytes on the wire."""
        return sum(s.wire_bytes for s in self.slots if s.kind == "data")

    @property
    def void_bytes(self) -> float:
        """Total void bytes on the wire."""
        return sum(s.wire_bytes for s in self.slots if s.kind == "void")

    def rates(self) -> Tuple[float, float]:
        """(data, void) *wire* rates over the active span, bytes/second.

        Frame overhead (preamble + inter-frame gap) is included, so a
        fully busy wire sums to exactly the link rate.
        """
        if not self.slots:
            return (0.0, 0.0)
        start = self.slots[0].start_time
        last = self.slots[-1]
        span = last.start_time + last.wire_bytes / self.link_rate - start
        if span <= 0:
            return (0.0, 0.0)
        return (self.data_bytes / span, self.void_bytes / span)

    def max_pacing_error(self) -> float:
        """Worst data-frame deviation from its ideal send time."""
        errors = [abs(s.pacing_error) for s in self.data_slots]
        return max(errors) if errors else 0.0


class VoidScheduler:
    """Turns stamped data packets into a back-to-back wire schedule.

    Void packets are only generated "when there is another packet waiting
    to be sent" (section 5): gaps longer than ``idle_threshold`` are left as
    genuine idle time instead of being filled, so an idle network costs no
    CPU and no link power.
    """

    def __init__(self, link_rate: float,
                 idle_threshold: float = 50 * units.MICROS,
                 tracer=None, source: str = "nic"):
        if link_rate <= 0:
            raise ValueError("link rate must be positive")
        self.link_rate = link_rate
        self.idle_threshold = idle_threshold
        #: Optional :class:`repro.obs.TraceSink` receiving one
        #: ``pacer.void`` event per emitted void frame.
        self.tracer = tracer
        self.source = source

    def schedule(self, packets: Sequence[Tuple[float, float]],
                 payloads: Optional[Sequence[Any]] = None) -> WireSchedule:
        """Build the wire schedule for stamped ``(departure, size)`` packets.

        ``size`` is the packet size in bytes; frame overhead is added here.
        Stamps must be non-decreasing (the token-bucket hierarchy guarantees
        this).

        Pacing error is one-sided up to byte rounding: a data packet never
        departs more than half a byte-time before its stamp (the rounding
        quantum of :func:`split_void_bytes`), and departs late by less
        than one minimum void frame (84 byte-times) plus any serialization
        backlog of earlier packets.
        """
        schedule = WireSchedule(link_rate=self.link_rate)
        if not packets:
            return schedule
        wire_time = packets[0][0]
        previous_stamp = None
        for i, (stamp, size) in enumerate(packets):
            if previous_stamp is not None and stamp < previous_stamp:
                raise ValueError("packet stamps must be non-decreasing")
            previous_stamp = stamp
            gap_seconds = stamp - wire_time
            if gap_seconds > self.idle_threshold:
                # Nothing worth pacing across: let the NIC go idle.
                wire_time = stamp
            elif gap_seconds > 0:
                for frame in split_void_bytes(gap_seconds * self.link_rate):
                    schedule.slots.append(WireSlot(
                        kind="void", start_time=wire_time,
                        wire_bytes=frame))
                    if self.tracer is not None:
                        self.tracer.emit(VoidEmit(
                            time=wire_time, source=self.source,
                            wire_bytes=frame))
                    wire_time += frame / self.link_rate
            payload = payloads[i] if payloads is not None else None
            wire_bytes = size + FRAME_OVERHEAD
            schedule.slots.append(WireSlot(
                kind="data", start_time=wire_time, wire_bytes=wire_bytes,
                stamp=stamp, payload=payload))
            wire_time += wire_bytes / self.link_rate
        return schedule
