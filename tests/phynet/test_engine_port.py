"""Event engine ordering and output-port queueing behaviour."""

import pytest

from repro import units
from repro.phynet.engine import Simulator
from repro.phynet.packet import (
    PRIORITY_BEST_EFFORT,
    PRIORITY_GUARANTEED,
    Packet,
)
from repro.phynet.port import OutputPort


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, log.append, name)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "late")
        sim.run(until=2.0)
        assert log == []
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert log == ["late"]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_stop_aborts_run(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule(2.0, log.append, 2)
        sim.run()
        assert log == [1]
        assert sim.pending_events == 1


def make_port(sim, capacity=units.gbps(10), buffer_bytes=10 * units.KB,
              delivered=None, **kwargs):
    return OutputPort(sim, "test", capacity, buffer_bytes,
                      on_delivery=(delivered.append
                                   if delivered is not None else None),
                      **kwargs)


def packet(size=1500.0, route=None, priority=PRIORITY_GUARANTEED):
    return Packet(src=0, dst=1, size=size, route=route or [],
                  priority=priority)


class TestOutputPort:
    def test_serialization_delay(self):
        sim = Simulator()
        delivered = []
        port = make_port(sim, delivered=delivered, prop_delay=0.0)
        port.enqueue(packet(size=1250.0))
        sim.run()
        assert delivered
        assert sim.now == pytest.approx(1250.0 / units.gbps(10))

    def test_fifo_within_priority(self):
        sim = Simulator()
        delivered = []
        port = make_port(sim, delivered=delivered)
        first, second = packet(), packet()
        port.enqueue(first)
        port.enqueue(second)
        sim.run()
        assert delivered == [first, second]

    def test_strict_priority(self):
        sim = Simulator()
        delivered = []
        port = make_port(sim, delivered=delivered, buffer_bytes=1e6)
        blocker = packet()           # grabs the wire
        low = packet(priority=PRIORITY_BEST_EFFORT)
        high = packet()
        port.enqueue(blocker)
        port.enqueue(low)
        port.enqueue(high)
        sim.run()
        assert delivered == [blocker, high, low]

    def test_drop_tail(self):
        sim = Simulator()
        port = make_port(sim, buffer_bytes=3000.0)
        for _ in range(5):
            port.enqueue(packet(size=1500.0))
        assert port.stats.drops >= 1
        # Queued + transmitting never exceed the buffer.
        assert port.stats.max_queue_bytes <= 3000.0

    def test_drop_notifies_flow(self):
        class FlowSpy:
            def __init__(self):
                self.dropped = []

            def on_drop(self, pkt):
                self.dropped.append(pkt)

        sim = Simulator()
        port = make_port(sim, buffer_bytes=1600.0)
        spy = FlowSpy()
        for _ in range(3):
            p = packet()
            p.flow = spy
            port.enqueue(p)
        assert len(spy.dropped) >= 1

    def test_ecn_marking_threshold(self):
        sim = Simulator()
        port = make_port(sim, buffer_bytes=1e6, ecn_threshold=2000.0)
        packets = [packet() for _ in range(4)]
        for p in packets:
            port.enqueue(p)
        # Later packets found the queue above threshold.
        assert any(p.ecn for p in packets)
        assert not packets[0].ecn

    def test_phantom_queue_marks_below_line_rate(self):
        """HULL: sustained arrivals above the phantom drain rate get
        marked even though the real queue stays empty."""
        sim = Simulator()
        capacity = units.gbps(10)
        port = make_port(sim, capacity=capacity, buffer_bytes=1e6,
                         phantom_drain=0.5 * capacity,
                         phantom_threshold=3000.0)
        marked = 0
        # Feed at exactly line rate: real queue ~1 packet, phantom grows.
        for i in range(20):
            p = packet()
            sim.schedule_at(i * 1500.0 / capacity, port.enqueue, p)
        sim.run()
        assert port.stats.ecn_marks > 0
        assert port.stats.drops == 0

    def test_utilization(self):
        sim = Simulator()
        port = make_port(sim, prop_delay=0.0)
        port.enqueue(packet(size=1250.0))
        sim.run()
        elapsed = sim.now
        assert port.utilization(elapsed) == pytest.approx(1.0)

    def test_forwards_along_route(self):
        sim = Simulator()
        delivered = []
        last = make_port(sim, delivered=delivered)
        first = OutputPort(sim, "first", units.gbps(10), 1e6)
        p = Packet(src=0, dst=1, size=1500.0, route=[first, last])
        first.enqueue(p)
        sim.run()
        assert delivered == [p]
        assert p.hop == 2
