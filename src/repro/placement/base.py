"""Shared greedy first-fit placement machinery (section 4.2.3).

All three placement managers walk the hierarchy the same way -- try to fit
the whole tenant in one server, then one rack, then one pod, then anywhere
-- and differ only in (a) which admission check runs at each port and (b)
how wide the hierarchy they may use is (Silo caps the scope so that summed
queue capacities along any path stay within the delay guarantee).

Each scope is attempted with two fill strategies:

* **greedy**: pack each server as full as the per-server checks allow, which
  minimises the number of network links the tenant touches;
* **balanced**: spread VMs evenly over the domain's servers, which keeps the
  worst-case all-to-one burst convergence at any single port small (the
  paper's Fig. 5 example is exactly this situation).

A candidate assignment is then *validated*: the exact per-port contributions
(with the true number of sending servers behind each port) are recomputed
and checked against the current port state before committing.  Fill-time
checks are only heuristics to guide the search; validation is authoritative,
so admission is sound regardless of the estimates used while filling.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import units
from repro.core.tenant import Placement, TenantClass, TenantRequest
from repro.obs.events import AdmissionDecision
from repro.placement.audit import (
    CONSTRAINT_CAPACITY,
    CONSTRAINT_DELAY,
    CONSTRAINT_NONE,
    CONSTRAINT_QUEUE_BOUND,
    AdmissionAudit,
    AdmissionRecord,
)
from repro.placement.state import Contribution, PortState
from repro.topology.switch import PortKind
from repro.topology.tree import SCOPES, TreeTopology

#: The two fill strategies tried, in order, within every domain.
_STRATEGIES = ("greedy", "balanced")
# Hoisted enum values: contribution memo keys use the interned strings so
# lookups skip the Enum descriptor and Python-level __hash__.
_NIC_UP = PortKind.NIC_UP.value
_TOR_DOWN = PortKind.TOR_DOWN.value


class PlacementManager(abc.ABC):
    """Base class: slot accounting, greedy search, commit/remove."""

    def __init__(self, topology: TreeTopology,
                 min_fault_domains: int = 1,
                 hose_tightening: bool = True,
                 fast_paths: bool = True,
                 audit: Optional[AdmissionAudit] = None,
                 tracer=None) -> None:
        """Args:
            topology: the datacenter to place into.
            min_fault_domains: spread every tenant over at least this
                many servers (section 4.2.3's fault-tolerance constraint;
                1 disables spreading).
            hose_tightening: use the paper's tightened hose aggregate
                ``min(m, N-m) * B`` when summing tenant curves; disabling
                it falls back to the naive ``m * B`` (the ablation knob
                for how much admission capacity the tightening buys).
            fast_paths: use the optimized admission hot paths (closed-form
                port bounds, cached per-domain free-slot totals, binary
                search over per-server VM counts).  ``False`` falls back
                to the reference implementations -- kept as the
                cross-check oracle for ``benchmarks/bench_hotpaths.py``;
                both modes make identical admission decisions.
            audit: optional :class:`~repro.placement.audit.AdmissionAudit`
                recording every decision with its binding constraint.
            tracer: optional :class:`repro.obs.TraceSink`; each decision
                additionally emits an ``admission`` event.  Both are
                evaluated off the hot path (only after the search
                concludes) and default to off.
        """
        if min_fault_domains < 1:
            raise ValueError("min_fault_domains must be >= 1")
        self.topology = topology
        self.min_fault_domains = min_fault_domains
        self.hose_tightening = hose_tightening
        self.fast_paths = fast_paths
        self.states: Dict[int, PortState] = {
            port.port_id: PortState(port) for port in topology.ports
        }
        # Per-server port-state shortcuts and per-(kind, scope) upstream
        # queue capacities, hoisted out of the per-probe inner loop.
        self._nic_states: List[PortState] = [
            self.states[topology.nic_up(s).port_id]
            for s in range(topology.n_servers)]
        self._tor_down_states: List[PortState] = [
            self.states[topology.tor_down(s).port_id]
            for s in range(topology.n_servers)]
        self._upstream_qcap: Dict[Tuple[str, str], float] = {
            (kind.value, scope): topology.upstream_queue_capacity(kind,
                                                                  scope)
            for kind in set(p.kind for p in topology.ports)
            for scope in SCOPES
        }
        # Contributions depend only on (m, k, port kind, scope) within one
        # request; memoised per `place` call so repeated probes across the
        # servers of a domain cost one dict lookup.
        self._contribution_memo: Dict[Tuple[int, int, str, str],
                                      Contribution] = {}
        self.free_slots: List[int] = (
            [topology.slots_per_server] * topology.n_servers)
        # Cached free-slot totals per rack/pod/cluster plus per-domain
        # counts of *touched* (not fully free) servers; maintained by
        # _commit/remove so _search_scope can skip domains in O(1).
        full = topology.slots_per_server
        self._rack_free: List[int] = (
            [full * topology.servers_per_rack] * topology.n_racks)
        pod_servers = topology.racks_per_pod * topology.servers_per_rack
        self._pod_free: List[int] = [full * pod_servers] * topology.n_pods
        self._total_free: int = topology.n_slots
        self._rack_touched: List[int] = [0] * topology.n_racks
        self._pod_touched: List[int] = [0] * topology.n_pods
        self.placements: Dict[int, Placement] = {}
        self._commits: Dict[int, List[Tuple[int, Contribution]]] = {}
        # Per-port ordered registry of every live contribution, keyed by
        # ("tenant", id) or ("reserve", name).  Release rebuilds a port's
        # totals by folding the survivors in commit order (dicts preserve
        # insertion order), which is bit-identical to a fresh port and
        # immune to float drift; see PortState.reset_totals.
        self._port_registry: Dict[int, Dict[Tuple[str, object],
                                            Contribution]] = {
            port_id: {} for port_id in self.states
        }
        # Cordoned (crashed / unreachable) servers: server -> slots
        # withheld from the free pool while cordoned.
        self._cordoned: Dict[int, int] = {}
        self.accepted = 0
        self.rejected = 0
        #: Monotonic counter bumped whenever any port's reservations
        #: change (commit, remove, reserve/release poisons).  Lets
        #: callers cache derived maps -- e.g. the fluid simulator's
        #: best-effort residual capacities -- and rebuild only on change.
        self.reservation_version = 0
        self.accepted_by_class: Dict[TenantClass, int] = {}
        self.rejected_by_class: Dict[TenantClass, int] = {}
        self.audit = audit
        self.tracer = tracer
        self._decision_seq = 0

    # -- hooks for subclasses -------------------------------------------------

    @abc.abstractmethod
    def _allowed_scope(self, request: TenantRequest) -> Optional[str]:
        """Widest scope this tenant may span; ``None`` rejects outright."""

    @abc.abstractmethod
    def _port_ok(self, state: PortState, contribution: Contribution) -> bool:
        """Whether a port can absorb one more tenant's contribution."""

    def _checks_ports(self) -> bool:
        """Whether this manager runs network checks at all."""
        return True

    # -- public API -------------------------------------------------------------

    def place(self, request: TenantRequest,
              now: Optional[float] = None) -> Optional[Placement]:
        """Admit and place a tenant; returns ``None`` on rejection.

        ``now`` (optional simulation time) only annotates the audit
        trail / admission events; it does not affect the decision.
        """
        self._contribution_memo.clear()
        return self._place_impl(request, now)

    def place_batch(self, requests: Sequence[TenantRequest],
                    now: Optional[float] = None
                    ) -> List[Optional[Placement]]:
        """Admit a batch of requests, amortizing the admission math.

        Contributions depend only on ``(n_vms, guarantee)``, so the
        batch is grouped by that signature and the per-request
        contribution memo is cleared once per *group* instead of once
        per request -- same-shaped requests (the common case in a
        request stream) share every closed-form bound computation.

        Requests are still admitted strictly one at a time against the
        live books (group by group, first-seen group order, original
        order within a group), so the decisions are identical to
        sequential :meth:`place` calls in that order.  Results come
        back in the input order.
        """
        results: List[Optional[Placement]] = [None] * len(requests)
        groups: Dict[Tuple[int, object], List[int]] = {}
        order: List[Tuple[int, object]] = []
        for i, request in enumerate(requests):
            signature = (request.n_vms, request.guarantee)
            if signature not in groups:
                groups[signature] = []
                order.append(signature)
            groups[signature].append(i)
        for signature in order:
            self._contribution_memo.clear()
            for i in groups[signature]:
                results[i] = self._place_impl(requests[i], now)
        return results

    def adopt(self, request: TenantRequest,
              assignment: Dict[int, int]) -> Placement:
        """Commit a known-good assignment without re-running admission.

        The crash-recovery redo path: a write-ahead log replays each
        admitted request with the assignment the original search chose,
        and ``adopt`` re-commits it.  Contributions are recomputed by
        the same pure function :meth:`_port_contributions` used at
        admission time, so the registry entries (and therefore every
        port's folded totals) are bit-identical to the original commit.
        Raises if the tenant is already placed or the slots are gone.
        """
        if request.tenant_id in self.placements:
            raise ValueError(f"tenant {request.tenant_id} is already placed")
        self._contribution_memo.clear()
        placement = self._commit(request, dict(assignment))
        self._count(request, admitted=True)
        return placement

    def _place_impl(self, request: TenantRequest,
                    now: Optional[float]) -> Optional[Placement]:
        """The body of :meth:`place`, minus the memo clear (so batched
        admission can share the memo across same-signature requests)."""
        if request.tenant_id in self.placements:
            raise ValueError(f"tenant {request.tenant_id} is already placed")
        assignment = self._find_assignment(request)
        if assignment is None:
            self._count(request, admitted=False)
            if self.audit is not None or self.tracer is not None:
                self._record_decision(request, None, now)
            return None
        placement = self._commit(request, assignment)
        self._count(request, admitted=True)
        if self.audit is not None or self.tracer is not None:
            self._record_decision(request, assignment, now)
        return placement

    def _record_decision(self, request: TenantRequest,
                         assignment: Optional[Dict[int, int]],
                         now: Optional[float]) -> None:
        """Append the decision to the audit trail and/or trace stream.

        Runs only after the search concluded, so classification can use
        cheap re-checks against cached state instead of instrumenting the
        admission inner loop.
        """
        if assignment is not None:
            constraint = CONSTRAINT_NONE
            scope: Optional[str] = self._assignment_scope(assignment)
        else:
            constraint = self._rejection_constraint(request)
            scope = None
        seq = self._decision_seq
        self._decision_seq += 1
        klass = request.tenant_class.name
        if self.audit is not None:
            self.audit.append(AdmissionRecord(
                seq=seq, tenant_id=request.tenant_id, n_vms=request.n_vms,
                tenant_class=klass, admitted=assignment is not None,
                constraint=constraint, scope=scope, time=now))
        if self.tracer is not None:
            self.tracer.emit(AdmissionDecision(
                time=now, tenant_id=request.tenant_id,
                n_vms=request.n_vms, tenant_class=klass,
                admitted=assignment is not None, constraint=constraint,
                scope=scope))

    def _rejection_constraint(self, request: TenantRequest) -> str:
        """Which constraint bound a rejection (see
        :mod:`repro.placement.audit`).

        ``delay`` maps to the paper's second queueing constraint (summed
        queue capacities along the path must stay within the delay
        guarantee): either no scope satisfies it at all, or the scope it
        allows is too narrow to hold the tenant even though slots exist
        elsewhere.  ``queue_bound`` is the residual class: slots existed
        within an allowed scope yet no arrangement passed the per-port
        checks (for managers without port checks it also covers
        structural failures such as fault-domain spreading).
        """
        allowed = self._allowed_scope(request)
        if allowed is None:
            return CONSTRAINT_DELAY
        if self._total_free < request.n_vms:
            return CONSTRAINT_CAPACITY
        if not self._scope_has_room(allowed, request.n_vms):
            return CONSTRAINT_DELAY
        return CONSTRAINT_QUEUE_BOUND

    def _scope_has_room(self, scope: str, n_vms: int) -> bool:
        """Whether any single domain of ``scope`` has ``n_vms`` free slots.

        Only consulted off the hot path (rejection classification), so
        the O(domains) scan is fine.
        """
        if scope == "cluster":
            return True  # the caller already checked _total_free
        if scope == "server":
            return any(free >= n_vms for free in self.free_slots)
        domains = (range(self.topology.n_racks) if scope == "rack"
                   else range(self.topology.n_pods))
        return any(self._domain_free(scope, d) >= n_vms
                   for d in domains)

    def remove(self, tenant_id: int) -> None:
        """Release a tenant's slots and reservations (exactly).

        Every affected port's totals are rebuilt from the surviving
        registry entries rather than decremented, so release is exact:
        the port ends bit-identical to one that never saw the tenant
        (the placement property tests pin this).  Slots returning to a
        cordoned server stay withheld from the free pool.
        """
        placement = self.placements.pop(tenant_id, None)
        if placement is None:
            raise KeyError(f"tenant {tenant_id} is not placed")
        for server, count in placement.vms_per_server().items():
            self._change_slots(server, count)
            if server in self._cordoned:
                self._change_slots(server, -count)
                self._cordoned[server] += count
        key = ("tenant", tenant_id)
        for port_id, _contribution in self._commits.pop(tenant_id):
            registry = self._port_registry[port_id]
            del registry[key]
            self.states[port_id].reset_totals(registry.values())
        self.reservation_version += 1

    def _change_slots(self, server: int, delta: int) -> None:
        """Adjust one server's free slots and every cached total."""
        topo = self.topology
        before = self.free_slots[server]
        after = before + delta
        self.free_slots[server] = after
        rack = server // topo.servers_per_rack
        pod = rack // topo.racks_per_pod
        self._rack_free[rack] += delta
        self._pod_free[pod] += delta
        self._total_free += delta
        full = topo.slots_per_server
        if before == full and after < full:
            self._rack_touched[rack] += 1
            self._pod_touched[pod] += 1
        elif before < full and after == full:
            self._rack_touched[rack] -= 1
            self._pod_touched[pod] -= 1

    # -- fault integration -------------------------------------------------------

    def cordon_server(self, server: int) -> int:
        """Withhold a crashed server's free slots from placement.

        Returns the number of slots withheld.  Idempotent; slots released
        onto a cordoned server later (see :meth:`remove`) stay withheld
        until :meth:`uncordon_server`.
        """
        if not 0 <= server < self.topology.n_servers:
            raise ValueError(f"server {server} out of range")
        if server in self._cordoned:
            return 0
        free = self.free_slots[server]
        if free:
            self._change_slots(server, -free)
        self._cordoned[server] = free
        return free

    def uncordon_server(self, server: int) -> int:
        """Return a repaired server's withheld slots to the free pool."""
        freed = self._cordoned.pop(server, 0)
        if freed:
            self._change_slots(server, freed)
        return freed

    @property
    def cordoned_servers(self) -> List[int]:
        """Ids of servers currently fenced off from placement."""
        return sorted(self._cordoned)

    def reserve_capacity(self, port_id: int, contribution: Contribution,
                         key: str) -> None:
        """Register a non-tenant reservation (a fault "poison") at a port.

        Degraded-mode admission works by reserving the *lost* fraction of
        a faulted port's capacity through the same registry tenant
        commits use, so the existing admission checks automatically
        reject placements the degraded port cannot carry -- and exact
        release keeps working (a rebuild folds poisons like any other
        contribution).
        """
        registry = self._port_registry[port_id]
        rkey = ("reserve", key)
        if rkey in registry:
            raise ValueError(f"reservation {key!r} already held "
                             f"at port {port_id}")
        registry[rkey] = contribution
        self.states[port_id].add(contribution)
        self.reservation_version += 1

    def release_capacity(self, port_id: int, key: str) -> None:
        """Drop a :meth:`reserve_capacity` reservation, rebuilding exactly."""
        registry = self._port_registry[port_id]
        rkey = ("reserve", key)
        if rkey not in registry:
            raise KeyError(f"no reservation {key!r} at port {port_id}")
        del registry[rkey]
        self.states[port_id].reset_totals(registry.values())
        self.reservation_version += 1

    def tenants_crossing(self, port_id: int) -> List[int]:
        """Tenants with a committed contribution at ``port_id``."""
        return [key[1] for key in self._port_registry[port_id]
                if key[0] == "tenant"]

    def tenants_on_server(self, server: int) -> List[int]:
        """Tenants with at least one VM placed on ``server``."""
        return [tid for tid, placement in self.placements.items()
                if server in placement.vms_per_server()]

    @property
    def used_slots(self) -> int:
        """VM slots currently occupied."""
        return self.topology.n_slots - self._total_free

    @property
    def occupancy(self) -> float:
        """Fraction of VM slots currently in use."""
        return self.used_slots / self.topology.n_slots

    def admitted_fraction(self, tenant_class: Optional[TenantClass] = None
                          ) -> float:
        """Fraction of requests admitted, overall or per class."""
        if tenant_class is None:
            total = self.accepted + self.rejected
            return self.accepted / total if total else 1.0
        acc = self.accepted_by_class.get(tenant_class, 0)
        rej = self.rejected_by_class.get(tenant_class, 0)
        return acc / (acc + rej) if acc + rej else 1.0

    # -- search ------------------------------------------------------------------

    def _find_assignment(self, request: TenantRequest
                         ) -> Optional[Dict[int, int]]:
        allowed = self._allowed_scope(request)
        if allowed is None:
            return None
        if self.fast_paths and self._total_free < request.n_vms:
            return None  # not enough slots anywhere: every scope fails
        for scope in SCOPES[:SCOPES.index(allowed) + 1]:
            assignment = self._search_scope(request, scope)
            if assignment is not None:
                return assignment
        return None

    def _search_scope(self, request: TenantRequest, scope: str
                      ) -> Optional[Dict[int, int]]:
        topo = self.topology
        if scope == "server":
            if self.min_fault_domains > 1 and request.n_vms > 1:
                return None  # a lone server is a single fault domain
            for server in self._single_server_candidates(request.n_vms):
                if self.free_slots[server] >= request.n_vms:
                    assignment = {server: request.n_vms}
                    if self._validate(request, assignment):
                        return assignment
            return None
        if scope == "rack":
            domain_ids: Sequence[int] = range(topo.n_racks)
        elif scope == "pod":
            domain_ids = range(topo.n_pods)
        else:
            domain_ids = (0,)
        pristine_failed = False
        for domain in domain_ids:
            if self._domain_free(scope, domain) < request.n_vms:
                continue
            pristine = self._domain_pristine_id(scope, domain)
            if pristine_failed and pristine:
                # An identical untouched domain already failed; all empty
                # domains of this scope are interchangeable.
                continue
            servers = self._domain_servers(scope, domain)
            available = [s for s in servers if self.free_slots[s] > 0]
            for strategy in _STRATEGIES:
                assignment = self._fill(request, available, strategy,
                                        scope)
                if assignment and self._validate(request, assignment):
                    return assignment
            if pristine:
                pristine_failed = True
        return None

    def _single_server_candidates(self, n_vms: int) -> Iterable[int]:
        """Servers worth probing for a whole-tenant single-server fit.

        The fast path walks racks and skips every rack whose cached free
        total is below ``n_vms`` -- no single server inside can fit the
        tenant either -- which prunes most of a large datacenter in O(1)
        per rack.  The slow path scans all servers (the seed behaviour).
        """
        topo = self.topology
        if not self.fast_paths:
            yield from range(topo.n_servers)
            return
        per_rack = topo.servers_per_rack
        for rack in range(topo.n_racks):
            if self._rack_free[rack] < n_vms:
                continue
            start = rack * per_rack
            yield from range(start, start + per_rack)

    def _domain_servers(self, scope: str, domain: int) -> Sequence[int]:
        topo = self.topology
        if scope == "rack":
            return list(topo.servers_in_rack(domain))
        if scope == "pod":
            return list(topo.servers_in_pod(domain))
        return list(range(topo.n_servers))

    def _domain_free(self, scope: str, domain: int) -> int:
        """Free slots in one search domain, O(1) on the fast path."""
        if self.fast_paths:
            if scope == "rack":
                return self._rack_free[domain]
            if scope == "pod":
                return self._pod_free[domain]
            return self._total_free
        return sum(self.free_slots[s]
                   for s in self._domain_servers(scope, domain))

    def _domain_pristine_id(self, scope: str, domain: int) -> bool:
        """True when no server in the domain hosts anything yet."""
        if self.fast_paths:
            if scope == "rack":
                return self._rack_touched[domain] == 0
            if scope == "pod":
                return self._pod_touched[domain] == 0
            return self._total_free == self.topology.n_slots
        return self._domain_pristine(self._domain_servers(scope, domain))

    def _domain_pristine(self, servers: Sequence[int]) -> bool:
        """True when no server in the domain hosts anything yet."""
        full = self.topology.slots_per_server
        return all(self.free_slots[s] == full for s in servers)

    def _fill(self, request: TenantRequest, available: Sequence[int],
              strategy: str, scope: str) -> Optional[Dict[int, int]]:
        """Distribute all N VMs over the ``available`` (non-full) servers;
        ``None`` if they don't fit."""
        remaining = request.n_vms
        assignment: Dict[int, int] = {}
        k_estimate = max(1, len(available) - 1)
        full = self.topology.slots_per_server
        pristine_failed = False
        for position, server in enumerate(available):
            if remaining == 0:
                break
            # The pristine flag is only consulted on failure paths, so it
            # is evaluated lazily: servers that accept VMs (the common
            # case) never touch the port states.
            pristine: Optional[bool] = None
            if pristine_failed:
                pristine = self._server_pristine(server, full)
                if pristine:
                    continue  # identical to an empty server that failed
            want = min(remaining, self.free_slots[server])
            if self.min_fault_domains > 1:
                want = min(want, math.ceil(request.n_vms
                                           / self.min_fault_domains))
            if strategy == "balanced":
                servers_left = len(available) - position
                want = min(want, math.ceil(remaining / servers_left))
            placed = self._max_vms_on_server(request, server, want,
                                             k_estimate, scope)
            if placed:
                assignment[server] = placed
                remaining -= placed
            else:
                if pristine is None:
                    pristine = self._server_pristine(server, full)
                if pristine:
                    pristine_failed = True
        if remaining:
            return None
        return assignment

    def _server_pristine(self, server: int, full: int) -> bool:
        return (self.free_slots[server] == full
                and self._nic_states[server].is_empty
                and self._tor_down_states[server].is_empty)

    def _max_vms_on_server(self, request: TenantRequest, server: int,
                           want: int, k_estimate: int, scope: str) -> int:
        """Largest ``m <= want`` passing this server's two port checks."""
        if not self._checks_ports():
            return want
        if self._server_ok(request, server, want, k_estimate, scope):
            return want  # uncongested common case: one probe
        if want <= 1:
            return 0
        if self.fast_paths and 2 * want <= request.n_vms:
            # Monotone regime: every probed m sits on the rising half of
            # the tightened hose min(m, N-m), so the uplink contribution
            # grows componentwise with m and ok(m) is non-increasing, and
            # the largest passing m binary-searches in O(log want).  (The
            # downlink check mixes a growing bandwidth term with shrinking
            # burst/slack terms; bench_hotpaths and the placement property
            # tests assert fast/reference decisions stay identical.)
            lo, hi = 0, want - 1  # lo: known-good floor (0 = none)
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if self._server_ok(request, server, mid, k_estimate,
                                   scope):
                    lo = mid
                else:
                    hi = mid - 1
            return lo
        for m in range(want - 1, 0, -1):
            if self._server_ok(request, server, m, k_estimate, scope):
                return m
        return 0

    def _server_ok(self, request: TenantRequest, server: int, m: int,
                   k_estimate: int, scope: str) -> bool:
        # The memo probes are inlined (rather than going through
        # _contribution) because this runs for every (server, m) the fill
        # loop tries; _contribution still owns the miss path and stores
        # under the same (m, k, kind.value, scope) keys.
        memo = self._contribution_memo
        up = memo.get((m, 1, _NIC_UP, scope))
        if up is None:
            up = self._contribution(request, m, 1, PortKind.NIC_UP, scope)
        if not self._port_ok(self._nic_states[server], up):
            return False
        n_other = request.n_vms - m
        down = memo.get((n_other, k_estimate, _TOR_DOWN, scope))
        if down is None:
            down = self._contribution(request, n_other, k_estimate,
                                      PortKind.TOR_DOWN, scope)
        return self._port_ok(self._tor_down_states[server], down)

    # -- validation and commit ------------------------------------------------------

    def _validate(self, request: TenantRequest,
                  assignment: Dict[int, int]) -> bool:
        if not self._checks_ports():
            return True
        for port_id, contribution in self._port_contributions(request,
                                                              assignment):
            if not self._port_ok(self.states[port_id], contribution):
                return False
        return True

    def _commit(self, request: TenantRequest,
                assignment: Dict[int, int]) -> Placement:
        vm_servers: List[int] = []
        for server, count in sorted(assignment.items()):
            if count > self.free_slots[server]:
                raise RuntimeError("assignment exceeds free slots")
            self._change_slots(server, -count)
            vm_servers.extend([server] * count)
        commits = list(self._port_contributions(request, assignment))
        key = ("tenant", request.tenant_id)
        for port_id, contribution in commits:
            self.states[port_id].add(contribution)
            self._port_registry[port_id][key] = contribution
        placement = Placement(request=request, vm_servers=vm_servers)
        self.placements[request.tenant_id] = placement
        self._commits[request.tenant_id] = commits
        self.reservation_version += 1
        return placement

    def _port_contributions(self, request: TenantRequest,
                            assignment: Dict[int, int]
                            ) -> Iterable[Tuple[int, Contribution]]:
        """Exact per-port contributions for a complete assignment.

        Yields ``(port_id, contribution)`` for every port that carries this
        tenant's traffic, with the true sending-server counts behind each
        port.  Used both to validate and to commit/release, so reservations
        always balance.
        """
        if request.guarantee is None or not self._checks_ports():
            return
        topo = self.topology
        n = request.n_vms
        servers = sorted(assignment)
        if len(servers) <= 1:
            return  # same-server traffic never crosses a network port
        scope = self._assignment_scope(assignment)
        racks: Dict[int, int] = {}
        pods: Dict[int, int] = {}
        rack_servers: Dict[int, int] = {}
        pod_servers: Dict[int, int] = {}
        for server, count in assignment.items():
            rack = topo.rack_of(server)
            pod = topo.pod_of(server)
            racks[rack] = racks.get(rack, 0) + count
            pods[pod] = pods.get(pod, 0) + count
            rack_servers[rack] = rack_servers.get(rack, 0) + 1
            pod_servers[pod] = pod_servers.get(pod, 0) + 1
        n_servers_used = len(servers)

        for server, count in assignment.items():
            up_port = topo.nic_up(server)
            yield up_port.port_id, self._contribution(
                request, count, 1, up_port.kind, scope)
            down_port = topo.tor_down(server)
            yield down_port.port_id, self._contribution(
                request, n - count, n_servers_used - 1, down_port.kind,
                scope)
        if len(racks) > 1:
            for rack, count in racks.items():
                up = topo.tor_up(rack)
                yield up.port_id, self._contribution(
                    request, count, rack_servers[rack], up.kind, scope)
                down = topo.agg_down(rack)
                yield down.port_id, self._contribution(
                    request, n - count, n_servers_used - rack_servers[rack],
                    down.kind, scope)
        if len(pods) > 1:
            for pod, count in pods.items():
                up = topo.agg_up(pod)
                yield up.port_id, self._contribution(
                    request, count, pod_servers[pod], up.kind, scope)
                down = topo.core_down(pod)
                yield down.port_id, self._contribution(
                    request, n - count, n_servers_used - pod_servers[pod],
                    down.kind, scope)

    def _assignment_scope(self, assignment: Dict[int, int]) -> str:
        """How widely an assignment spreads: server/rack/pod/cluster."""
        topo = self.topology
        servers = list(assignment)
        if len(servers) == 1:
            return "server"
        racks = {topo.rack_of(s) for s in servers}
        if len(racks) == 1:
            return "rack"
        pods = {topo.pod_of(s) for s in servers}
        return "pod" if len(pods) == 1 else "cluster"

    def _contribution(self, request: TenantRequest, m_senders: int,
                      k_servers: int, kind: PortKind,
                      scope: str = "cluster") -> Contribution:
        """Hose-model contribution of ``m`` sender VMs at one port kind.

        Bandwidth follows the tightened hose aggregate
        ``min(m, N-m) * B``; bursts are not destination-limited so all
        ``m`` senders may burst at once (``m * S``), inflated by worst-case
        upstream bunching; the burst drain rate is capped by the senders'
        physical links (``k_servers`` NICs).

        Within one ``place`` call the result depends only on
        ``(m_senders, k_servers, kind, scope)``, so it is memoised per
        request (the memo is cleared on entry to :meth:`place`).
        """
        if self.fast_paths:
            # Keyed by kind.value: hashing an Enum member goes through a
            # Python-level __hash__, hashing its interned string does not.
            key = (m_senders, k_servers, kind.value, scope)
            cached = self._contribution_memo.get(key)
            if cached is not None:
                return cached
            upstream = self._upstream_qcap[(kind.value, scope)]
        else:
            # Reference mode recomputes from the topology every time, as
            # the seed implementation did (kept as the timing baseline).
            key = None
            upstream = self.topology.upstream_queue_capacity(kind, scope)
        guarantee = request.guarantee
        n = request.n_vms
        if guarantee is None or m_senders <= 0 or m_senders >= n:
            contribution = Contribution(0.0, 0.0, 0.0, 0.0)
        else:
            if self.hose_tightening:
                bandwidth = (min(m_senders, n - m_senders)
                             * guarantee.bandwidth)
            else:
                bandwidth = m_senders * guarantee.bandwidth
            slack = m_senders * units.MTU
            burst = (m_senders * guarantee.burst + bandwidth * upstream)
            burst = max(burst, slack)
            raw_peak = m_senders * guarantee.effective_peak_rate
            capped = min(raw_peak,
                         max(k_servers, 1) * self.topology.link_rate)
            peak = max(bandwidth, capped)
            contribution = Contribution(bandwidth=bandwidth, burst=burst,
                                        peak_rate=peak, packet_slack=slack)
        if key is not None:
            self._contribution_memo[key] = contribution
        return contribution

    # -- bookkeeping ---------------------------------------------------------------

    def _count(self, request: TenantRequest, admitted: bool) -> None:
        bucket = (self.accepted_by_class if admitted
                  else self.rejected_by_class)
        bucket[request.tenant_class] = bucket.get(request.tenant_class,
                                                  0) + 1
        if admitted:
            self.accepted += 1
        else:
            self.rejected += 1
