"""Section 4.4 at cluster scale: utilization recovered by best-effort tenants.

Silo's guarantees are not work-conserving across tenants -- Fig. 16 shows
the utilization price.  Section 4.4's remedy is to carry best-effort
tenants on the residual capacity at low switch priority.  This bench runs
the fluid cluster simulation at a fixed guaranteed-tenant load while
sweeping the fraction of extra best-effort tenants, and reports the
utilization recovered -- with guaranteed tenants' job durations untouched.
"""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.flowsim import ClusterSim
from repro.flowsim.workload import TenantArrival, TenantWorkload, WorkloadConfig
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology

from conftest import print_table, run_once

HORIZON = 120.0
BE_EXTRA = [0.0, 0.25, 0.5]  # best-effort arrivals per guaranteed arrival


class MixedWorkload:
    """The calibrated guaranteed stream plus interleaved BE tenants."""

    def __init__(self, base: TenantWorkload, be_fraction: float):
        self.base = base
        self.be_fraction = be_fraction

    def arrivals(self, until):
        carry = 0.0
        for arrival in self.base.arrivals(until):
            yield arrival
            carry += self.be_fraction
            while carry >= 1.0:
                carry -= 1.0
                request = TenantRequest(
                    n_vms=8, guarantee=None,
                    tenant_class=TenantClass.BEST_EFFORT)
                yield TenantArrival(
                    time=arrival.time, request=request,
                    pairs=[(i, (i + 4) % 8) for i in range(8)],
                    flow_bytes=500 * units.MB,
                    compute_time=1.0)


def run_cell(be_fraction: float):
    topo = TreeTopology(n_pods=2, racks_per_pod=4, servers_per_rack=10,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0)
    manager = SiloPlacementManager(topo)
    config = WorkloadConfig(b_flow_bytes=250 * units.MB,
                            a_flow_bytes=5 * units.MB,
                            mean_compute_time=8.0,
                            permutation_x=3, mean_vms=10, max_vms=16)
    base = TenantWorkload.for_occupancy(config, 0.5, topo.n_slots, seed=31)
    base.arrival_rate *= 1.5
    sim = ClusterSim(manager, sharing="reserved")
    return sim.run(MixedWorkload(base, be_fraction), until=HORIZON)


def compute():
    return {fraction: run_cell(fraction) for fraction in BE_EXTRA}


@pytest.mark.benchmark(group="ablation-best-effort")
def test_ablation_best_effort_utilization(benchmark):
    results = run_once(benchmark, compute)

    rows = []
    for fraction, stats in results.items():
        rows.append([
            f"{fraction:g}",
            f"{stats.network_utilization:.2%}",
            f"{stats.mean_occupancy:.1%}",
            f"{stats.finished_jobs}",
        ])
    print_table(
        "Section 4.4: utilization recovered by best-effort tenants "
        "(fixed guaranteed load)",
        ["BE per guaranteed arrival", "utilization", "occupancy",
         "jobs"], rows)

    # Utilization rises monotonically with the best-effort share.
    utils = [results[f].network_utilization for f in BE_EXTRA]
    assert utils[1] > utils[0]
    assert utils[2] > utils[1]
    # And meaningfully: the residual class recovers a decent chunk.
    assert utils[-1] > 1.3 * utils[0]
