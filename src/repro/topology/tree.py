"""Multi-rooted tree datacenter topology (pods -> racks -> servers).

The physical multi-rooted tree is modelled as a logical single-rooted tree
whose uplink capacities fold in the aggregate capacity of the parallel
roots, the standard abstraction used by Oktopus-style placement work.  Each
level can be oversubscribed (the paper's evaluation uses 1:5 per level).

Every directed hop is a :class:`~repro.topology.switch.Port`; packets from
server ``s`` to server ``t`` cross, in order:

* same server: no network ports (hypervisor vswitch only);
* same rack: ``nic_up(s), tor_down(t)``;
* same pod: ``nic_up(s), tor_up(rack_s), agg_down(rack_t), tor_down(t)``;
* cross pod: ``nic_up(s), tor_up(rack_s), agg_up(pod_s), core_down(pod_t),
  agg_down(rack_t), tor_down(t)``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Tuple

from repro import units
from repro.topology.switch import Port, PortKind

#: Placement scopes, narrowest first (used by the greedy search).
SCOPES = ("server", "rack", "pod", "cluster")


class TreeTopology:
    """A three-tier tree with VM slots at the leaves.

    Args:
        n_pods: pods in the datacenter.
        racks_per_pod: racks in each pod.
        servers_per_rack: servers in each rack.
        slots_per_server: VM slots per server.
        link_rate: server NIC / ToR port rate in bytes per second.
        oversubscription: per-level oversubscription factor (1.0 = full
            bisection; the paper uses 5.0).
        buffer_bytes: per-port output buffer (312 KB in the paper, a
            shallow-buffered commodity switch).
    """

    def __init__(self, n_pods: int = 1, racks_per_pod: int = 1,
                 servers_per_rack: int = 4, slots_per_server: int = 4,
                 link_rate: float = units.gbps(10),
                 oversubscription: float = 1.0,
                 buffer_bytes: float = 312 * units.KB) -> None:
        if min(n_pods, racks_per_pod, servers_per_rack,
               slots_per_server) < 1:
            raise ValueError("all topology dimensions must be >= 1")
        if oversubscription < 1.0:
            raise ValueError("oversubscription factor must be >= 1")
        self.n_pods = n_pods
        self.racks_per_pod = racks_per_pod
        self.servers_per_rack = servers_per_rack
        self.slots_per_server = slots_per_server
        self.link_rate = link_rate
        self.oversubscription = oversubscription
        self.buffer_bytes = buffer_bytes

        self.n_racks = n_pods * racks_per_pod
        self.n_servers = self.n_racks * servers_per_rack
        self.n_slots = self.n_servers * slots_per_server

        # Uplinks carry the level's aggregate capacity divided by the
        # oversubscription factor, but are never slower than one server
        # link (the physical trunk is at least one cable).
        self.tor_uplink_rate = max(
            link_rate,
            servers_per_rack * link_rate / oversubscription)
        self.agg_uplink_rate = max(
            link_rate,
            racks_per_pod * self.tor_uplink_rate / oversubscription)

        self._ports: List[Port] = []
        self._nic_up: List[Port] = []
        self._tor_down: List[Port] = []
        self._tor_up: List[Port] = []
        self._agg_down: List[Port] = []
        self._agg_up: List[Port] = []
        self._core_down: List[Port] = []
        self._build_ports()
        self._assign_upstream_queue_capacities()

    # -- construction ------------------------------------------------------

    def _new_port(self, kind: PortKind, capacity: float, index: int) -> Port:
        port = Port(port_id=len(self._ports), kind=kind, capacity=capacity,
                    buffer_bytes=self.buffer_bytes, index=index)
        self._ports.append(port)
        return port

    def _build_ports(self) -> None:
        for server in range(self.n_servers):
            self._nic_up.append(
                self._new_port(PortKind.NIC_UP, self.link_rate, server))
            self._tor_down.append(
                self._new_port(PortKind.TOR_DOWN, self.link_rate, server))
        for rack in range(self.n_racks):
            self._tor_up.append(
                self._new_port(PortKind.TOR_UP, self.tor_uplink_rate, rack))
            self._agg_down.append(
                self._new_port(PortKind.AGG_DOWN, self.tor_uplink_rate,
                               rack))
        for pod in range(self.n_pods):
            self._agg_up.append(
                self._new_port(PortKind.AGG_UP, self.agg_uplink_rate, pod))
            self._core_down.append(
                self._new_port(PortKind.CORE_DOWN, self.agg_uplink_rate,
                               pod))

    def _assign_upstream_queue_capacities(self) -> None:
        """Worst-case queue capacity accumulated before each port kind.

        Used to bound egress burst inflation (section 4.2.2): traffic
        reaching a port may have been bunched by every buffered port it
        crossed earlier.
        """
        def qcap(ports: Sequence[Port]) -> float:
            return ports[0].queue_capacity if ports else 0.0

        nic = qcap(self._nic_up)
        tor_up = qcap(self._tor_up) if self.n_servers > self.servers_per_rack or self.n_racks > 1 else 0.0
        agg_up = qcap(self._agg_up) if self.n_pods > 1 else 0.0
        core = qcap(self._core_down) if self.n_pods > 1 else 0.0

        for port in self._tor_up:
            port.upstream_queue_capacity = nic
        for port in self._agg_up:
            port.upstream_queue_capacity = nic + tor_up
        for port in self._core_down:
            port.upstream_queue_capacity = nic + tor_up + agg_up
        agg_down_upstream = nic + tor_up
        if self.n_pods > 1:
            agg_down_upstream = max(agg_down_upstream,
                                    nic + tor_up + agg_up + core)
        for port in self._agg_down:
            port.upstream_queue_capacity = agg_down_upstream
        tor_down_upstream = nic
        if self.n_racks > 1:
            tor_down_upstream = max(
                tor_down_upstream,
                agg_down_upstream + qcap(self._agg_down))
        for port in self._tor_down:
            port.upstream_queue_capacity = tor_down_upstream

    # -- structure queries --------------------------------------------------

    def rack_of(self, server: int) -> int:
        """Rack index of a server."""
        self._check_server(server)
        return server // self.servers_per_rack

    def pod_of(self, server: int) -> int:
        """Pod index of a server."""
        return self.rack_of(server) // self.racks_per_pod

    def servers_in_rack(self, rack: int) -> range:
        """Server ids in one rack."""
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack {rack} out of range")
        start = rack * self.servers_per_rack
        return range(start, start + self.servers_per_rack)

    def racks_in_pod(self, pod: int) -> range:
        """Rack indices in one pod."""
        if not 0 <= pod < self.n_pods:
            raise ValueError(f"pod {pod} out of range")
        start = pod * self.racks_per_pod
        return range(start, start + self.racks_per_pod)

    def servers_in_pod(self, pod: int) -> range:
        """Server ids in one pod."""
        racks = self.racks_in_pod(pod)
        return range(racks.start * self.servers_per_rack,
                     racks.stop * self.servers_per_rack)

    def _check_server(self, server: int) -> None:
        if not 0 <= server < self.n_servers:
            raise ValueError(f"server {server} out of range")

    # -- port access ---------------------------------------------------------

    @property
    def ports(self) -> Tuple[Port, ...]:
        """Every port of the tree."""
        return tuple(self._ports)

    def nic_up(self, server: int) -> Port:
        """A server's NIC uplink port."""
        self._check_server(server)
        return self._nic_up[server]

    def tor_down(self, server: int) -> Port:
        """The ToR downlink port toward a server."""
        self._check_server(server)
        return self._tor_down[server]

    def tor_up(self, rack: int) -> Port:
        """A rack's ToR uplink port."""
        return self._tor_up[rack]

    def agg_down(self, rack: int) -> Port:
        """The aggregation downlink port toward a rack."""
        return self._agg_down[rack]

    def agg_up(self, pod: int) -> Port:
        """A pod's aggregation uplink port."""
        return self._agg_up[pod]

    def core_down(self, pod: int) -> Port:
        """The core downlink port toward a pod."""
        return self._core_down[pod]

    # -- paths ----------------------------------------------------------------

    def path_ports(self, src_server: int, dst_server: int) -> List[Port]:
        """Ordered directed ports from ``src_server`` to ``dst_server``."""
        self._check_server(src_server)
        self._check_server(dst_server)
        if src_server == dst_server:
            return []
        src_rack, dst_rack = self.rack_of(src_server), self.rack_of(dst_server)
        if src_rack == dst_rack:
            return [self._nic_up[src_server], self._tor_down[dst_server]]
        src_pod, dst_pod = src_rack // self.racks_per_pod, dst_rack // self.racks_per_pod
        if src_pod == dst_pod:
            return [self._nic_up[src_server], self._tor_up[src_rack],
                    self._agg_down[dst_rack], self._tor_down[dst_server]]
        return [self._nic_up[src_server], self._tor_up[src_rack],
                self._agg_up[src_pod], self._core_down[dst_pod],
                self._agg_down[dst_rack], self._tor_down[dst_server]]

    def path_queue_capacity(self, src_server: int, dst_server: int) -> float:
        """Sum of queue capacities along the path (Silo's delay check)."""
        return sum(p.queue_capacity
                   for p in self.path_ports(src_server, dst_server))

    def scope_queue_capacity(self, scope: str) -> float:
        """Worst-case path queue capacity if all VMs stay within ``scope``.

        This is the left side of Silo's second constraint
        ``sum Q-capacity <= d`` for the widest path the scope allows.
        """
        if scope not in SCOPES:
            raise ValueError(f"scope must be one of {SCOPES}, got {scope!r}")
        if scope == "server":
            return 0.0
        hops: List[Port] = []
        if scope == "rack":
            hops = [self._nic_up[0], self._tor_down[0]]
        elif scope == "pod":
            if self.racks_per_pod == 1:
                return self.scope_queue_capacity("rack")
            hops = [self._nic_up[0], self._tor_up[0], self._agg_down[0],
                    self._tor_down[0]]
        else:
            if self.n_pods == 1:
                return self.scope_queue_capacity("pod")
            hops = [self._nic_up[0], self._tor_up[0], self._agg_up[0],
                    self._core_down[0], self._agg_down[0],
                    self._tor_down[0]]
        return sum(p.queue_capacity for p in hops)

    def upstream_queue_capacity(self, kind: PortKind, scope: str) -> float:
        """Worst queue capacity accumulated before a port of ``kind``.

        ``scope`` is how widely the traffic's endpoints are spread
        ("rack", "pod" or "cluster"): traffic between VMs confined to one
        rack reaches a TOR_DOWN port having crossed only the sender NIC,
        while cluster-wide traffic may have been bunched at every level.
        Used to bound egress burst inflation per tenant (section 4.2.2).
        """
        if scope not in SCOPES:
            raise ValueError(f"scope must be one of {SCOPES}, got {scope!r}")
        nic = self._nic_up[0].queue_capacity
        tor_up = self._tor_up[0].queue_capacity
        agg_down = self._agg_down[0].queue_capacity
        agg_up = self._agg_up[0].queue_capacity
        core = self._core_down[0].queue_capacity
        if kind is PortKind.NIC_UP:
            return 0.0
        if kind is PortKind.TOR_UP:
            return nic
        if kind is PortKind.AGG_UP:
            return nic + tor_up
        if kind is PortKind.CORE_DOWN:
            return nic + tor_up + agg_up
        if kind is PortKind.AGG_DOWN:
            if scope == "cluster" and self.n_pods > 1:
                return nic + tor_up + agg_up + core
            return nic + tor_up
        # PortKind.TOR_DOWN
        if scope in ("server", "rack"):
            return nic
        if scope == "pod" or self.n_pods == 1:
            return nic + tor_up + agg_down
        return nic + tor_up + agg_up + core + agg_down

    def widest_scope_for_delay(self, delay: float) -> str:
        """The widest placement scope whose paths satisfy a delay guarantee.

        Raises ``ValueError`` when not even same-server placement fits
        (cannot happen for positive delays, since same-server traffic never
        crosses a network port in this model).
        """
        widest = None
        for scope in SCOPES:
            if self.scope_queue_capacity(scope) <= delay:
                widest = scope
        if widest is None:
            raise ValueError(f"no scope satisfies delay {delay}")
        return widest

    def __repr__(self) -> str:
        return (f"TreeTopology({self.n_pods} pods x {self.racks_per_pod} "
                f"racks x {self.servers_per_rack} servers x "
                f"{self.slots_per_server} slots, "
                f"{units.to_gbps(self.link_rate):.0f}Gbps links, "
                f"1:{self.oversubscription:.0f} oversub)")
