"""The Fig. 8 token-bucket hierarchy enforcing a VM's guarantees.

A packet from a VM to destination ``d`` is stamped by three chained
buckets, each only able to push the departure time later:

1. a per-destination bucket of rate ``B_d`` -- these enforce the hose
   model; the EyeQ-style coordination (:mod:`repro.pacer.eyeq`) keeps
   ``sum_d B_d <= B`` when receivers are contended;
2. the tenant bucket ``{B, S}`` -- average rate ``B`` with burst
   allowance ``S``;
3. the peak bucket ``{Bmax, 1 packet}`` -- even a burst is serialized at
   no more than ``Bmax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.obs.events import PacerStamp
from repro.pacer.token_bucket import TokenBucket


@dataclass(frozen=True)
class PacerConfig:
    """Static pacer parameters for one VM, derived from its guarantee."""

    bandwidth: float
    burst: float
    peak_rate: float
    packet_size: float = units.MTU

    @classmethod
    def from_guarantee(cls, guarantee: NetworkGuarantee,
                       packet_size: float = units.MTU) -> "PacerConfig":
        """A pacer configuration matching a tenant's guarantee."""
        return cls(bandwidth=guarantee.bandwidth,
                   burst=max(guarantee.burst, packet_size),
                   peak_rate=guarantee.effective_peak_rate,
                   packet_size=packet_size)


class VMPacer:
    """Stamps departure times for one VM's packets (Fig. 8 hierarchy)."""

    def __init__(self, config: PacerConfig, start_time: float = 0.0,
                 tracer=None, source: str = "vm"):
        self.config = config
        self._start_time = start_time
        self._tenant = TokenBucket(config.bandwidth, config.burst,
                                   start_time)
        self._peak = TokenBucket(config.peak_rate, config.packet_size,
                                 start_time)
        self._per_destination: Dict[Hashable, TokenBucket] = {}
        self._last_stamp = start_time
        #: Optional :class:`repro.obs.TraceSink` receiving one
        #: ``pacer.stamp`` event per stamped packet; ``source`` labels
        #: this pacer in those events.
        self.tracer = tracer
        self.source = source

    def destination_bucket(self, destination: Hashable) -> TokenBucket:
        """The top-level bucket for one destination (created on demand).

        A new destination starts at the full tenant bandwidth ``B``; the
        hose coordination lowers it when the receiver is contended.
        """
        bucket = self._per_destination.get(destination)
        if bucket is None:
            bucket = TokenBucket(self.config.bandwidth, self.config.burst,
                                 self._start_time)
            self._per_destination[destination] = bucket
        return bucket

    def set_destination_rate(self, destination: Hashable, rate: float,
                             now: float) -> None:
        """Apply a hose-model rate decision for one destination."""
        self.destination_bucket(destination).set_rate(rate, now)

    def stamp(self, destination: Hashable, size: float,
              now: float) -> float:
        """Departure time for a ``size``-byte packet to ``destination``.

        Each stage stamps at or after the previous stage's time, so the
        result respects all three constraints simultaneously and is
        monotonically non-decreasing across calls.
        """
        asked = now
        now = max(now, self._last_stamp)
        t = self.destination_bucket(destination).stamp(size, now)
        t = self._tenant.stamp(size, t)
        t = self._peak.stamp(size, t)
        self._last_stamp = t
        if self.tracer is not None:
            self.tracer.emit(PacerStamp(
                time=asked, source=self.source, destination=str(destination),
                size=size, stamp=t))
        return t

    def backlog(self, now: float) -> float:
        """Virtual backlog (bytes) of the tenant bucket at ``now``.

        Stamped-but-not-yet-due bytes held against the ``{B, S}`` bucket
        -- the hierarchy's bottleneck for a conforming source; see
        :meth:`TokenBucket.deficit`.
        """
        return self._tenant.deficit(now)

    def earliest_departure(self, destination: Hashable, size: float,
                           now: float) -> float:
        """Like :meth:`stamp` but without consuming tokens."""
        now = max(now, self._last_stamp)
        t = self.destination_bucket(destination).would_stamp(size, now)
        t = self._tenant.would_stamp(size, t)
        return self._peak.would_stamp(size, t)
