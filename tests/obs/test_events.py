"""Event taxonomy: kinds, records and the flattening contract."""

import dataclasses

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    AdmissionDecision,
    FaultInjected,
    FlowFinish,
    FlowStart,
    PacerStamp,
    PacketDrop,
    PacketEnqueue,
    PacketMark,
    PacketTx,
    RateFeedback,
    ServiceDecision,
    ServiceIngress,
    ServiceSnapshot,
    TenantRecovery,
    VoidEmit,
    event_record,
)

ALL_EVENTS = [
    PacketEnqueue(time=1.0, port="t[0]", size=1500.0, priority=0,
                  queued_bytes=3000.0),
    PacketDrop(time=1.0, port="t[0]", size=1500.0, priority=1,
               reason="tail"),
    PacketMark(time=1.0, port="t[0]", size=1500.0, queue="queue",
               queued_bytes=99000.0),
    PacketTx(time=1.0, port="t[0]", size=1500.0, priority=0,
             queued_bytes=1500.0),
    FlowStart(time=0.0, tenant_id=7, src=1, dst=2, size=15000.0),
    FlowFinish(time=0.5, tenant_id=7, src=1, dst=2, latency=0.5,
               size=15000.0),
    AdmissionDecision(time=None, tenant_id=7, n_vms=9,
                      tenant_class="CLASS_A", admitted=False,
                      constraint="queue_bound"),
    PacerStamp(time=0.0, source="vm", destination="3", size=1500.0,
               stamp=1e-5),
    VoidEmit(time=0.0, source="nic", wire_bytes=84.0),
    RateFeedback(time=0.2, src=1, dst=2, rate=31.25e6,
                 arrival_rate=62.5e6),
    FaultInjected(time=0.1, target="link:12", action="degrade",
                  factor=0.25),
    TenantRecovery(time=0.3, tenant_id=7, n_vms=9,
                   tenant_class="CLASS_A", outcome="recovered",
                   time_to_recover=0.2),
    ServiceIngress(time=0.4, seq=12, op="admit", outcome="rejected",
                   depth=8, retry_after=0.25),
    ServiceDecision(time=0.5, seq=11, op="admit", outcome="admitted",
                    latency=0.1, tenant_id=7),
    ServiceSnapshot(time=0.6, last_seq=12, digest="ab" * 32),
]


class TestKinds:
    def test_registry_is_complete(self):
        assert {type(e) for e in ALL_EVENTS} == set(EVENT_KINDS.values())

    def test_kinds_are_stable_dotted_tags(self):
        for kind, cls in EVENT_KINDS.items():
            assert kind == cls.kind
            assert kind and " " not in kind

    def test_kind_is_not_a_field(self):
        """``kind`` is a ClassVar tag, not per-instance state."""
        for event in ALL_EVENTS:
            names = {f.name for f in dataclasses.fields(event)}
            assert "kind" not in names
            assert "time" in names

    def test_events_are_immutable(self):
        event = ALL_EVENTS[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.time = 2.0


class TestEventRecord:
    def test_kind_comes_first(self):
        for event in ALL_EVENTS:
            record = event_record(event)
            assert next(iter(record)) == "kind"
            assert record["kind"] == event.kind

    def test_all_fields_exported(self):
        record = event_record(ALL_EVENTS[0])
        assert record == {"kind": "pkt.enqueue", "time": 1.0,
                          "port": "t[0]", "size": 1500.0, "priority": 0,
                          "queued_bytes": 3000.0}

    def test_optional_fields_export_as_none(self):
        record = event_record(FlowFinish(time=1.0, tenant_id=1, src=0,
                                         dst=1, latency=1.0))
        assert record["size"] is None


class TestDerived:
    def test_pacer_stamp_delay(self):
        event = PacerStamp(time=1.0, source="vm", destination="d",
                           size=100.0, stamp=1.25)
        assert event.delay == pytest.approx(0.25)
