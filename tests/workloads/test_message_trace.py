"""Trace capture, file round trips and replay."""

import random

import pytest

from repro import units
from repro.phynet import MetricsCollector, PacketNetwork
from repro.phynet.apps import EpochBurstApp
from repro.topology import TreeTopology
from repro.workloads import Fixed
from repro.workloads.trace import MessageEvent, MessageTrace, TraceReplayer


def sample_trace():
    return MessageTrace([
        MessageEvent(0.002, 1, 0, 5000.0),
        MessageEvent(0.001, 2, 0, 3000.0),
        MessageEvent(0.003, 1, 2, 1500.0),
    ])


class TestMessageTrace:
    def test_events_sorted_by_time(self):
        trace = sample_trace()
        times = [e.time for e in trace]
        assert times == sorted(times)

    def test_totals(self):
        trace = sample_trace()
        assert len(trace) == 3
        assert trace.duration == pytest.approx(0.003)
        assert trace.total_bytes == pytest.approx(9500.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageEvent(-1.0, 0, 1, 100.0)
        with pytest.raises(ValueError):
            MessageEvent(0.0, 0, 1, 0.0)
        with pytest.raises(ValueError):
            MessageEvent(0.0, 1, 1, 100.0)

    def test_csv_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = MessageTrace.from_csv(path)
        assert len(loaded) == len(trace)
        assert loaded.total_bytes == pytest.approx(trace.total_bytes)

    def test_csv_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,src\n0.0,1\n")
        with pytest.raises(ValueError):
            MessageTrace.from_csv(path)

    def test_jsonl_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"time": 0.0, "src_vm": 0, "dst_vm": 1, "size": 100}\n'
            "\n"
            '{"time": 0.5, "src_vm": 1, "dst_vm": 0, "size": 200}\n')
        trace = MessageTrace.from_jsonl(path)
        assert len(trace) == 2


class TestReplay:
    def build_network(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                            slots_per_server=4,
                            link_rate=units.gbps(10))
        net = PacketNetwork(topo)
        for vm in range(3):
            net.add_vm(vm, 1, vm)
        return net

    def test_replay_delivers_all_messages(self):
        net = self.build_network()
        metrics = MetricsCollector()
        replayer = TraceReplayer(net, metrics, tenant_id=1)
        replayer.schedule(sample_trace())
        net.sim.run(until=0.05)
        assert len(metrics.completed(1)) == 3

    def test_capture_then_replay_matches(self):
        """A run captured to a trace and replayed on a fresh network
        reproduces the same message population."""
        net = self.build_network()
        metrics = MetricsCollector()
        app = EpochBurstApp(net, metrics, 1, [0, 1, 2],
                            Fixed(10 * units.KB), epoch=units.msec(1),
                            rng=random.Random(9))
        app.start(phase=0.0)
        net.sim.run(until=0.01)
        trace = MessageTrace.from_metrics(metrics)
        assert len(trace) == len(metrics.records)

        net2 = self.build_network()
        metrics2 = MetricsCollector()
        TraceReplayer(net2, metrics2, 1).schedule(trace)
        net2.sim.run(until=0.05)
        assert len(metrics2.completed(1)) == len(trace)
        originals = sorted(r.size for r in metrics.records)
        replayed = sorted(r.size for r in metrics2.records)
        assert originals == replayed
