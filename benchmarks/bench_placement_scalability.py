"""Section 5's placement microbenchmark: time to place at 100K-host scale.

The paper: "in a simulated datacenter with 100K hosts with an average
tenant requesting 49 VMs... over 100K requests, the maximum placement
time is 1.15 s".  We build the same 100K-host topology and measure the
per-request placement latency over a (smaller, for wall-time) request
stream; the claim under test is that admission stays around a second per
request even at full scale, i.e. it is usable as an online controller.
"""

import random
import time

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology

from conftest import print_table, run_once

N_REQUESTS = 60
MEAN_VMS = 49


def build_datacenter():
    # 100,096 hosts: 23 pods x 34 racks x 128 servers... keep the paper's
    # three-tier shape with big racks so the server count lands on 100K.
    return TreeTopology(n_pods=25, racks_per_pod=50, servers_per_rack=80,
                        slots_per_server=8, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


def compute():
    rng = random.Random(99)
    topo = build_datacenter()
    manager = SiloPlacementManager(topo)
    times = []
    admitted = 0
    for _ in range(N_REQUESTS):
        n_vms = max(2, min(200, int(rng.expovariate(1.0 / MEAN_VMS))))
        request = TenantRequest(
            n_vms=n_vms,
            guarantee=NetworkGuarantee(
                bandwidth=units.mbps(rng.choice([100, 250, 500])),
                burst=rng.choice([5, 15]) * units.KB,
                delay=units.msec(1),
                peak_rate=units.gbps(1)),
            tenant_class=TenantClass.CLASS_A)
        started = time.perf_counter()
        placement = manager.place(request)
        times.append(time.perf_counter() - started)
        if placement is not None:
            admitted += 1
    return topo, times, admitted


@pytest.mark.benchmark(group="placement-scale")
def test_placement_scalability(benchmark):
    topo, times, admitted = run_once(benchmark, compute)
    rows = [[
        f"{topo.n_servers:,}",
        f"{N_REQUESTS}",
        f"{admitted}",
        f"{1e3 * sum(times) / len(times):.1f}",
        f"{1e3 * max(times):.1f}",
    ]]
    print_table(
        "Section 5: placement manager scalability (paper: max 1.15 s "
        "at 100K hosts)",
        ["hosts", "requests", "admitted", "mean ms", "max ms"], rows)

    assert topo.n_servers == 100_000
    assert admitted > 0
    # The paper's bar: every placement decision lands within ~a second.
    assert max(times) < 1.5
