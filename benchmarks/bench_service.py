"""Admission-service benchmark: sustained throughput, overload, chaos.

Three checks over :mod:`repro.service`:

* **steady + fault-storm throughput** (default) -- drive the service
  with the seeded closed-loop load generator on a 1024-server cluster,
  WAL-durable, once with no faults and once under a Poisson
  server-crash storm, and report wall-clock admission throughput, tick
  rate, and the virtual admission-latency percentiles.  The full run
  asserts the storm leaves the books consistent (every admission
  either departed or still placed) and writes the committed
  ``BENCH_service.json`` baseline.
* **overload check** (``--overload-check``) -- offer ~2x the queue's
  drain rate and assert the bounded queue actually bounds: admissions
  beyond capacity are bounced with a positive retry-after, the admit
  depth never exceeds capacity, and the service keeps admitting.
* **chaos smoke** (``--chaos-smoke``) -- the CI gate: run the
  registered ``service_soak`` scenario (mid-run kill at a seeded tick,
  restart, resume) and assert the restarted books are bit-identical to
  the pre-kill digest.

Run::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py --overload-check
    PYTHONPATH=src python benchmarks/bench_service.py --chaos-smoke

Quick mode runs a reduced cluster and horizon and never overwrites the
committed baseline.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro import units
from repro.campaign.scenarios import SERVICE_SOAK_FAULTS, service_soak_cell
from repro.faults import FaultSchedule
from repro.service import AdmissionService, ClosedLoopLoadGen
from repro.topology import TreeTopology

STORM_FAULTS = "poisson:mtbf_ms=100,mttr_ms=60,targets=server"


def build_topology(quick: bool) -> TreeTopology:
    if quick:
        return TreeTopology(n_pods=2, racks_per_pod=2,
                            servers_per_rack=8, slots_per_server=4,
                            link_rate=units.gbps(10),
                            oversubscription=5.0,
                            buffer_bytes=312 * units.KB)
    return TreeTopology(n_pods=8, racks_per_pod=8, servers_per_rack=16,
                        slots_per_server=8, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


def timed_run(topology, arrival_rate: float, horizon: float, seed: int,
              faults: str = "", **service_kwargs) -> dict:
    """One closed-loop run on a throwaway data dir; adds wall-clock
    throughput figures to the load generator's summary."""
    data_dir = Path(tempfile.mkdtemp(prefix="bench-service-"))
    try:
        service = AdmissionService(topology, data_dir / "svc",
                                   **service_kwargs)
        events = []
        if faults:
            schedule = FaultSchedule.from_spec(faults, topology,
                                               horizon=horizon,
                                               seed=seed)
            events = list(schedule.events)
        loadgen = ClosedLoopLoadGen(service, arrival_rate=arrival_rate,
                                    horizon=horizon, seed=seed,
                                    fault_events=events)
        t0 = time.perf_counter()
        summary = loadgen.run()
        wall_s = time.perf_counter() - t0
        summary["live_tenants"] = len(service.cluster.placements)
        service.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
    metrics = summary["metrics"]
    decided = (metrics["admitted"] + metrics["rejected_admission"]
               + metrics["expired"])
    summary["wall_s"] = round(wall_s, 4)
    summary["admissions_per_s"] = round(decided / wall_s, 1)
    summary["ticks_per_s"] = round(summary["ticks"] / wall_s, 1)
    return summary


def _report_row(tag: str, summary: dict) -> None:
    metrics = summary["metrics"]
    p99 = metrics["p99_admission_latency"]
    print(f"{tag:12s} admitted {metrics['admitted']:>5d}  "
          f"faults {metrics['faults']:>3d}  "
          f"wall {summary['wall_s']:>7.2f}s  "
          f"{summary['admissions_per_s']:>8.1f} adm/s  "
          f"{summary['ticks_per_s']:>7.1f} ticks/s  "
          f"p99 {p99 if p99 is None else round(p99, 3)}")


def bench_throughput(quick: bool) -> dict:
    topology = build_topology(quick)
    arrival_rate = 40.0 if quick else 300.0
    horizon = 2.0 if quick else 4.0
    kwargs = {"queue_capacity": 256, "batch_size": 32,
              "snapshot_every": 500}
    steady = timed_run(topology, arrival_rate, horizon, seed=7,
                       **kwargs)
    storm = timed_run(topology, arrival_rate, horizon, seed=7,
                      faults=STORM_FAULTS, **kwargs)
    report = {
        "servers": topology.n_servers,
        "arrival_rate": arrival_rate,
        "horizon": horizon,
        "steady": steady,
        "fault_storm": storm,
    }
    assert steady["metrics"]["admitted"] > 0
    assert storm["metrics"]["faults"] > 0
    # Books stay consistent under the storm: nothing is placed that
    # was never admitted, and both runs end with a digestable state.
    assert storm["live_tenants"] <= storm["metrics"]["admitted"], storm
    assert steady["digest"] and storm["digest"]
    return report


def bench_overload(quick: bool) -> dict:
    """2x offered load against a small queue: bounded, with backoff."""
    topology = build_topology(quick=True)
    capacity = 8
    summary = timed_run(topology, arrival_rate=120.0, horizon=1.5,
                        seed=3, queue_capacity=capacity, batch_size=4,
                        snapshot_every=0)
    metrics = summary["metrics"]
    assert metrics["rejected_backpressure"] > 0, (
        "overload never hit the queue bound", metrics)
    assert metrics["max_admit_depth"] <= capacity, metrics
    assert metrics["admitted"] > 0, metrics
    report = {
        "queue_capacity": capacity,
        "admitted": metrics["admitted"],
        "rejected_backpressure": metrics["rejected_backpressure"],
        "shed": metrics["shed"],
        "gave_up": summary["gave_up"],
        "max_admit_depth": metrics["max_admit_depth"],
        "max_queue_depth": metrics["max_queue_depth"],
    }
    del quick
    return report


def bench_chaos(quick: bool) -> dict:
    """Kill/restart identity via the registered soak scenario."""
    result = service_soak_cell(
        arrival_rate=15.0 if quick else 40.0, horizon=2.0,
        faults=SERVICE_SOAK_FAULTS, kill_tick=23, seed=1,
        queue_capacity=16)
    assert result["recovery_identical"], (
        "restart after kill -9 did not rebuild bit-identical books",
        result)
    assert result["replayed"] > 0, result
    assert result["max_admit_depth"] <= result["queue_capacity"], result
    return result


def run(quick: bool, overload: bool, chaos: bool, out) -> dict:
    report = {"quick": quick}
    if overload:
        report["overload"] = bench_overload(quick)
        o = report["overload"]
        print(f"overload: admitted {o['admitted']}, bounced "
              f"{o['rejected_backpressure']}, gave up {o['gave_up']}, "
              f"max admit depth {o['max_admit_depth']}"
              f"/{o['queue_capacity']}")
        print("bounded queue under 2x load: OK")
    elif chaos:
        report["chaos"] = bench_chaos(quick)
        c = report["chaos"]
        print(f"chaos: {c['replayed']} WAL records replayed, digest "
              f"{c['final_digest'][:12]}..., recovery identical: OK")
    else:
        report["throughput"] = bench_throughput(quick)
        _report_row("steady", report["throughput"]["steady"])
        _report_row("fault-storm", report["throughput"]["fault_storm"])
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=True)
                       + "\n")
        print(f"\nwrote {out}")
    return report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cluster / short horizon; never "
                             "overwrites the committed baseline")
    parser.add_argument("--overload-check", action="store_true",
                        help="only the bounded-queue overload assert")
    parser.add_argument("--chaos-smoke", action="store_true",
                        help="only the kill/restart identity assert")
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON report path (default: the committed "
                             "BENCH_service.json for a full throughput "
                             "run)")
    args = parser.parse_args(argv)
    out = args.out
    if (out is None and not args.quick and not args.overload_check
            and not args.chaos_smoke):
        out = _REPO / "BENCH_service.json"
    run(args.quick, args.overload_check, args.chaos_smoke, out)


if __name__ == "__main__":
    main()
