"""SWP: speculative duplicate transmission for small messages.

The "speculative while paced" baseline (PAPERS.md: "Microsecond Network
SLOs Without Priorities"): every small message is transmitted twice.
The *original* copy goes through the hypervisor pacer at the guaranteed
rate in the high-priority (guaranteed) queue class; a *speculative*
copy of each segment is injected immediately -- bypassing the pacer --
into the best-effort queue class, where strict-priority scheduling
guarantees it can never delay guaranteed traffic.  Whichever copy
arrives first wins: the receiver's in-order delivery machinery already
dedups on segment sequence numbers, so the application sees every
message exactly once.

When the fabric is idle the spec copy delivers at line rate and the
message beats the pacer's serialization delay; when the fabric is
contended, spec copies are pushed out or tail-dropped (they sit in the
evictable best-effort class) and latency falls back to the paced
original -- without Silo's admission control there is no bound on how
bad that fallback gets, which is the comparison the
``mechanism-compare`` campaign measures.  The duplicate bytes are the
scheme's cost and are accounted per flow (:attr:`spec_bytes_sent`,
:attr:`spec_wins`, :attr:`duplicate_deliveries`).
"""

from __future__ import annotations

from typing import Any

from repro import units
from repro.phynet.packet import HEADER_BYTES, PRIORITY_BEST_EFFORT, Packet
from repro.phynet.transport.base import Segment, Transport

#: Messages at or below this size get a speculative duplicate; larger
#: ones only ever go paced (duplicating bulk traffic would double load
#: for no tail-latency benefit -- SWP speculates on *small* messages).
DEFAULT_SPEC_THRESHOLD = 64 * units.KB


class SwpTransport(Transport):
    """Reno transport that speculatively duplicates small messages.

    Each first transmission of a segment belonging to a message no
    larger than ``spec_threshold`` is mirrored by an immediate
    best-effort copy (``packet.spec=True``).  Retransmissions are never
    duplicated: recovery traffic is already late, so speculation buys
    nothing and would double the load exactly when the network is
    congested.
    """

    scheme = "swp"

    def __init__(self, network: Any, src_vm: int, dst_vm: int,
                 spec_threshold: float = DEFAULT_SPEC_THRESHOLD,
                 **kwargs: Any):
        super().__init__(network, src_vm, dst_vm, **kwargs)
        self.spec_threshold = spec_threshold
        #: Speculative copies injected (packets / wire bytes).
        self.spec_packets_sent = 0
        self.spec_bytes_sent = 0.0
        #: Fresh deliveries where the *speculative* copy arrived first.
        self.spec_wins = 0
        #: Arrivals of a copy whose segment was already delivered (the
        #: losing copy of a duplicated pair, or a spurious retransmit).
        self.duplicate_deliveries = 0

    # ------------------------------------------------------------------ sender

    def _transmit_segment(self, segment: Segment) -> None:
        """Transmit the paced original, then race a speculative copy."""
        super()._transmit_segment(segment)
        if segment.record.size > self.spec_threshold:
            return
        spec = Packet(
            src=self.src_vm, dst=self.dst_vm,
            size=segment.size + HEADER_BYTES,
            route=self.network.route(self.src_vm, self.dst_vm),
            flow=self, priority=PRIORITY_BEST_EFFORT, spec=True,
            payload=("data", segment.seq, segment.is_last,
                     segment.record))
        spec.sent_time = self.sim.now
        self.spec_packets_sent += 1
        self.spec_bytes_sent += spec.size
        self.network.transmit(spec, self.src_vm)

    # --------------------------------------------------------------- receiver

    def on_data(self, packet: Packet) -> None:
        """First copy wins; count which copy it was and drop the loser.

        Exactly-once application delivery comes from the base class's
        in-order machinery: a segment enters the reassembly buffer only
        once (``seq`` dedup) and a message completes only once
        (``record.finish`` latch), regardless of the order in which the
        original and the speculative copy -- or neither -- arrive.
        """
        seq = packet.payload[1]
        fresh = seq >= self.rcv_next and seq not in self.ooo_buffer
        if not fresh:
            self.duplicate_deliveries += 1
        elif packet.spec:
            self.spec_wins += 1
        super().on_data(packet)
