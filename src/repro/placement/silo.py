"""Silo's placement manager: both queuing constraints enforced.

Constraint 1 (per port): the queue bound -- computed from the conservative
aggregate of all admitted tenants' arrival curves -- must stay within the
port's queue capacity, so switch buffers can absorb every admissible burst
without loss.

Constraint 2 (per path): the sum of queue capacities along any path between
two of the tenant's VMs must not exceed the tenant's delay guarantee.
Because queue capacities are static, this reduces to capping how wide in
the hierarchy the tenant may be spread, which is decided once per request.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tenant import TenantRequest
from repro.placement.base import PlacementManager
from repro.placement.state import Contribution, PortState


class SiloPlacementManager(PlacementManager):
    """Admission control with bandwidth, burst and delay guarantees."""

    def _allowed_scope(self, request: TenantRequest) -> Optional[str]:
        if request.guarantee is None or not request.guarantee.wants_delay:
            return "cluster"
        try:
            return self.topology.widest_scope_for_delay(
                request.guarantee.delay)
        except ValueError:
            return None

    def _port_ok(self, state: PortState,
                 contribution: Contribution) -> bool:
        if self.fast_paths:
            return state.admits(contribution)
        return state.admits_reference(contribution)
