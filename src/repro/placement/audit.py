"""Admission audit: which of Silo's constraints decided each request.

Section 4.2.3 admits a tenant only if (1) every port's queue bound stays
within its queue capacity and (2) some placement scope keeps the summed
queue capacities along all VM-to-VM paths within the delay guarantee.
The aggregate accept/reject counters cannot say *why* capacity ran out;
the audit records, per request, the binding constraint:

* ``CONSTRAINT_NONE`` -- admitted;
* ``CONSTRAINT_DELAY`` -- constraint 2: no scope (not even one server)
  satisfies the delay guarantee on this topology;
* ``CONSTRAINT_CAPACITY`` -- out of VM slots (no queueing theory needed);
* ``CONSTRAINT_QUEUE_BOUND`` -- constraint 1: slots existed within the
  allowed scope, but every arrangement pushed some port's queue bound
  past its queue capacity (for Oktopus, the analogous bandwidth check).

The classification is derived after the search fails, from checks that
are O(1) against the manager's cached state, so auditing adds nothing to
the admission hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "CONSTRAINT_NONE", "CONSTRAINT_DELAY", "CONSTRAINT_CAPACITY",
    "CONSTRAINT_QUEUE_BOUND", "AdmissionRecord", "AdmissionAudit",
]

CONSTRAINT_NONE = "none"
CONSTRAINT_DELAY = "delay"
CONSTRAINT_CAPACITY = "capacity"
CONSTRAINT_QUEUE_BOUND = "queue_bound"


@dataclass(frozen=True)
class AdmissionRecord:
    """One admission decision, annotated with its binding constraint."""

    seq: int
    tenant_id: int
    n_vms: int
    tenant_class: str
    admitted: bool
    constraint: str
    #: Scope of the committed assignment (admissions only).
    scope: Optional[str] = None
    #: Simulation time, when the caller supplied one (e.g. ClusterSim).
    time: Optional[float] = None


class AdmissionAudit:
    """Accumulates :class:`AdmissionRecord` entries for one manager."""

    def __init__(self) -> None:
        self.records: List[AdmissionRecord] = []

    def append(self, record: AdmissionRecord) -> None:
        """Record one admission decision."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def constraint_counts(self) -> Dict[str, int]:
        """Decisions per binding constraint (``"none"`` = admitted)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.constraint] = counts.get(record.constraint,
                                                   0) + 1
        return counts

    def rejections(self) -> List[AdmissionRecord]:
        """The rejected-request records."""
        return [r for r in self.records if not r.admitted]

    def rows(self) -> Iterable[Dict[str, Any]]:
        """Flat dict per record, for CSV/JSON export."""
        for r in self.records:
            yield {"seq": r.seq, "tenant_id": r.tenant_id,
                   "n_vms": r.n_vms, "tenant_class": r.tenant_class,
                   "admitted": r.admitted, "constraint": r.constraint,
                   "scope": r.scope, "time": r.time}

    def write_csv(self, target: Union[str, "IO[str]"]) -> None:
        """Write the audit as CSV to a path or open file."""
        if hasattr(target, "write"):
            self._write_csv(target)  # type: ignore[arg-type]
        else:
            with open(target, "w", encoding="utf-8") as handle:
                self._write_csv(handle)

    def _write_csv(self, out: "IO[str]") -> None:
        out.write("seq,tenant_id,n_vms,tenant_class,admitted,"
                  "constraint,scope,time\n")
        for r in self.records:
            out.write(f"{r.seq},{r.tenant_id},{r.n_vms},{r.tenant_class},"
                      f"{int(r.admitted)},{r.constraint},"
                      f"{r.scope if r.scope is not None else ''},"
                      f"{r.time if r.time is not None else ''}\n")

    def summary(self) -> str:
        """One-line human summary of the constraint breakdown."""
        counts = self.constraint_counts()
        admitted = counts.pop(CONSTRAINT_NONE, 0)
        parts = [f"admitted={admitted}"]
        parts.extend(f"{name}={counts[name]}" for name in sorted(counts))
        return " ".join(parts)
