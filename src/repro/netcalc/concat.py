"""End-to-end service: min-plus concatenation of per-hop servers.

A flow crossing servers with service curves ``beta_1 ... beta_n`` receives
the end-to-end service ``beta_1 (x) beta_2 (x) ... (x) beta_n`` (min-plus
convolution).  For rate-latency curves the convolution has the famous
closed form

    (R1, T1) (x) (R2, T2) = (min(R1, R2), T1 + T2)

-- "pay bursts only once": the end-to-end delay bound through the
concatenated system is tighter than summing per-hop bounds, because the
burst only queues at the single slowest hop.

Silo's placement deliberately uses the looser per-hop queue-capacity sum
(it must hold regardless of competing tenants); this module provides the
sharper analysis for diagnostics and for bounding a specific tenant's
actual end-to-end delay given current reservations.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.netcalc.bounds import delay_bound
from repro.netcalc.curves import Curve
from repro.netcalc.service import RateLatencyService


def concatenate(services: Iterable[RateLatencyService]
                ) -> RateLatencyService:
    """Min-plus convolution of rate-latency servers (closed form)."""
    rate = None
    latency = 0.0
    for service in services:
        rate = service.rate if rate is None else min(rate, service.rate)
        latency += service.latency
    if rate is None:
        raise ValueError("need at least one service curve")
    return RateLatencyService(rate=rate, latency=latency)


def end_to_end_delay_bound(arrival: Curve,
                           services: Sequence[RateLatencyService]
                           ) -> float:
    """Delay bound through a chain of servers, paying the burst once."""
    return delay_bound(arrival, concatenate(services))


def per_hop_delay_sum(arrival: Curve,
                      services: Sequence[RateLatencyService],
                      hop_queue_capacities: Sequence[float]) -> float:
    """The naive per-hop analysis, for comparison.

    The arrival is propagated hop by hop (each hop inflates the burst by
    its queue capacity, as Silo's placement assumes) and the per-hop
    delay bounds are summed.  Always at least the concatenated bound.
    """
    if len(services) != len(hop_queue_capacities):
        raise ValueError("need one queue capacity per hop")
    total = 0.0
    current = arrival
    for service, capacity in zip(services, hop_queue_capacities):
        total += delay_bound(current, service)
        current = current.shift_earlier(capacity)
    return total
