"""Fluid cluster simulator: jobs, sharing policies, accounting."""

import math

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.flowsim import ClusterSim, TenantWorkload, WorkloadConfig
from repro.flowsim.workload import TenantArrival
from repro.placement import (
    LocalityPlacementManager,
    OktopusPlacementManager,
    SiloPlacementManager,
)
from repro.topology import TreeTopology


def topo(**kwargs):
    defaults = dict(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                    slots_per_server=4, link_rate=units.gbps(10),
                    oversubscription=2.0)
    defaults.update(kwargs)
    return TreeTopology(**defaults)


def arrival(time=0.0, n_vms=4, bandwidth=units.gbps(1),
            flow_bytes=10 * units.MB, compute=0.0, pairs=None):
    request = TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=bandwidth,
                                   burst=1.5 * units.KB),
        tenant_class=TenantClass.CLASS_B)
    if pairs is None:
        pairs = [(i, (i + 1) % n_vms) for i in range(n_vms)]
    return TenantArrival(time=time, request=request, pairs=pairs,
                         flow_bytes=flow_bytes, compute_time=compute)


class StaticWorkload:
    """A fixed arrival list standing in for the Poisson stream."""

    def __init__(self, items):
        self._items = items

    def arrivals(self, until):
        return iter([a for a in self._items if a.time < until])


class TestReservedSharing:
    def test_job_finishes_at_hose_rate(self):
        manager = OktopusPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        # One tenant, 2 VMs, one flow of 10 MB at a 1 Gbps hose.
        item = arrival(n_vms=2, pairs=[(0, 1)],
                       flow_bytes=10 * units.MB)
        stats = sim.run(StaticWorkload([item]), until=10.0)
        assert stats.finished_jobs == 1
        expected = 10 * units.MB / units.gbps(1)
        assert stats.job_durations[0] == pytest.approx(expected, rel=0.01)

    def test_compute_time_extends_job(self):
        manager = OktopusPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        item = arrival(n_vms=2, pairs=[(0, 1)], flow_bytes=units.MB,
                       compute=2.0)
        stats = sim.run(StaticWorkload([item]), until=10.0)
        assert stats.finished_jobs == 1
        assert stats.job_durations[0] == pytest.approx(2.0, rel=0.01)

    def test_all_to_one_splits_receiver_hose(self):
        manager = OktopusPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        pairs = [(i, 3) for i in range(3)]
        item = arrival(n_vms=4, pairs=pairs, flow_bytes=10 * units.MB)
        stats = sim.run(StaticWorkload([item]), until=100.0)
        # Three senders share the receiver's 1 Gbps hose.
        expected = 10 * units.MB / (units.gbps(1) / 3)
        assert stats.job_durations[0] == pytest.approx(expected, rel=0.01)

    def test_slots_freed_on_departure(self):
        manager = OktopusPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        sim.run(StaticWorkload([arrival(flow_bytes=units.MB)]), until=10.0)
        assert manager.used_slots == 0


class TestMaxminSharing:
    def test_single_flow_gets_line_rate(self):
        manager = LocalityPlacementManager(topo())
        sim = ClusterSim(manager, sharing="maxmin")
        item = arrival(n_vms=8, pairs=[(0, 7)], flow_bytes=10 * units.MB)
        stats = sim.run(StaticWorkload([item]), until=10.0)
        assert stats.finished_jobs == 1
        # VMs 0 and 7 land on different servers under locality packing;
        # the flow should get the full 10 Gbps path.
        expected = 10 * units.MB / units.gbps(10)
        assert stats.job_durations[0] == pytest.approx(expected, rel=0.05)

    def test_contending_flows_share_fairly(self):
        manager = LocalityPlacementManager(topo())
        sim = ClusterSim(manager, sharing="maxmin")
        # Two flows from one server converging on another: they share the
        # sender NIC, so each runs at half rate and the job takes twice
        # as long as a lone flow would.
        a = arrival(n_vms=8, pairs=[(0, 7), (1, 7)],
                    flow_bytes=10 * units.MB)
        stats = sim.run(StaticWorkload([a]), until=10.0)
        assert stats.finished_jobs == 1
        expected = 10 * units.MB / (units.gbps(10) / 2)
        assert stats.job_durations[0] == pytest.approx(expected, rel=0.05)

    def test_intra_server_flows_run_at_link_rate(self):
        manager = LocalityPlacementManager(topo())
        sim = ClusterSim(manager, sharing="maxmin")
        item = arrival(n_vms=2, pairs=[(0, 1)], flow_bytes=units.MB)
        stats = sim.run(StaticWorkload([item]), until=10.0)
        assert stats.finished_jobs == 1


class TestAccounting:
    def test_utilization_counts_hops(self):
        manager = OktopusPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        # 8 VMs span two servers of one rack; the 0->7 flow crosses the
        # sender NIC and the receiver's ToR port.
        item = arrival(n_vms=8, pairs=[(0, 7)], flow_bytes=10 * units.MB)
        stats = sim.run(StaticWorkload([item]), until=100.0)
        assert stats.finished_jobs == 1
        assert stats.carried_bytes == pytest.approx(2 * 10 * units.MB,
                                                    rel=0.01)

    def test_occupancy_integral(self):
        manager = OktopusPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        item = arrival(n_vms=16, pairs=[(0, 15)],
                       flow_bytes=units.gbps(1) * 1.0, compute=1.0)
        stats = sim.run(StaticWorkload([item]), until=2.0)
        # 16 of 32 slots for ~1 s of 2 s.
        assert stats.mean_occupancy == pytest.approx(0.25, rel=0.1)

    def test_rejected_tenants_leave_no_trace(self):
        manager = SiloPlacementManager(topo())
        sim = ClusterSim(manager, sharing="reserved")
        impossible = arrival(n_vms=1000)
        stats = sim.run(StaticWorkload([impossible]), until=1.0)
        assert stats.finished_jobs == 0
        assert manager.used_slots == 0

    def test_sharing_validation(self):
        with pytest.raises(ValueError):
            ClusterSim(OktopusPlacementManager(topo()), sharing="anarchic")


class TestWorkloadGenerator:
    def test_arrivals_are_ordered_and_bounded(self):
        wl = TenantWorkload(WorkloadConfig(), arrival_rate=50.0, seed=1)
        items = list(wl.arrivals(until=2.0))
        times = [a.time for a in items]
        assert times == sorted(times)
        assert all(0 < t < 2.0 for t in times)
        assert len(items) > 20

    def test_class_mix(self):
        wl = TenantWorkload(WorkloadConfig(class_a_fraction=0.5),
                            arrival_rate=100.0, seed=2)
        items = list(wl.arrivals(until=5.0))
        a = sum(1 for i in items
                if i.request.tenant_class is TenantClass.CLASS_A)
        assert 0.3 < a / len(items) < 0.7

    def test_class_a_is_all_to_one(self):
        wl = TenantWorkload(WorkloadConfig(class_a_fraction=1.0),
                            arrival_rate=100.0, seed=3)
        item = next(iter(wl.arrivals(until=5.0)))
        receivers = {dst for _, dst in item.pairs}
        assert len(receivers) == 1
        assert len(item.pairs) == item.request.n_vms - 1

    def test_for_occupancy_scales_rate(self):
        low = TenantWorkload.for_occupancy(WorkloadConfig(), 0.3, 1000)
        high = TenantWorkload.for_occupancy(WorkloadConfig(), 0.9, 1000)
        assert high.arrival_rate > low.arrival_rate

    def test_vm_counts_respect_bounds(self):
        cfg = WorkloadConfig(min_vms=3, max_vms=10)
        wl = TenantWorkload(cfg, arrival_rate=100.0, seed=4)
        for item in wl.arrivals(until=3.0):
            assert 3 <= item.request.n_vms <= 10
