"""Bit-exact state snapshots: dump/restore identity and digests."""

import json

from repro.service.snapshot import (dump_manager, dump_request,
                                    restore_manager, restore_request,
                                    state_digest)

from tests.service.test_cluster import (build_cluster, best_effort,
                                        down, guaranteed, up)


def busy_cluster():
    """A cluster driven through every mutation path: shard and
    aggregator placements, a departure, a fault and a repair."""
    cluster = build_cluster()
    for tid in range(1, 5):
        assert cluster.place(guaranteed(tid, n_vms=3), now=0.0)
    assert cluster.place(best_effort(9, n_vms=30), now=0.5)
    cluster.depart(2, now=1.0)
    cluster.apply_fault(down("server:0", time=2.0))
    cluster.apply_fault(up("server:0", time=3.0))
    return cluster


class TestClusterRoundTrip:
    def test_restore_reproduces_the_digest(self):
        cluster = busy_cluster()
        state = cluster.dump_state()
        restored = build_cluster()
        restored.restore_state(state)
        assert restored.state_digest() == cluster.state_digest()

    def test_restore_reproduces_the_dump_exactly(self):
        cluster = busy_cluster()
        state = cluster.dump_state()
        restored = build_cluster()
        restored.restore_state(state)
        assert (json.dumps(restored.dump_state(), sort_keys=True)
                == json.dumps(state, sort_keys=True))

    def test_snapshot_survives_a_json_round_trip(self):
        cluster = busy_cluster()
        state = json.loads(json.dumps(cluster.dump_state(),
                                      sort_keys=True))
        restored = build_cluster()
        restored.restore_state(state)
        assert restored.state_digest() == cluster.state_digest()

    def test_restored_cluster_keeps_working(self):
        cluster = busy_cluster()
        restored = build_cluster()
        restored.restore_state(cluster.dump_state())
        # Identical decisions for the next admission on both sides.
        live = cluster.place(guaranteed(50, n_vms=2), now=4.0)
        replayed = restored.place(guaranteed(50, n_vms=2), now=4.0)
        assert live is not None and replayed is not None
        assert list(live.vm_servers) == list(replayed.vm_servers)
        assert restored.state_digest() == cluster.state_digest()


class TestManagerRoundTrip:
    def test_registry_and_totals_round_trip(self):
        cluster = busy_cluster()
        manager = cluster.calc
        dump = dump_manager(manager)
        fresh = build_cluster().calc
        restore_manager(fresh, dump)
        assert (json.dumps(dump_manager(fresh), sort_keys=True)
                == json.dumps(dump, sort_keys=True))
        for port_id, state in manager.states.items():
            other = fresh.states[port_id]
            assert other.bandwidth == state.bandwidth
            assert other.burst == state.burst
            assert other.peak_rate == state.peak_rate
            assert other.packet_slack == state.packet_slack


class TestRequestRoundTrip:
    def test_guaranteed_request(self):
        request = guaranteed(7, n_vms=5, mbps=321.5)
        assert restore_request(dump_request(request)) == request

    def test_best_effort_request(self):
        request = best_effort(8, n_vms=4)
        assert restore_request(dump_request(request)) == request


class TestDigest:
    def test_digest_ignores_attempt_counters(self):
        cluster = busy_cluster()
        state = cluster.dump_state()
        assert state["calc"]["counters"]["accepted"] > 0
        state["calc"]["counters"]["accepted"] += 100
        state["shards"][0]["manager"]["counters"]["rejected"] += 3
        assert state_digest(state) == cluster.state_digest()

    def test_digest_pins_the_books(self):
        cluster = busy_cluster()
        state = cluster.dump_state()
        state["owner"][0][1] = 1 - state["owner"][0][1]
        assert state_digest(state) != cluster.state_digest()
