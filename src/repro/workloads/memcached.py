"""Facebook ETC-like memcached workload (section 6.1).

The paper drives its testbed with the ETC trace of Atikoglu et al.
(SIGMETRICS 2012): general-purpose cache traffic with generalized-Pareto
value sizes and inter-arrival gaps.  The defaults below reproduce the
figures the paper quotes for its own generator: ~300 B average value,
1 KB maximum, ~400 B average packet, and a per-client request rate scaled
to the tenant's average bandwidth requirement (210 Mbps across the
tenant's 14 client VMs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import units
from repro.workloads.distributions import GeneralizedPareto


@dataclass(frozen=True)
class EtcWorkload:
    """Sampler for one memcached client.

    Attributes:
        value_sigma / value_k: generalized-Pareto value-size parameters
            (defaults give a ~300 B truncated mean as in the paper).
        value_cap: maximum value size (1 KB in the paper's workload).
        request_size: GET request size on the wire (key + header).
        mean_interarrival: mean gap between requests from one client.
    """

    value_sigma: float = 214.0
    value_k: float = 0.20
    value_cap: float = 1.0 * units.KB
    request_size: float = 100.0
    mean_interarrival: float = 100 * units.MICROS
    interarrival_k: float = 0.1

    def value_sizes(self) -> GeneralizedPareto:
        """The generalized-Pareto value-size distribution."""
        return GeneralizedPareto(theta=1.0, sigma=self.value_sigma,
                                 k=self.value_k, cap=self.value_cap)

    def interarrivals(self) -> GeneralizedPareto:
        """Bursty (heavier-than-exponential) request gaps.

        A generalized Pareto with small positive shape has a coefficient of
        variation above 1, matching the trace's burstiness.  The sigma is
        chosen so the (untruncated) mean equals ``mean_interarrival``.
        """
        sigma = self.mean_interarrival * (1.0 - self.interarrival_k)
        return GeneralizedPareto(theta=0.0, sigma=sigma,
                                 k=self.interarrival_k)

    def sample_value(self, rng: random.Random) -> float:
        """Draw one value size in bytes (at least 1)."""
        return max(1.0, self.value_sizes().sample(rng))

    def sample_gap(self, rng: random.Random) -> float:
        """Draw one positive inter-arrival gap."""
        return max(1e-9, self.interarrivals().sample(rng))
