"""Silo placement: admission, constraints, scopes, release."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology


def make_topo(**kwargs):
    defaults = dict(n_pods=2, racks_per_pod=2, servers_per_rack=4,
                    slots_per_server=4, link_rate=units.gbps(10),
                    oversubscription=5.0, buffer_bytes=312 * units.KB)
    defaults.update(kwargs)
    return TreeTopology(**defaults)


def class_a_request(n_vms=8, bandwidth=units.gbps(0.25),
                    burst=15 * units.KB, delay=units.msec(1),
                    peak=units.gbps(1)):
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=bandwidth, burst=burst,
                                   delay=delay, peak_rate=peak),
        tenant_class=TenantClass.CLASS_A)


def class_b_request(n_vms=8, bandwidth=units.gbps(2)):
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=bandwidth,
                                   burst=1.5 * units.KB),
        tenant_class=TenantClass.CLASS_B)


class TestBasicAdmission:
    def test_admits_small_tenant(self):
        manager = SiloPlacementManager(make_topo())
        placement = manager.place(class_a_request(n_vms=4))
        assert placement is not None
        assert len(placement.vm_servers) == 4

    def test_single_server_tenant_prefers_one_server(self):
        manager = SiloPlacementManager(make_topo())
        placement = manager.place(class_a_request(n_vms=4))
        assert len(set(placement.vm_servers)) == 1

    def test_slots_are_consumed(self):
        manager = SiloPlacementManager(make_topo())
        manager.place(class_a_request(n_vms=4))
        assert manager.used_slots == 4

    def test_rejects_when_no_slots(self):
        topo = make_topo(n_pods=1, racks_per_pod=1, servers_per_rack=1,
                         slots_per_server=4)
        manager = SiloPlacementManager(topo)
        assert manager.place(class_a_request(n_vms=5)) is None
        assert manager.rejected == 1

    def test_counts_by_class(self):
        manager = SiloPlacementManager(make_topo())
        manager.place(class_a_request(n_vms=4))
        manager.place(class_b_request(n_vms=4))
        assert manager.accepted_by_class[TenantClass.CLASS_A] == 1
        assert manager.accepted_by_class[TenantClass.CLASS_B] == 1


class TestDelayScope:
    def test_delay_restricts_scope_to_rack(self):
        topo = make_topo()
        rack_cap = topo.scope_queue_capacity("rack")
        pod_cap = topo.scope_queue_capacity("pod")
        delay = (rack_cap + pod_cap) / 2  # allows rack, not pod
        manager = SiloPlacementManager(topo)
        # 20 VMs cannot fit in one 16-slot rack.
        request = class_a_request(n_vms=20, delay=delay)
        assert manager.place(request) is None

    def test_loose_delay_spreads_wider(self):
        topo = make_topo()
        manager = SiloPlacementManager(topo)
        request = class_a_request(n_vms=20, delay=units.msec(10),
                                  bandwidth=units.mbps(50),
                                  burst=2 * units.KB)
        placement = manager.place(request)
        assert placement is not None
        racks = {topo.rack_of(s) for s in placement.vm_servers}
        assert len(racks) > 1

    def test_impossible_delay_rejected(self):
        topo = make_topo()
        manager = SiloPlacementManager(topo)
        # Even a same-rack path exceeds this delay, and the tenant cannot
        # fit in one server.
        tiny = topo.scope_queue_capacity("rack") / 100
        assert manager.place(class_a_request(n_vms=8, delay=tiny)) is None

    def test_tiny_delay_tenant_fits_one_server(self):
        topo = make_topo()
        manager = SiloPlacementManager(topo)
        tiny = topo.scope_queue_capacity("rack") / 100
        placement = manager.place(class_a_request(n_vms=3, delay=tiny))
        assert placement is not None
        assert len(set(placement.vm_servers)) == 1


class TestBurstConstraints:
    def test_burst_heavy_tenants_limited_by_buffers(self):
        """Admitting burst-heavy tenants must stop before buffers overflow,
        even with slots to spare."""
        topo = make_topo(n_pods=1, racks_per_pod=1, servers_per_rack=4,
                         slots_per_server=8)
        manager = SiloPlacementManager(topo)
        admitted = 0
        for _ in range(8):
            # 10 VMs force each tenant to span servers, so its bursts
            # converge on shared ports.
            request = class_a_request(n_vms=10, burst=30 * units.KB,
                                      peak=units.gbps(10))
            if manager.place(request) is not None:
                admitted += 1
        assert 0 < admitted < 8
        # Every admitted tenant's queue bounds must still hold.
        for state in manager.states.values():
            assert state.backlog() <= state.port.buffer_bytes + 1e-6

    def test_queue_bounds_within_capacity_after_many_admissions(self):
        manager = SiloPlacementManager(make_topo())
        for _ in range(20):
            manager.place(class_a_request(n_vms=4))
        for state in manager.states.values():
            assert state.queue_bound() <= state.port.queue_capacity + 1e-9


class TestBandwidthConstraints:
    def test_bandwidth_reservations_never_exceed_capacity(self):
        manager = SiloPlacementManager(make_topo())
        for _ in range(40):
            manager.place(class_b_request(n_vms=8))
        for state in manager.states.values():
            assert state.bandwidth <= state.port.capacity + 1e-6

    def test_oversubscribed_uplink_rejects_before_slots_exhaust(self):
        topo = make_topo(n_pods=1, racks_per_pod=4, servers_per_rack=4,
                         slots_per_server=8, oversubscription=10.0)
        manager = SiloPlacementManager(topo)
        results = [manager.place(class_b_request(n_vms=24,
                                                 bandwidth=units.gbps(5)))
                   for _ in range(6)]
        assert any(p is None for p in results)


class TestRelease:
    def test_release_restores_state(self):
        manager = SiloPlacementManager(make_topo())
        before = {pid: (s.bandwidth, s.burst, s.peak_rate, s.packet_slack)
                  for pid, s in manager.states.items()}
        request = class_a_request(n_vms=12)
        placement = manager.place(request)
        assert placement is not None
        manager.remove(request.tenant_id)
        assert manager.used_slots == 0
        for pid, state in manager.states.items():
            b0, s0, p0, k0 = before[pid]
            assert state.bandwidth == pytest.approx(b0, abs=1e-6)
            assert state.burst == pytest.approx(s0, abs=1e-6)
            assert state.peak_rate == pytest.approx(p0, abs=1e-6)
            assert state.packet_slack == pytest.approx(k0, abs=1e-6)

    def test_release_unknown_tenant_raises(self):
        manager = SiloPlacementManager(make_topo())
        with pytest.raises(KeyError):
            manager.remove(424242)

    def test_double_place_rejected(self):
        manager = SiloPlacementManager(make_topo())
        request = class_a_request(n_vms=4)
        manager.place(request)
        with pytest.raises(ValueError):
            manager.place(request)

    def test_churn_then_full_release_is_clean(self):
        manager = SiloPlacementManager(make_topo())
        requests = [class_a_request(n_vms=4) for _ in range(6)]
        placed = [r for r in requests if manager.place(r) is not None]
        for r in placed:
            manager.remove(r.tenant_id)
        assert manager.used_slots == 0
        assert all(s.bandwidth <= 1e-6 for s in manager.states.values())
