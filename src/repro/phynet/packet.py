"""Packets: the unit of work of the simulator.

A packet carries its route (the ordered output ports it still has to
cross) so ports need no routing tables; on each hop the port pops the next
entry.  ``priority`` implements the paper's 802.1q split: guaranteed-tenant
traffic at high priority, best-effort tenants on the residual (section
4.4).
"""

from __future__ import annotations

from typing import Any, List, Optional

#: Strict-priority levels, lower value served first.
PRIORITY_GUARANTEED = 0
PRIORITY_BEST_EFFORT = 1

#: Bytes of link-level + IP + TCP overhead carried by every segment.
HEADER_BYTES = 58
#: Size of a bare ACK on the wire.
ACK_BYTES = 64


class Packet:
    """One simulated frame.

    ``route`` is consumed in place as the packet advances; ``hop`` indexes
    the next port to cross.  ``payload`` is opaque to the network (the
    transports store sequence/ack metadata there).
    """

    __slots__ = ("src", "dst", "size", "priority", "route", "hop",
                 "sent_time", "ecn", "payload", "flow", "is_control",
                 "spec")

    def __init__(self, src: int, dst: int, size: float, route: List[Any],
                 flow: Any = None, payload: Any = None,
                 priority: int = PRIORITY_GUARANTEED,
                 is_control: bool = False, spec: bool = False):
        self.src = src
        self.dst = dst
        self.size = size
        self.priority = priority
        self.route = route
        self.hop = 0
        self.sent_time: Optional[float] = None
        self.ecn = False
        self.payload = payload
        self.flow = flow
        self.is_control = is_control
        #: SWP speculative duplicate: bypasses the hypervisor pacer and
        #: rides the best-effort queue class (the paced original keeps
        #: ``spec=False``).
        self.spec = spec

    def next_port(self) -> Optional[Any]:
        """The next output port to cross, or ``None`` at the destination."""
        if self.hop >= len(self.route):
            return None
        return self.route[self.hop]

    def advance(self) -> None:
        """Move the packet to its next hop."""
        self.hop += 1

    def __repr__(self) -> str:
        return (f"Packet({self.src}->{self.dst} {self.size:.0f}B "
                f"hop {self.hop}/{len(self.route)})")
