"""EyeQ-style hose-model rate coordination (section 4.3, Fig. 8 top row).

A VM's bandwidth guarantee follows the hose model: the rate between a
sender/receiver pair is limited by *both* endpoints' guarantees.  When
``N`` senders converge on one receiver of guarantee ``B``, each must slow
to ``B/N`` -- which only the receiving hypervisor can know.  In Silo (as in
EyeQ) the source and destination pacers exchange rate messages; here we
expose the steady-state allocation they converge to: a max-min fair split
over the bipartite graph of sender and receiver hoses.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.maxmin import max_min_fair


def allocate_hose_rates(
    demands: Mapping[Tuple[Hashable, Hashable], float],
    send_guarantees: Mapping[Hashable, float],
    recv_guarantees: Optional[Mapping[Hashable, float]] = None,
) -> Dict[Tuple[Hashable, Hashable], float]:
    """Max-min fair hose-model rates for a set of VM-pair demands.

    Args:
        demands: (src, dst) -> demanded rate (``math.inf`` for elastic bulk
            traffic); demands must be >= 0.
        send_guarantees: VM -> sending hose bandwidth ``B`` (>= 0).
        recv_guarantees: VM -> receiving hose bandwidth (>= 0); defaults
            to the sending guarantees (Silo gives VMs symmetric hoses).

    Returns:
        (src, dst) -> allocated rate, satisfying
        ``sum_dst rate(s, .) <= B_s`` and ``sum_src rate(., d) <= B_d``.

    Raises:
        KeyError: a demand references a VM with no guarantee.
        ValueError: a demand or guarantee is negative (a sign error
            would otherwise silently propagate into the fair split).
    """
    if recv_guarantees is None:
        recv_guarantees = send_guarantees
    capacities: Dict[Hashable, float] = {}
    flows: Dict[Tuple[Hashable, Hashable],
                Tuple[Tuple[Hashable, ...], float]] = {}
    for (src, dst), demand in demands.items():
        if demand < 0:
            raise ValueError(
                f"demand for ({src!r}, {dst!r}) must be >= 0, got {demand}")
        if src not in send_guarantees:
            raise KeyError(f"no send guarantee for VM {src!r}")
        if dst not in recv_guarantees:
            raise KeyError(f"no receive guarantee for VM {dst!r}")
        if send_guarantees[src] < 0:
            raise ValueError(f"send guarantee for VM {src!r} must be >= 0, "
                             f"got {send_guarantees[src]}")
        if recv_guarantees[dst] < 0:
            raise ValueError(f"receive guarantee for VM {dst!r} must be "
                             f">= 0, got {recv_guarantees[dst]}")
        src_hose = ("send", src)
        dst_hose = ("recv", dst)
        capacities[src_hose] = send_guarantees[src]
        capacities[dst_hose] = recv_guarantees[dst]
        flows[(src, dst)] = ((src_hose, dst_hose), demand)
    return max_min_fair(flows, capacities)


def receiver_fair_split(n_senders: int, receive_guarantee: float
                        ) -> float:
    """The per-sender rate when ``n`` senders saturate one receiver.

    The paper's example: with a tenant guarantee ``B`` and ``N`` VMs
    sending to one destination, each sender gets ``B / N``.
    """
    if n_senders < 1:
        raise ValueError("need at least one sender")
    if receive_guarantee <= 0:
        raise ValueError("receive guarantee must be positive")
    return receive_guarantee / n_senders
