"""Queue-bound math: delay, backlog and the p interval (paper Fig. 6b)."""

import math

import pytest

from repro.netcalc.arrival import dual_rate, token_bucket
from repro.netcalc.bounds import (
    backlog_bound,
    delay_bound,
    empty_interval,
    queue_is_stable,
    total_delay_bound,
)
from repro.netcalc.service import RateLatencyService, constant_rate


class TestStability:
    def test_stable_when_rate_below_capacity(self):
        assert queue_is_stable(token_bucket(5.0, 10.0), constant_rate(10.0))

    def test_unstable_when_rate_above_capacity(self):
        assert not queue_is_stable(token_bucket(11.0, 1.0),
                                   constant_rate(10.0))

    def test_unstable_gives_infinite_bounds(self):
        arrival = token_bucket(11.0, 1.0)
        service = constant_rate(10.0)
        assert delay_bound(arrival, service) == math.inf
        assert backlog_bound(arrival, service) == math.inf


class TestTokenBucketBounds:
    """For A = B*t + S against rate C: delay = S/C, backlog = S."""

    def test_delay_is_burst_over_capacity(self):
        arrival = token_bucket(5.0, 100.0)
        assert delay_bound(arrival, constant_rate(10.0)) == pytest.approx(
            10.0)

    def test_backlog_is_burst(self):
        arrival = token_bucket(5.0, 100.0)
        assert backlog_bound(arrival, constant_rate(10.0)) == pytest.approx(
            100.0)

    def test_service_latency_adds_to_delay(self):
        arrival = token_bucket(5.0, 100.0)
        service = RateLatencyService(rate=10.0, latency=2.0)
        assert delay_bound(arrival, service) == pytest.approx(12.0)

    def test_service_latency_adds_to_backlog(self):
        arrival = token_bucket(5.0, 100.0)
        service = RateLatencyService(rate=10.0, latency=2.0)
        # At t = 2 the arrivals are 110 and nothing has been served.
        assert backlog_bound(arrival, service) == pytest.approx(110.0)


class TestDualRateBounds:
    """The paper's Fig. 5 arithmetic: S bytes arriving at R, drained at C
    queue up S * (1 - C/R) bytes."""

    def test_burst_partially_absorbed_while_arriving(self):
        # 600 KB arriving at 20 Gbps into a 10 Gbps port: 300 KB backlog.
        C = 1.25e9      # 10 Gbps in bytes/s
        R = 2.50e9      # 20 Gbps
        S = 600e3
        arrival = dual_rate(rate=1.0, burst=S, peak_rate=R, packet_size=1.0)
        backlog = backlog_bound(arrival, constant_rate(C))
        assert backlog == pytest.approx(S * (1 - C / R), rel=1e-3)

    def test_no_queueing_when_peak_below_capacity(self):
        arrival = dual_rate(rate=1.0, burst=1000.0, peak_rate=5.0,
                            packet_size=10.0)
        backlog = backlog_bound(arrival, constant_rate(10.0))
        assert backlog <= 10.0  # at most the packet-size slack

    def test_delay_bound_matches_manual_computation(self):
        # A = min(20 t + 10, 5 t + 100), C = 10.
        arrival = dual_rate(rate=5.0, burst=100.0, peak_rate=20.0,
                            packet_size=10.0)
        service = constant_rate(10.0)
        # Breakpoint at t* = (100-10)/15 = 6; A(t*) = 130; delay there is
        # 130/10 - 6 = 7; at t=0 delay is 1.  Maximum is 7.
        assert delay_bound(arrival, service) == pytest.approx(7.0)


class TestEmptyInterval:
    def test_token_bucket_p_value(self):
        # A = 5t + 100 vs C = 10: queue empties at t = 100/(10-5) = 20.
        arrival = token_bucket(5.0, 100.0)
        assert empty_interval(arrival, constant_rate(10.0)) == pytest.approx(
            20.0)

    def test_p_value_at_least_delay_time(self):
        arrival = dual_rate(rate=5.0, burst=100.0, peak_rate=20.0,
                            packet_size=10.0)
        service = constant_rate(10.0)
        assert (empty_interval(arrival, service)
                >= delay_bound(arrival, service))

    def test_infinite_when_rate_equals_capacity_with_burst(self):
        arrival = token_bucket(10.0, 100.0)
        assert empty_interval(arrival, constant_rate(10.0)) == math.inf

    def test_unstable_is_infinite(self):
        arrival = token_bucket(20.0, 1.0)
        assert empty_interval(arrival, constant_rate(10.0)) == math.inf


class TestAggregateDelay:
    def test_total_delay_of_independent_sources(self):
        sources = [token_bucket(2.0, 10.0) for _ in range(3)]
        # Aggregate = 6t + 30 against C = 10: delay 3.
        assert total_delay_bound(sources, constant_rate(10.0)) == (
            pytest.approx(3.0))

    def test_empty_iterable_is_zero(self):
        assert total_delay_bound([], constant_rate(10.0)) == 0.0
