"""VM placement and admission control.

Three placement managers share one greedy first-fit search (section 4.2.3):

* :class:`~repro.placement.silo.SiloPlacementManager` -- enforces Silo's two
  queuing constraints (queue bound <= queue capacity at every port; summed
  queue capacities along every path <= the delay guarantee);
* :class:`~repro.placement.oktopus.OktopusPlacementManager` -- the
  bandwidth-only baseline;
* :class:`~repro.placement.locality.LocalityPlacementManager` -- the
  locality-aware baseline that packs VMs as close together as slots allow.
"""

from repro.placement.state import PortState, Contribution
from repro.placement.base import PlacementManager
from repro.placement.silo import SiloPlacementManager
from repro.placement.oktopus import OktopusPlacementManager
from repro.placement.locality import LocalityPlacementManager
from repro.placement.controller import (ClusterController, RecoveryReport,
                                        TenantOutcome)
from repro.placement.paths import IncastPaths, SenderPath, incast_paths

__all__ = [
    "PortState",
    "Contribution",
    "PlacementManager",
    "SiloPlacementManager",
    "OktopusPlacementManager",
    "LocalityPlacementManager",
    "ClusterController",
    "RecoveryReport",
    "TenantOutcome",
    "IncastPaths",
    "SenderPath",
    "incast_paths",
]
