"""The simulated datacenter: ports, VMs, pacers, routing and delivery.

:class:`PacketNetwork` instantiates one :class:`~repro.phynet.port.OutputPort`
per directed port of a :class:`~repro.topology.tree.TreeTopology`, places
VMs on servers, and mediates every transmission:

* traffic from a paced VM (Silo / Oktopus) is released at the exact stamp
  its token-bucket hierarchy computes (section 4.3) and then contends in
  the real NIC queue;
* unpaced traffic (TCP / DCTCP / HULL baselines) is released immediately;
* intra-server traffic crosses only the hypervisor vswitch;
* an EyeQ-style coordinator periodically re-splits each tenant's hose
  bandwidth over its active VM pairs (the ``B_i`` rates of Fig. 8).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple, Type

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.pacer.eyeq import allocate_hose_rates
from repro.pacer.hierarchy import PacerConfig
from repro.core.engine import EventEngine
from repro.phynet.shaper import VMShaper
from repro.phynet.engine import Simulator
from repro.phynet.packet import PRIORITY_BEST_EFFORT, PRIORITY_GUARANTEED, Packet
from repro.phynet.port import DEFAULT_PROP_DELAY, OutputPort
from repro.phynet.transport.base import Transport
from repro.phynet.transport.dctcp import Dctcp
from repro.phynet.transport.hull import (
    HULL_DRAIN_FRACTION,
    HULL_MARKING_THRESHOLD,
    HullTcp,
)
from repro.phynet.transport.swp import SwpTransport
from repro.phynet.transport.tcp import TcpReno
from repro.topology.tree import TreeTopology

#: Fixed hypervisor vswitch latency for intra-server delivery.
VSWITCH_DELAY = 2 * units.MICROS

#: Intra-server copies go through the vswitch at memory speed, not
#: infinitely fast: modelling it as a finite-rate port keeps TCP windows
#: of co-located VM pairs bounded, like a real vmbus/vswitch would.
VSWITCH_RATE_FACTOR = 4.0
VSWITCH_BUFFER = 2 * units.MB

#: DCTCP marking threshold for 10 GbE (the DCTCP paper's K = 65 packets
#: scaled to bytes is ~97 KB; shallow-buffer deployments use less).
DEFAULT_DCTCP_K = 65 * units.MTU

#: How often the EyeQ-style coordinator re-splits hose bandwidth.
DEFAULT_COORDINATION_INTERVAL = 500 * units.MICROS

#: Default per-destination shaper queue (bytes awaiting their stamps).
#: Applied per destination, like the per-queue limits of a multi-queue
#: driver, so one backlogged destination cannot starve the others.
DEFAULT_PACER_QUEUE = 128 * units.KB

TRANSPORT_CLASSES: Dict[str, Type[Transport]] = {
    "tcp": TcpReno,
    "dctcp": Dctcp,
    "hull": HullTcp,
    "swp": SwpTransport,
}


class VirtualMachine:
    """One placed VM, optionally behind a hypervisor pacer."""

    __slots__ = ("vm_id", "tenant_id", "server", "pacer", "priority",
                 "guarantee", "pacer_queue_limit")

    def __init__(self, vm_id: int, tenant_id: int, server: int,
                 pacer: Optional[VMShaper] = None,
                 guarantee: Optional[NetworkGuarantee] = None,
                 priority: int = PRIORITY_GUARANTEED,
                 pacer_queue_limit: float = DEFAULT_PACER_QUEUE):
        self.vm_id = vm_id
        self.tenant_id = tenant_id
        self.server = server
        self.pacer = pacer
        self.guarantee = guarantee
        self.priority = priority
        #: Bytes the shaper may hold before the guest is backpressured
        #: (NDIS send-completion flow control in the prototype).
        self.pacer_queue_limit = pacer_queue_limit


class PacketNetwork:
    """Glue between topology, ports, VMs and transports."""

    def __init__(self, topology: TreeTopology,
                 sim: Optional[Simulator] = None,
                 scheme: str = "tcp",
                 prop_delay: float = DEFAULT_PROP_DELAY,
                 dctcp_threshold: float = DEFAULT_DCTCP_K,
                 coordination_interval: float = DEFAULT_COORDINATION_INTERVAL,
                 coordination: bool = True,
                 tracer=None):
        """Build the simulated network.

        ``scheme`` selects the baseline: "tcp", "dctcp" or "hull" configure
        the switch ports accordingly; "silo", "okto" and "okto+" use plain
        ports (their rate control lives in the hypervisor pacers, attached
        per VM via :meth:`add_vm`); "swp" and "eyeq" also use plain ports
        (see :mod:`repro.mechanisms` for their end-host machinery).

        ``coordination=False`` disables the built-in oracle hose
        coordination loop (:meth:`_coordinate`); the EyeQ mechanism turns
        it off because its *distributed* control loop
        (:class:`repro.mechanisms.eyeq.EyeQController`) replaces it.

        ``tracer`` (a :class:`repro.obs.TraceSink`) turns on event tracing
        for every port and transport of this network; ``None`` keeps the
        zero-overhead path.
        """
        known = {"tcp", "dctcp", "hull", "silo", "okto", "okto+",
                 "swp", "eyeq"}
        if scheme not in known:
            raise ValueError(f"unknown scheme {scheme!r}; pick from {known}")
        self.topology = topology
        # The shared event core by default; an injected ``sim`` (e.g. the
        # retained ``phynet.engine.Simulator`` reference, or an engine
        # shared with another fidelity) is honoured as long as it speaks
        # the same surface.
        self.sim = sim if sim is not None else EventEngine()
        self.scheme = scheme
        self.coordination_interval = coordination_interval
        self.coordination = coordination
        self.tracer = tracer
        if tracer is not None:
            self.sim.tracer = tracer

        ecn = dctcp_threshold if scheme == "dctcp" else None
        self.ports: Dict[int, OutputPort] = {}
        for port in topology.ports:
            sim_port = OutputPort(
                sim=self.sim, name=f"{port.kind.value}[{port.index}]",
                capacity=port.capacity, buffer_bytes=port.buffer_bytes,
                prop_delay=prop_delay, ecn_threshold=ecn,
                phantom_drain=(HULL_DRAIN_FRACTION * port.capacity
                               if scheme == "hull" else None),
                phantom_threshold=(HULL_MARKING_THRESHOLD
                                   if scheme == "hull" else None),
                on_delivery=self._deliver, tracer=tracer)
            self.ports[port.port_id] = sim_port

        self.vms: Dict[int, VirtualMachine] = {}
        self.transports: Dict[Tuple[int, int], Transport] = {}
        self._tenant_vms: Dict[int, List[int]] = {}
        self._route_cache: Dict[Tuple[int, int], List[OutputPort]] = {}
        self._coordinating: Dict[int, bool] = {}
        self._ready_waiters: Dict[int, List[Any]] = {}
        self._vswitches: Dict[int, OutputPort] = {}

    # -- construction ----------------------------------------------------------

    def add_vm(self, vm_id: int, tenant_id: int, server: int,
               guarantee: Optional[NetworkGuarantee] = None,
               paced: bool = False,
               pacer_config: Optional[PacerConfig] = None,
               priority: int = PRIORITY_GUARANTEED) -> VirtualMachine:
        """Place a VM; with ``paced=True`` it runs behind a Silo pacer."""
        if vm_id in self.vms:
            raise ValueError(f"vm {vm_id} already exists")
        if not 0 <= server < self.topology.n_servers:
            raise ValueError(f"server {server} out of range")
        vm = VirtualMachine(vm_id=vm_id, tenant_id=tenant_id, server=server,
                            pacer=None, guarantee=guarantee,
                            priority=priority)
        if paced:
            if pacer_config is None:
                if guarantee is None:
                    raise ValueError("a paced VM needs a guarantee or an "
                                     "explicit pacer config")
                pacer_config = PacerConfig.from_guarantee(guarantee)
            vm.pacer = VMShaper(
                self.sim, pacer_config,
                release=lambda packet, v=vm: self._shaper_release(packet, v))
        self.vms[vm_id] = vm
        self._tenant_vms.setdefault(tenant_id, []).append(vm_id)
        if vm.pacer is not None and guarantee is not None:
            self._start_coordination(tenant_id)
        return vm

    def transport(self, src_vm: int, dst_vm: int,
                  transport_class: Optional[Type[Transport]] = None,
                  **kwargs: Any) -> Transport:
        """The (unique) transport for an ordered VM pair, created on demand.

        The default transport class follows the network scheme: DCTCP
        endpoints on a DCTCP network, and plain TCP for Silo/Oktopus
        (the paper runs TCP on top of their rate enforcement).
        """
        key = (src_vm, dst_vm)
        existing = self.transports.get(key)
        if existing is not None:
            return existing
        if src_vm == dst_vm:
            raise ValueError("a transport needs two distinct VMs")
        if transport_class is None:
            transport_class = TRANSPORT_CLASSES.get(self.scheme, TcpReno)
        priority = self.vms[src_vm].priority
        flow = transport_class(self, src_vm, dst_vm, priority=priority,
                               **kwargs)
        self.transports[key] = flow
        return flow

    # -- routing and transmission ---------------------------------------------------

    def route(self, src_vm: int, dst_vm: int) -> List[OutputPort]:
        """Ordered output ports between two VMs (cached, shared, read-only).

        Intra-server pairs cross their host's vswitch port only.
        """
        src_server = self.vms[src_vm].server
        dst_server = self.vms[dst_vm].server
        key = (src_server, dst_server)
        cached = self._route_cache.get(key)
        if cached is None:
            if src_server == dst_server:
                cached = [self._vswitch(src_server)]
            else:
                cached = [self.ports[p.port_id]
                          for p in self.topology.path_ports(src_server,
                                                            dst_server)]
            self._route_cache[key] = cached
        return cached

    def _vswitch(self, server: int) -> OutputPort:
        port = self._vswitches.get(server)
        if port is None:
            port = OutputPort(
                sim=self.sim, name=f"vswitch[{server}]",
                capacity=VSWITCH_RATE_FACTOR * self.topology.link_rate,
                buffer_bytes=VSWITCH_BUFFER, prop_delay=VSWITCH_DELAY,
                on_delivery=self._deliver, tracer=self.tracer)
            self._vswitches[server] = port
        return port

    def transmit(self, packet: Packet, src_vm: int) -> None:
        """Inject a packet, honouring the sender's pacer if it has one."""
        vm = self.vms[src_vm]
        # Pure ACKs bypass the pacer: they are ack-clocked by paced data (so
        # inherently rate-bounded at a few percent of the data rate) and a
        # real driver treats them as control traffic.  They still consume
        # link bandwidth in the port queues.
        # SWP speculative duplicates also bypass the pacer: the whole point
        # of the spec copy is to race ahead of the paced original, taking
        # its chances in the best-effort queue class.
        if (vm.pacer is not None and not packet.is_control
                and not packet.spec):
            vm.pacer.submit(packet)
            return
        self._release(packet)

    def _shaper_release(self, packet: Packet, vm: VirtualMachine) -> None:
        self._release(packet)
        if vm.pacer.destination_backlog(packet.dst) < vm.pacer_queue_limit:
            waiters = self._ready_waiters.pop((vm.vm_id, packet.dst), None)
            if waiters:
                for callback in waiters:
                    callback()

    # -- shaper backpressure ------------------------------------------------------

    def sender_ready(self, vm_id: int, dst_vm: int) -> bool:
        """Whether a VM's shaper has room for more data to ``dst_vm``.

        Mirrors the NDIS send-completion backpressure of the prototype: the
        guest stack is not completed (and so stops sending) while the
        driver's shaper queue for that destination is full, instead of
        overflowing it.  Limits are per destination so one congested
        receiver cannot starve a VM's other flows.
        """
        vm = self.vms[vm_id]
        if vm.pacer is None:
            return True
        return vm.pacer.destination_backlog(dst_vm) < vm.pacer_queue_limit

    def notify_when_ready(self, vm_id: int, dst_vm: int,
                          callback: Any) -> None:
        """Invoke ``callback`` once the shaper queue to ``dst_vm`` drains."""
        self._ready_waiters.setdefault((vm_id, dst_vm), []).append(callback)

    def _release(self, packet: Packet) -> None:
        if packet.route:
            packet.route[0].enqueue(packet)
        else:  # pragma: no cover - routes always have >= 1 port now
            self.sim.schedule(VSWITCH_DELAY, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        flow: Transport = packet.flow
        if flow is None:
            return
        kind = packet.payload[0]
        if kind == "data":
            flow.on_data(packet)
        elif kind == "ctrl":
            # Non-transport control traffic (e.g. EyeQ rate feedback):
            # dispatched to the endpoint object carried in ``flow``.
            flow.on_control(packet)
        else:
            flow.on_ack(packet)

    # -- hose coordination -------------------------------------------------------

    def _start_coordination(self, tenant_id: int) -> None:
        if not self.coordination or self._coordinating.get(tenant_id):
            return
        self._coordinating[tenant_id] = True
        self.sim.schedule(self.coordination_interval, self._coordinate,
                          tenant_id)

    def _coordinate(self, tenant_id: int) -> None:
        """Periodic EyeQ-style hose split for one tenant (Fig. 8 top row)."""
        vm_ids = self._tenant_vms.get(tenant_id, [])
        guarantees = {}
        for vm_id in vm_ids:
            vm = self.vms[vm_id]
            if vm.guarantee is not None:
                guarantees[vm_id] = vm.guarantee.bandwidth
        demands: Dict[Tuple[int, int], float] = {}
        for (src, dst), flow in self.transports.items():
            if (src in guarantees and dst in guarantees
                    and (flow.send_queue or flow.in_flight)):
                demands[(src, dst)] = math.inf
        if demands:
            rates = allocate_hose_rates(demands, guarantees)
        else:
            rates = {}
        now = self.sim.now
        for (src, dst), flow in self.transports.items():
            if src not in guarantees or dst not in guarantees:
                continue
            vm = self.vms[src]
            if vm.pacer is None:
                continue
            rate = rates.get((src, dst))
            if rate is None or rate <= 0:
                # Idle pair: optimistically restore the full hose rate so a
                # fresh message is not throttled by a stale split.
                rate = guarantees[src]
            vm.pacer.set_destination_rate(dst, rate)
        self.sim.schedule(self.coordination_interval, self._coordinate,
                          tenant_id)

    # -- inspection ---------------------------------------------------------------

    def port_stats(self) -> Dict[str, Any]:
        """Aggregate port counters for a finished run.

        ``drops`` is congestion (tail) loss; class-protection evictions of
        best-effort packets are reported separately as ``pushouts``.
        ``class_drops`` / ``class_pushouts`` split the same events by
        strict-priority traffic class (index 0 guaranteed, index 1
        best-effort), so speculative-duplicate loss never reads as
        congestion loss of guaranteed traffic.
        """
        from repro.phynet.port import N_CLASSES
        drops = sum(p.stats.drops for p in self.ports.values())
        pushouts = sum(p.stats.pushouts for p in self.ports.values())
        fault_drops = sum(p.stats.fault_drops for p in self.ports.values())
        marks = sum(p.stats.ecn_marks for p in self.ports.values())
        tx = sum(p.stats.tx_bytes for p in self.ports.values())
        max_q = max((p.stats.max_queue_bytes for p in self.ports.values()),
                    default=0.0)
        class_drops = [sum(p.stats.class_drops[c]
                           for p in self.ports.values())
                       for c in range(N_CLASSES)]
        class_pushouts = [sum(p.stats.class_pushouts[c]
                              for p in self.ports.values())
                          for c in range(N_CLASSES)]
        return {"drops": drops, "pushouts": pushouts,
                "fault_drops": fault_drops, "ecn_marks": marks,
                "tx_bytes": tx, "max_queue_bytes": max_q,
                "class_drops": class_drops,
                "class_pushouts": class_pushouts}

    def monitor_queues(self, interval: float,
                       reservoir_size: int = 0) -> Dict[str, Any]:
        """Attach a queue-depth :class:`~repro.obs.TimeSeries` to every
        switch port; returns ``{port name: series}``.

        Call before :meth:`Simulator.run`; afterwards each series holds
        the port's depth trajectory bucketed at ``interval`` seconds
        (the per-bucket ``max`` is the figure-ready worst-case occupancy).
        """
        from repro.obs.timeseries import TimeSeries
        series: Dict[str, Any] = {}
        for port in self.ports.values():
            port.depth_series = TimeSeries(
                name=port.name, interval=interval,
                reservoir_size=reservoir_size)
            series[port.name] = port.depth_series
        return series
