"""Plain TCP Reno: the status-quo transport of the paper's evaluation."""

from __future__ import annotations

from repro.phynet.transport.base import Transport


class TcpReno(Transport):
    """Standard Reno; all mechanics live in the base class."""

    scheme = "tcp"
