"""Aggregating and propagating arrival curves (paper section 4.2.2).

Three operations let Silo reason about a whole datacenter from per-VM
curves:

* **hose-model addition** -- for a tenant with ``N`` VMs of guarantee
  ``{B, S}``, the traffic from ``m`` of them across a network cut is not
  ``A_{mB, mS}`` but the tighter ``A_{min(m, N-m)B, mS}``: hose bandwidth is
  limited by the receiving side too, while burst allowances are not
  destination-limited (all ``m`` may burst simultaneously, as in the
  partition-aggregate pattern);
* **link capping** -- traffic leaving a server or crossing a link can never
  exceed the line rate, which tightens the peak-rate piece of the curve;
* **egress propagation** -- after crossing a port whose queue can hold
  ``c`` seconds of traffic, a flow may emerge bunched: its egress curve is
  the ingress curve advanced by ``c`` (``A_{B, B.c+S}`` for a token bucket).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import units
from repro.netcalc.arrival import dual_rate, token_bucket
from repro.netcalc.curves import Curve


def sum_curves(curves: Iterable[Curve]) -> Optional[Curve]:
    """Exact sum of any number of curves; ``None`` for an empty iterable."""
    total: Optional[Curve] = None
    for curve in curves:
        total = curve if total is None else total + curve
    return total


def hose_aggregate(m: int, n_total: int, bandwidth: float, burst: float,
                   peak_rate: Optional[float] = None,
                   packet_size: float = units.MTU) -> Curve:
    """Arrival curve for traffic from ``m`` of a tenant's ``n_total`` VMs.

    Implements the paper's tightened aggregate ``A_{min(m, N-m)B, mS}``.
    When ``peak_rate`` (``Bmax``) is given, the aggregate burst drains at no
    more than ``m * Bmax``.

    Raises ``ValueError`` if ``m`` is not in ``[1, n_total - 1]`` -- a cut
    with all or none of the VMs on one side carries no tenant traffic.
    """
    if not 1 <= m <= n_total - 1:
        raise ValueError(
            f"m must be between 1 and N-1, got m={m} for N={n_total}")
    hose_bw = min(m, n_total - m) * bandwidth
    total_burst = m * burst
    if peak_rate is None:
        return token_bucket(hose_bw, total_burst)
    return dual_rate(hose_bw, total_burst, m * peak_rate,
                     packet_size=m * packet_size)


def cap_at_link(curve: Curve, link_rate: float,
                packet_size: float = units.MTU) -> Curve:
    """Cap a curve at a link's line rate.

    No source behind a link of rate ``C`` can deliver more than
    ``C*t + packet`` bytes in ``t`` seconds (one packet may already be in
    flight), so the capped curve is ``min(A(t), C*t + packet)``.
    """
    if link_rate <= 0:
        raise ValueError("link rate must be positive")
    return curve.minimum(Curve.affine(link_rate, packet_size))


def egress_curve(ingress: Curve, queue_capacity_seconds: float) -> Curve:
    """Arrival curve for traffic after it crosses a buffered port.

    Silo bounds the bunching a port can introduce by the port's queue
    *capacity* ``c`` (a static property), not its current ``p`` value, so
    that the egress curve is independent of competing traffic: in the worst
    case every byte sent during ``[0, c]`` leaves as one burst, i.e.
    ``A_out(t) = A_in(t + c)``.
    """
    if queue_capacity_seconds < 0:
        raise ValueError("queue capacity must be >= 0")
    return ingress.shift_earlier(queue_capacity_seconds)
