"""Table 4: outlier tenants -- 99th-percentile latency vs the estimate.

A class-A tenant is an outlier when its 99th-percentile message latency
exceeds the latency estimate it computed from its guarantees; the paper
buckets outliers at 1x, 2x and 8x the estimate.  Silo must produce no
outliers at all; DCTCP/HULL leave a sizeable share of tenants even 8x
over.
"""

import pytest

from conftest import CAMPAIGN_SCHEMES, print_table, run_once


def collect(campaign):
    table = {}
    for scheme in CAMPAIGN_SCHEMES:
        result = campaign[scheme]
        ratios = [result.metrics.outlier_class(t, result.class_a_estimate)
                  for t in result.class_a_tenants]
        table[scheme] = ratios
    return table


@pytest.mark.benchmark(group="table4")
def test_table4_outlier_tenants(benchmark, fig12_campaign):
    table = run_once(benchmark, lambda: collect(fig12_campaign))

    rows = []
    shares = {}
    for scheme in CAMPAIGN_SCHEMES:
        ratios = table[scheme]
        n = len(ratios)
        over = {k: 100 * sum(1 for r in ratios if r > k) / n
                for k in (1, 2, 8)}
        shares[scheme] = over
        rows.append([scheme] + [f"{over[k]:.0f}%" for k in (1, 2, 8)])
    print_table(
        "Table 4: % class-A tenants whose p99 latency exceeds the "
        "estimate by 1x / 2x / 8x",
        ["scheme", ">1x", ">2x", ">8x"], rows)

    # Silo: no outliers whatsoever (the paper's row of zeros).
    assert shares["silo"][1] == 0.0
    # The contended baselines all have 1x outliers.
    for scheme in ("tcp", "dctcp", "hull", "okto"):
        assert shares[scheme][1] > 0.0, scheme
