"""The admission service loop: backpressure, deadlines, shedding,
shard degradation, and crash-consistent recovery."""

from repro import units
from repro.service import AdmissionService, IngressItem, Priority
from repro.service.snapshot import dump_request
from repro.topology import TreeTopology

from tests.service.test_cluster import (best_effort, down, guaranteed,
                                        up)


def build_topology():
    return TreeTopology(n_pods=2, racks_per_pod=2, servers_per_rack=3,
                        slots_per_server=4, link_rate=units.gbps(10),
                        oversubscription=5.0,
                        buffer_bytes=312 * units.KB)


def build_service(tmp_path, **kwargs):
    kwargs.setdefault("queue_capacity", 8)
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("snapshot_every", 0)
    return AdmissionService(build_topology(), tmp_path / "svc", **kwargs)


class TestIngress:
    def test_overload_bounces_with_retry_after(self, tmp_path):
        service = build_service(tmp_path, queue_capacity=4)
        statuses = [service.submit_admission(guaranteed(tid), now=0.0)
                    for tid in range(1, 8)]
        queued = [s for s, _ in statuses if s == "queued"]
        bounced = [(s, r) for s, r in statuses if s == "rejected"]
        assert len(queued) == 4 and len(bounced) == 3
        assert all(r is not None and r > 0 for _, r in bounced)
        assert service.metrics.rejected_backpressure == 3
        assert service.queue.max_admit_depth <= 4
        service.close()

    def test_deadline_expiry(self, tmp_path):
        service = build_service(tmp_path)
        service.submit_admission(guaranteed(1), now=0.0, deadline=1.0)
        service.submit_admission(guaranteed(2), now=0.0, deadline=9.0)
        counts = service.tick(now=5.0)  # past tenant 1's deadline
        assert counts["expired"] == 1
        assert counts["admitted"] == 1
        assert service.metrics.expired == 1
        assert 1 not in service.cluster.owner
        assert 2 in service.cluster.owner
        service.close()

    def test_admit_then_depart_round_trip(self, tmp_path):
        service = build_service(tmp_path)
        service.submit_admission(guaranteed(1), now=0.0)
        service.tick(now=0.1)
        assert 1 in service.cluster.placements
        service.submit_departure(1, now=1.0)
        counts = service.tick(now=1.1)
        assert counts["departed"] == 1
        assert 1 not in service.cluster.placements
        assert service.metrics.departed == 1
        service.close()

    def test_departure_of_unknown_tenant_is_absorbed(self, tmp_path):
        service = build_service(tmp_path)
        service.submit_departure(42, now=0.0)
        counts = service.tick(now=0.1)
        assert counts["departed"] == 1
        service.close()

    def test_on_decision_feedback_channel(self, tmp_path):
        service = build_service(tmp_path)
        decisions = []
        service.on_decision = (
            lambda item, outcome, now: decisions.append(
                (item.seq, outcome)))
        service.submit_admission(guaranteed(1), now=0.0)
        service.submit_departure(99, now=0.0)
        service.tick(now=0.1)
        assert sorted(decisions) == [(0, "admitted"), (1, "unknown")]
        service.close()


class TestSheddingAndDegradation:
    def test_forced_overshoot_is_shed_back_to_capacity(self, tmp_path):
        """Crash-recovery re-enqueue can overshoot the bound; the next
        tick trims back to capacity, earliest deadline first."""
        service = build_service(tmp_path, queue_capacity=2,
                                batch_size=1)
        for tid in range(1, 6):
            seq = service.wal.log_enq(
                "admit", 0.0,
                {"request": dump_request(guaranteed(tid)), "attempt": 0},
                deadline=float(tid))
            service.queue.offer(
                IngressItem(Priority.ADMIT, 0.0, guaranteed(tid),
                            seq=seq, deadline=float(tid)), force=True)
        assert len(service.queue) == 5
        counts = service.tick(now=0.1)
        assert counts["shed"] == 3
        assert service.metrics.shed == 3
        # The survivors are the two latest deadlines; batch_size=1
        # admitted the earlier of them.
        assert counts["admitted"] == 1
        assert service.queue.admit_depth == 1
        service.close()

    def test_shard_cordon_requeues_the_in_flight_batch(self, tmp_path):
        service = build_service(tmp_path)
        service.submit_admission(guaranteed(1), now=0.0)
        service.submit_admission(guaranteed(2), now=0.0)
        batch = service.queue.pop_admissions(limit=10)
        service._in_flight = list(batch)
        service._requeue_in_flight()
        assert service._in_flight == []
        assert service.queue.admit_depth == 2
        # Their intents are still open, so a tick processes them.
        counts = service.tick(now=0.5)
        assert counts["admitted"] == 2
        service.close()

    def test_fault_that_cordons_a_shard_requeues(self, tmp_path):
        service = build_service(tmp_path,
                                shard_down_threshold=1 / 6)
        service.submit_admission(guaranteed(1), now=0.0)
        item = service.queue.pop_admissions(limit=1)[0]
        service._in_flight = [item]
        service.submit_fault(down("server:0", time=0.5), now=0.5)
        fault_item = service.queue.pop()
        assert fault_item.priority is Priority.FAULT
        service._process_fault(fault_item, now=0.5)
        assert 0 in service.cluster.cordoned_shards
        assert service._in_flight == []
        assert service.queue.admit_depth == 1
        service.close()


class TestRecovery:
    def drive(self, service):
        """Admissions + a departure + a fault/repair pair, over a few
        ticks -- touches every WAL record kind."""
        now = 0.0
        for tid in range(1, 9):
            service.submit_admission(guaranteed(tid), now=now)
            if tid == 3:
                service.submit_fault(down("server:0", time=now),
                                     now=now)
            if tid == 5:
                service.submit_departure(1, now=now)
            if tid == 6:
                service.submit_fault(up("server:0", time=now), now=now)
            now += 0.25
            service.tick(now=now)
        service.submit_admission(best_effort(50, n_vms=30), now=now)
        service.tick(now=now + 0.25)
        return now + 0.25

    def test_kill_restart_is_bit_identical(self, tmp_path):
        service = build_service(tmp_path)
        self.drive(service)
        digest = service.state_digest()
        del service  # kill -9: no close(), no final snapshot
        reborn = build_service(tmp_path)
        assert reborn.state_digest() == digest
        assert reborn.metrics.replayed > 0
        reborn.close()

    def test_recovery_from_snapshot_plus_wal_tail(self, tmp_path):
        service = build_service(tmp_path, snapshot_every=5)
        self.drive(service)
        assert service.metrics.snapshots > 0
        digest = service.state_digest()
        folded = service.snapshots.load()["done_count"]
        assert 0 < folded < service._done_count  # a real WAL tail
        del service
        reborn = build_service(tmp_path, snapshot_every=5)
        assert reborn.state_digest() == digest
        reborn.close()

    def test_open_intents_are_reenqueued(self, tmp_path):
        service = build_service(tmp_path)
        service.submit_admission(guaranteed(1), now=0.0)
        service.tick(now=0.1)
        service.submit_admission(guaranteed(2), now=0.2,
                                 deadline=9.0)  # queued, never ticked
        del service
        reborn = build_service(tmp_path)
        assert reborn.queue.admit_depth == 1
        counts = reborn.tick(now=0.3)
        assert counts["admitted"] == 1
        assert 2 in reborn.cluster.placements
        reborn.close()

    def test_restarted_service_continues_identically(self, tmp_path):
        """One continuous life and a kill/restart life make the same
        decisions for the same subsequent traffic."""
        a = build_service(tmp_path / "a")
        end = self.drive(a)
        b = build_service(tmp_path / "b")
        self.drive(b)
        del b
        b = build_service(tmp_path / "b")  # crash + recover
        for service in (a, b):
            service.submit_admission(guaranteed(60, n_vms=3), now=end)
            service.tick(now=end + 0.25)
        assert a.state_digest() == b.state_digest()
        a.close()
        b.close()


class TestServiceMetrics:
    """The SLO percentile series follows the repo-wide nearest-rank
    convention (regression: it used to floor-index with q in [0, 1],
    so p50 read one rank low and p99 silently truncated)."""

    def make_metrics(self):
        from repro.service import ServiceMetrics
        metrics = ServiceMetrics()
        metrics.admission_latencies = [float(i) for i in range(1, 101)]
        return metrics

    def test_nearest_rank_pins(self):
        metrics = self.make_metrics()
        assert metrics.latency_percentile(50.0) == 50.0
        assert metrics.latency_percentile(99.0) == 99.0
        assert metrics.latency_percentile(0.0) == 1.0
        assert metrics.latency_percentile(100.0) == 100.0

    def test_q_is_percent_not_fraction(self):
        """q=0.5 means the 0.5th percentile, not the median."""
        metrics = self.make_metrics()
        assert metrics.latency_percentile(0.5) == 1.0

    def test_out_of_range_q_raises(self):
        import pytest
        metrics = self.make_metrics()
        with pytest.raises(ValueError):
            metrics.latency_percentile(101.0)
        empty = type(metrics)()
        with pytest.raises(ValueError):
            empty.latency_percentile(-1.0)

    def test_empty_series_is_none(self):
        from repro.service import ServiceMetrics
        assert ServiceMetrics().latency_percentile(99.0) is None

    def test_to_dict_percentile_keys(self):
        metrics = self.make_metrics()
        out = metrics.to_dict()
        assert out["p50_admission_latency"] == 50.0
        assert out["p99_admission_latency"] == 99.0
