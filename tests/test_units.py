"""Unit conversions: the boundary everything else depends on."""

import pytest

from repro import units


class TestRates:
    def test_gbps_round_trip(self):
        assert units.to_gbps(units.gbps(10)) == pytest.approx(10.0)
        assert units.gbps(10) == pytest.approx(1.25e9)

    def test_mbps_round_trip(self):
        assert units.to_mbps(units.mbps(250)) == pytest.approx(250.0)
        assert units.mbps(250) == pytest.approx(31.25e6)

    def test_kbps(self):
        assert units.kbps(8) == pytest.approx(1000.0)

    def test_bits_bytes(self):
        assert units.bits(100) == 800
        assert units.bytes_from_bits(800) == 100


class TestTimes:
    def test_usec_msec(self):
        assert units.usec(250) == pytest.approx(250e-6)
        assert units.msec(1) == pytest.approx(1e-3)
        assert units.to_usec(250e-6) == pytest.approx(250.0)
        assert units.to_msec(2e-3) == pytest.approx(2.0)


class TestConstants:
    def test_paper_figures(self):
        # 84 wire bytes at 10 Gbps = the paper's 68 ns spacing quantum.
        assert units.MIN_WIRE_FRAME / units.gbps(10) == pytest.approx(
            67.2e-9)
        assert units.MTU == 1500

    def test_transmission_delay(self):
        assert units.transmission_delay(1.25e9, units.gbps(10)) == (
            pytest.approx(1.0))
        with pytest.raises(ValueError):
            units.transmission_delay(100.0, 0.0)
