"""Shared greedy first-fit placement machinery (section 4.2.3).

All three placement managers walk the hierarchy the same way -- try to fit
the whole tenant in one server, then one rack, then one pod, then anywhere
-- and differ only in (a) which admission check runs at each port and (b)
how wide the hierarchy they may use is (Silo caps the scope so that summed
queue capacities along any path stay within the delay guarantee).

Each scope is attempted with two fill strategies:

* **greedy**: pack each server as full as the per-server checks allow, which
  minimises the number of network links the tenant touches;
* **balanced**: spread VMs evenly over the domain's servers, which keeps the
  worst-case all-to-one burst convergence at any single port small (the
  paper's Fig. 5 example is exactly this situation).

A candidate assignment is then *validated*: the exact per-port contributions
(with the true number of sending servers behind each port) are recomputed
and checked against the current port state before committing.  Fill-time
checks are only heuristics to guide the search; validation is authoritative,
so admission is sound regardless of the estimates used while filling.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import units
from repro.core.tenant import Placement, TenantClass, TenantRequest
from repro.placement.state import Contribution, PortState
from repro.topology.switch import Port
from repro.topology.tree import SCOPES, TreeTopology

#: The two fill strategies tried, in order, within every domain.
_STRATEGIES = ("greedy", "balanced")


class PlacementManager(abc.ABC):
    """Base class: slot accounting, greedy search, commit/remove."""

    def __init__(self, topology: TreeTopology,
                 min_fault_domains: int = 1,
                 hose_tightening: bool = True) -> None:
        """Args:
            topology: the datacenter to place into.
            min_fault_domains: spread every tenant over at least this
                many servers (section 4.2.3's fault-tolerance constraint;
                1 disables spreading).
            hose_tightening: use the paper's tightened hose aggregate
                ``min(m, N-m) * B`` when summing tenant curves; disabling
                it falls back to the naive ``m * B`` (the ablation knob
                for how much admission capacity the tightening buys).
        """
        if min_fault_domains < 1:
            raise ValueError("min_fault_domains must be >= 1")
        self.topology = topology
        self.min_fault_domains = min_fault_domains
        self.hose_tightening = hose_tightening
        self.states: Dict[int, PortState] = {
            port.port_id: PortState(port) for port in topology.ports
        }
        self.free_slots: List[int] = (
            [topology.slots_per_server] * topology.n_servers)
        self.placements: Dict[int, Placement] = {}
        self._commits: Dict[int, List[Tuple[int, Contribution]]] = {}
        self.accepted = 0
        self.rejected = 0
        self.accepted_by_class: Dict[TenantClass, int] = {}
        self.rejected_by_class: Dict[TenantClass, int] = {}

    # -- hooks for subclasses -------------------------------------------------

    @abc.abstractmethod
    def _allowed_scope(self, request: TenantRequest) -> Optional[str]:
        """Widest scope this tenant may span; ``None`` rejects outright."""

    @abc.abstractmethod
    def _port_ok(self, state: PortState, contribution: Contribution) -> bool:
        """Whether a port can absorb one more tenant's contribution."""

    def _checks_ports(self) -> bool:
        """Whether this manager runs network checks at all."""
        return True

    # -- public API -------------------------------------------------------------

    def place(self, request: TenantRequest) -> Optional[Placement]:
        """Admit and place a tenant; returns ``None`` on rejection."""
        if request.tenant_id in self.placements:
            raise ValueError(f"tenant {request.tenant_id} is already placed")
        assignment = self._find_assignment(request)
        if assignment is None:
            self._count(request, admitted=False)
            return None
        placement = self._commit(request, assignment)
        self._count(request, admitted=True)
        return placement

    def remove(self, tenant_id: int) -> None:
        """Release a tenant's slots and reservations."""
        placement = self.placements.pop(tenant_id, None)
        if placement is None:
            raise KeyError(f"tenant {tenant_id} is not placed")
        for server, count in placement.vms_per_server().items():
            self.free_slots[server] += count
        for port_id, contribution in self._commits.pop(tenant_id):
            self.states[port_id].remove(contribution)

    @property
    def used_slots(self) -> int:
        return self.topology.n_slots - sum(self.free_slots)

    @property
    def occupancy(self) -> float:
        """Fraction of VM slots currently in use."""
        return self.used_slots / self.topology.n_slots

    def admitted_fraction(self, tenant_class: Optional[TenantClass] = None
                          ) -> float:
        """Fraction of requests admitted, overall or per class."""
        if tenant_class is None:
            total = self.accepted + self.rejected
            return self.accepted / total if total else 1.0
        acc = self.accepted_by_class.get(tenant_class, 0)
        rej = self.rejected_by_class.get(tenant_class, 0)
        return acc / (acc + rej) if acc + rej else 1.0

    # -- search ------------------------------------------------------------------

    def _find_assignment(self, request: TenantRequest
                         ) -> Optional[Dict[int, int]]:
        allowed = self._allowed_scope(request)
        if allowed is None:
            return None
        for scope in SCOPES[:SCOPES.index(allowed) + 1]:
            assignment = self._search_scope(request, scope)
            if assignment is not None:
                return assignment
        return None

    def _search_scope(self, request: TenantRequest, scope: str
                      ) -> Optional[Dict[int, int]]:
        topo = self.topology
        if scope == "server":
            if self.min_fault_domains > 1 and request.n_vms > 1:
                return None  # a lone server is a single fault domain
            for server in range(topo.n_servers):
                if self.free_slots[server] >= request.n_vms:
                    assignment = {server: request.n_vms}
                    if self._validate(request, assignment):
                        return assignment
            return None
        if scope == "rack":
            domains: Iterable[Sequence[int]] = (
                list(topo.servers_in_rack(r)) for r in range(topo.n_racks))
        elif scope == "pod":
            domains = (list(topo.servers_in_pod(p))
                       for p in range(topo.n_pods))
        else:
            domains = iter([list(range(topo.n_servers))])
        pristine_failed = False
        for servers in domains:
            if sum(self.free_slots[s] for s in servers) < request.n_vms:
                continue
            if pristine_failed and self._domain_pristine(servers):
                # An identical untouched domain already failed; all empty
                # domains of this scope are interchangeable.
                continue
            for strategy in _STRATEGIES:
                assignment = self._fill(request, servers, strategy, scope)
                if assignment and self._validate(request, assignment):
                    return assignment
            if self._domain_pristine(servers):
                pristine_failed = True
        return None

    def _domain_pristine(self, servers: Sequence[int]) -> bool:
        """True when no server in the domain hosts anything yet."""
        full = self.topology.slots_per_server
        return all(self.free_slots[s] == full for s in servers)

    def _fill(self, request: TenantRequest, servers: Sequence[int],
              strategy: str, scope: str) -> Optional[Dict[int, int]]:
        """Distribute all N VMs over ``servers``; ``None`` if they don't fit."""
        remaining = request.n_vms
        available = [s for s in servers if self.free_slots[s] > 0]
        assignment: Dict[int, int] = {}
        k_estimate = max(1, len(available) - 1)
        full = self.topology.slots_per_server
        pristine_failed = False
        for position, server in enumerate(available):
            if remaining == 0:
                break
            pristine = (self.free_slots[server] == full
                        and self.states[self.topology.nic_up(server)
                                        .port_id].is_empty
                        and self.states[self.topology.tor_down(server)
                                        .port_id].is_empty)
            if pristine and pristine_failed:
                continue  # identical to an empty server that just failed
            want = min(remaining, self.free_slots[server])
            if self.min_fault_domains > 1:
                want = min(want, math.ceil(request.n_vms
                                           / self.min_fault_domains))
            if strategy == "balanced":
                servers_left = len(available) - position
                want = min(want, math.ceil(remaining / servers_left))
            placed = self._max_vms_on_server(request, server, want,
                                             k_estimate, scope)
            if placed:
                assignment[server] = placed
                remaining -= placed
            elif pristine:
                pristine_failed = True
        if remaining:
            return None
        return assignment

    def _max_vms_on_server(self, request: TenantRequest, server: int,
                           want: int, k_estimate: int, scope: str) -> int:
        """Largest ``m <= want`` passing this server's two port checks."""
        if not self._checks_ports():
            return want
        for m in range(want, 0, -1):
            if self._server_ok(request, server, m, k_estimate, scope):
                return m
        return 0

    def _server_ok(self, request: TenantRequest, server: int, m: int,
                   k_estimate: int, scope: str) -> bool:
        topo = self.topology
        up = self._contribution(request, m, 1, topo.nic_up(server), scope)
        if not self._port_ok(self.states[topo.nic_up(server).port_id], up):
            return False
        down = self._contribution(request, request.n_vms - m, k_estimate,
                                  topo.tor_down(server), scope)
        return self._port_ok(self.states[topo.tor_down(server).port_id],
                             down)

    # -- validation and commit ------------------------------------------------------

    def _validate(self, request: TenantRequest,
                  assignment: Dict[int, int]) -> bool:
        if not self._checks_ports():
            return True
        for port_id, contribution in self._port_contributions(request,
                                                              assignment):
            if not self._port_ok(self.states[port_id], contribution):
                return False
        return True

    def _commit(self, request: TenantRequest,
                assignment: Dict[int, int]) -> Placement:
        vm_servers: List[int] = []
        for server, count in sorted(assignment.items()):
            if count > self.free_slots[server]:
                raise RuntimeError("assignment exceeds free slots")
            self.free_slots[server] -= count
            vm_servers.extend([server] * count)
        commits = list(self._port_contributions(request, assignment))
        for port_id, contribution in commits:
            self.states[port_id].add(contribution)
        placement = Placement(request=request, vm_servers=vm_servers)
        self.placements[request.tenant_id] = placement
        self._commits[request.tenant_id] = commits
        return placement

    def _port_contributions(self, request: TenantRequest,
                            assignment: Dict[int, int]
                            ) -> Iterable[Tuple[int, Contribution]]:
        """Exact per-port contributions for a complete assignment.

        Yields ``(port_id, contribution)`` for every port that carries this
        tenant's traffic, with the true sending-server counts behind each
        port.  Used both to validate and to commit/release, so reservations
        always balance.
        """
        if request.guarantee is None or not self._checks_ports():
            return
        topo = self.topology
        n = request.n_vms
        servers = sorted(assignment)
        if len(servers) <= 1:
            return  # same-server traffic never crosses a network port
        scope = self._assignment_scope(assignment)
        racks: Dict[int, int] = {}
        pods: Dict[int, int] = {}
        rack_servers: Dict[int, int] = {}
        pod_servers: Dict[int, int] = {}
        for server, count in assignment.items():
            rack = topo.rack_of(server)
            pod = topo.pod_of(server)
            racks[rack] = racks.get(rack, 0) + count
            pods[pod] = pods.get(pod, 0) + count
            rack_servers[rack] = rack_servers.get(rack, 0) + 1
            pod_servers[pod] = pod_servers.get(pod, 0) + 1
        n_servers_used = len(servers)

        for server, count in assignment.items():
            up_port = topo.nic_up(server)
            yield up_port.port_id, self._contribution(request, count, 1,
                                                      up_port, scope)
            down_port = topo.tor_down(server)
            yield down_port.port_id, self._contribution(
                request, n - count, n_servers_used - 1, down_port, scope)
        if len(racks) > 1:
            for rack, count in racks.items():
                up = topo.tor_up(rack)
                yield up.port_id, self._contribution(
                    request, count, rack_servers[rack], up, scope)
                down = topo.agg_down(rack)
                yield down.port_id, self._contribution(
                    request, n - count, n_servers_used - rack_servers[rack],
                    down, scope)
        if len(pods) > 1:
            for pod, count in pods.items():
                up = topo.agg_up(pod)
                yield up.port_id, self._contribution(
                    request, count, pod_servers[pod], up, scope)
                down = topo.core_down(pod)
                yield down.port_id, self._contribution(
                    request, n - count, n_servers_used - pod_servers[pod],
                    down, scope)

    def _assignment_scope(self, assignment: Dict[int, int]) -> str:
        """How widely an assignment spreads: server/rack/pod/cluster."""
        topo = self.topology
        servers = list(assignment)
        if len(servers) == 1:
            return "server"
        racks = {topo.rack_of(s) for s in servers}
        if len(racks) == 1:
            return "rack"
        pods = {topo.pod_of(s) for s in servers}
        return "pod" if len(pods) == 1 else "cluster"

    def _contribution(self, request: TenantRequest, m_senders: int,
                      k_servers: int, port: Port,
                      scope: str = "cluster") -> Contribution:
        """Hose-model contribution of ``m`` sender VMs at one port.

        Bandwidth follows the tightened hose aggregate
        ``min(m, N-m) * B``; bursts are not destination-limited so all
        ``m`` senders may burst at once (``m * S``), inflated by worst-case
        upstream bunching; the burst drain rate is capped by the senders'
        physical links (``k_servers`` NICs).
        """
        guarantee = request.guarantee
        n = request.n_vms
        if guarantee is None or m_senders <= 0 or m_senders >= n:
            return Contribution(0.0, 0.0, 0.0, 0.0)
        if self.hose_tightening:
            bandwidth = min(m_senders, n - m_senders) * guarantee.bandwidth
        else:
            bandwidth = m_senders * guarantee.bandwidth
        slack = m_senders * units.MTU
        upstream = self.topology.upstream_queue_capacity(port.kind, scope)
        burst = (m_senders * guarantee.burst + bandwidth * upstream)
        burst = max(burst, slack)
        raw_peak = m_senders * guarantee.effective_peak_rate
        capped = min(raw_peak, max(k_servers, 1) * self.topology.link_rate)
        peak = max(bandwidth, capped)
        return Contribution(bandwidth=bandwidth, burst=burst,
                            peak_rate=peak, packet_slack=slack)

    # -- bookkeeping ---------------------------------------------------------------

    def _count(self, request: TenantRequest, admitted: bool) -> None:
        bucket = (self.accepted_by_class if admitted
                  else self.rejected_by_class)
        bucket[request.tenant_class] = bucket.get(request.tenant_class,
                                                  0) + 1
        if admitted:
            self.accepted += 1
        else:
            self.rejected += 1
