"""Hot-path performance harness: admission, fluid simulation, max-min.

Times the three optimized hot paths against their reference (seed)
implementations at several scales, asserts the optimized and reference
results agree (admission decisions bit-identical; simulator stats and
max-min allocations to 1e-6 relative), and writes the measurements to
``BENCH_hotpaths.json``:

* **placement** -- a churning admission campaign over
  :class:`SiloPlacementManager` with ``fast_paths=True`` (closed-form
  dual-rate bounds, binary-search fill, O(1) domain skipping) vs
  ``fast_paths=False`` (Curve-per-probe, linear scans, as seeded);
* **flowsim** -- :class:`ClusterSim` (heap-driven events, lazy fluids)
  vs :class:`ReferenceClusterSim` (rescan every flow every event);
* **maxmin** -- :func:`max_min_fair` (water-level with link->flow
  incidence) vs :func:`max_min_fair_reference` (textbook rounds).

Run::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py           # full
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick   # <60 s

The quick mode runs the same correctness assertions on smaller scales;
``tests/test_perf_smoke.py`` (marker ``perf_smoke``) reuses it from
tier-1 without any timing assertions.  The full mode also enforces the
speedup floors recorded in the JSON (>=5x placement at pod scale,
>=10x flowsim at 1k+ concurrent flows).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.flowsim import (ClusterSim, ReferenceClusterSim, TenantWorkload,
                           WorkloadConfig)
from repro.maxmin import (IncrementalMaxMin, max_min_fair,
                          max_min_fair_reference)
from repro.placement import SiloPlacementManager
from repro.topology import TreeTopology

#: Relative agreement demanded between optimized and reference results.
TOLERANCE = 1e-6

#: Paper-scale flowsim tiers, run fast-path only (the reference rescan
#: loop is intractable here): name -> (pods, racks/pod, arrival rate,
#: horizon).  10 servers/rack, 4 slots each, "maxmin" sharing so the
#: incremental solver and the vectorized flow table carry the load.
SCALE_TIERS = {
    "8k": ("8k-servers", 16, 50, 300.0, 6.0),
    "32k": ("32k-servers", 32, 100, 1200.0, 4.0),
}

#: Committed throughput floor for the 8k tier (finished jobs per wall
#: second), asserted by ``--tier 8k`` in CI.  Deliberately conservative
#: (~5x below the measured rate on a 1-CPU container) so container noise
#: cannot trip it; the measured value lives in BENCH_hotpaths.json.
FLOOR_8K_JOBS_PER_S = 40.0


def _cpus() -> int:
    """CPUs available to this process (floors are per-container)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Path 1: placement admission campaign
# ---------------------------------------------------------------------------

def _campaign_topology(n_pods: int, racks_per_pod: int) -> TreeTopology:
    return TreeTopology(n_pods=n_pods, racks_per_pod=racks_per_pod,
                        servers_per_rack=10, slots_per_server=4,
                        link_rate=units.gbps(10), oversubscription=5.0)


def _run_campaign(manager: SiloPlacementManager, n_requests: int,
                  seed: int):
    """Drive a churning admission campaign; returns (decisions, layouts)."""
    rng = random.Random(seed)
    decisions = []
    layouts = []
    placed = []
    for _ in range(n_requests):
        n_vms = rng.randint(2, 24)
        if rng.random() < 0.4:
            guarantee = NetworkGuarantee(
                bandwidth=units.mbps(rng.choice([25, 50, 100])),
                burst=15e3, delay=1e-3, peak_rate=units.gbps(1))
            klass = TenantClass.CLASS_A
        else:
            guarantee = NetworkGuarantee(
                bandwidth=units.mbps(rng.choice([100, 200, 400])),
                burst=rng.choice([15e3, 60e3, 150e3]),
                peak_rate=units.gbps(1))
            klass = TenantClass.CLASS_B
        request = TenantRequest(n_vms=n_vms, guarantee=guarantee,
                                tenant_class=klass)
        placement = manager.place(request)
        decisions.append(placement is not None)
        if placement is not None:
            layouts.append(tuple(placement.vm_servers))
            placed.append(request.tenant_id)
        if placed and rng.random() < 0.15:
            manager.remove(placed.pop(rng.randrange(len(placed))))
    return decisions, layouts


def bench_placement(quick: bool) -> dict:
    scales = [("rack-scale", 1, 4, 150)]
    if not quick:
        scales.append(("pod-scale", 4, 8, 400))
        scales.append(("multi-pod", 8, 8, 600))
    results = []
    for name, pods, racks, n_requests in scales:
        seed = 7
        fast = SiloPlacementManager(_campaign_topology(pods, racks))
        t0 = time.perf_counter()
        fast_decisions, fast_layouts = _run_campaign(fast, n_requests, seed)
        fast_s = time.perf_counter() - t0
        ref = SiloPlacementManager(_campaign_topology(pods, racks),
                                   fast_paths=False)
        t0 = time.perf_counter()
        ref_decisions, ref_layouts = _run_campaign(ref, n_requests, seed)
        ref_s = time.perf_counter() - t0
        assert fast_decisions == ref_decisions, (
            f"{name}: admission decisions diverged")
        assert fast_layouts == ref_layouts, (
            f"{name}: VM layouts diverged")
        results.append({
            "scale": name,
            "servers": pods * racks * 10,
            "requests": n_requests,
            "accepted": sum(fast_decisions),
            "cpus": _cpus(),
            "fast_s": round(fast_s, 4),
            "reference_s": round(ref_s, 4),
            "speedup": round(ref_s / fast_s, 2),
            "decisions_identical": True,
        })
    return {"scales": results}


# ---------------------------------------------------------------------------
# Path 2: fluid cluster simulation
# ---------------------------------------------------------------------------

def _run_sim(sim_cls, n_pods: int, slots: int, arrival_rate: float,
             until: float, seed: int):
    """Run one simulator; returns (stats, wall_seconds, peak_flows)."""
    topology = TreeTopology(n_pods=n_pods, racks_per_pod=8,
                            servers_per_rack=10, slots_per_server=slots,
                            link_rate=units.gbps(10), oversubscription=2.0)
    sim = sim_cls(SiloPlacementManager(topology), sharing="reserved")
    workload = TenantWorkload(WorkloadConfig(mean_compute_time=6.0),
                              arrival_rate=arrival_rate, seed=seed)
    peak = [0]
    admit = sim._admit

    def tracking_admit(arrival, now):
        admitted = admit(arrival, now)
        concurrent = sum(len(job.flows) for job in sim.jobs.values())
        if concurrent > peak[0]:
            peak[0] = concurrent
        return admitted

    sim._admit = tracking_admit
    t0 = time.perf_counter()
    stats = sim.run(workload, until)
    return stats, time.perf_counter() - t0, peak[0]


def _assert_stats_equal(scale: str, new, ref) -> None:
    assert new.finished_jobs == ref.finished_jobs, (
        f"{scale}: finished_jobs {new.finished_jobs} != "
        f"{ref.finished_jobs}")
    assert math.isclose(new.carried_bytes, ref.carried_bytes,
                        rel_tol=TOLERANCE, abs_tol=1e-3), (
        f"{scale}: carried_bytes diverged")
    assert len(new.job_durations) == len(ref.job_durations)
    for a, b in zip(new.job_durations, ref.job_durations):
        assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=1e-9), (
            f"{scale}: job duration {a} != {b}")


def bench_flowsim(quick: bool) -> dict:
    scales = [("small", 1, 4, 30.0, 8.0)]
    if not quick:
        scales.append(("1k-flows", 4, 8, 120.0, 12.0))
    results = []
    for name, pods, slots, rate, until in scales:
        seed = 5
        new_stats, new_s, peak = _run_sim(ClusterSim, pods, slots, rate,
                                          until, seed)
        ref_stats, ref_s, _ = _run_sim(ReferenceClusterSim, pods, slots,
                                       rate, until, seed)
        _assert_stats_equal(name, new_stats, ref_stats)
        results.append({
            "scale": name,
            "peak_concurrent_flows": peak,
            "finished_jobs": new_stats.finished_jobs,
            "cpus": _cpus(),
            "fast_s": round(new_s, 4),
            "reference_s": round(ref_s, 4),
            "speedup": round(ref_s / new_s, 2),
            "stats_identical": True,
        })
    return {"scales": results}


def _run_scale_tier(tier: str) -> dict:
    """One paper-scale flowsim tier (fast path only, no reference)."""
    name, pods, racks, rate, until = SCALE_TIERS[tier]
    topology = TreeTopology(n_pods=pods, racks_per_pod=racks,
                            servers_per_rack=10, slots_per_server=4,
                            link_rate=units.gbps(10), oversubscription=2.0)
    sim = ClusterSim(SiloPlacementManager(topology), sharing="maxmin")
    workload = TenantWorkload(WorkloadConfig(mean_compute_time=6.0),
                              arrival_rate=rate, seed=5)
    t0 = time.perf_counter()
    stats = sim.run(workload, until)
    wall = time.perf_counter() - t0
    solver = sim._mm_solver
    assert stats.finished_jobs > 0, f"{name}: no jobs finished"
    return {
        "scale": name,
        "servers": pods * racks * 10,
        "horizon_s": until,
        "arrival_rate": rate,
        "peak_concurrent_flows": stats.peak_concurrent_flows,
        "finished_jobs": stats.finished_jobs,
        "rate_updates": sim.rate_update_count,
        "solver_recomputes": solver.recompute_count,
        "solver_flows_resolved": solver.affected_flow_count,
        "cpus": _cpus(),
        "fast_s": round(wall, 4),
        "jobs_per_s": round(stats.finished_jobs / wall, 2),
    }


def bench_flowsim_scale(tiers=("8k", "32k")) -> dict:
    """The 8K/32K-server tiers proving paper-scale runs complete."""
    return {"scales": [_run_scale_tier(tier) for tier in tiers]}


# ---------------------------------------------------------------------------
# Path 3: max-min fair allocation
# ---------------------------------------------------------------------------

def _random_sharing_instance(n_links: int, n_flows: int, seed: int):
    rng = random.Random(seed)
    links = [f"l{i}" for i in range(n_links)]
    capacities = {link: rng.choice([units.gbps(1), units.gbps(10), 5e8])
                  for link in links}
    flows = {}
    for flow_id in range(n_flows):
        path = tuple(rng.sample(links, rng.randint(2, 4)))
        demand = math.inf if rng.random() < 0.6 else rng.uniform(1e6, 5e8)
        flows[flow_id] = (path, demand)
    return flows, capacities


def _worst_rel_diff(a: dict, b: dict) -> float:
    worst = 0.0
    for flow_id, rate in a.items():
        other = b[flow_id]
        denom = max(abs(rate), abs(other), 1e-12)
        worst = max(worst, abs(rate - other) / denom)
    return worst


def _clustered_sharing_instance(n_links: int, n_flows: int, seed: int,
                                group: int = 8):
    """A component-structured instance: flows pick links within one
    ``group``-sized cluster, the way locality placement keeps tenant
    traffic on a rack's handful of ports (nic + ToR).  This is the
    shape the fluid simulator actually hands the solver -- a dense
    all-links instance is one giant component and has no incremental
    structure to exploit."""
    rng = random.Random(seed)
    links = [f"l{i}" for i in range(n_links)]
    capacities = {link: rng.choice([units.gbps(1), units.gbps(10), 5e8])
                  for link in links}
    clusters = [links[i:i + group] for i in range(0, n_links, group)]
    flows = {}
    for flow_id in range(n_flows):
        cluster = clusters[rng.randrange(len(clusters))]
        path = tuple(rng.sample(cluster, rng.randint(2, min(4, len(cluster)))))
        demand = math.inf if rng.random() < 0.6 else rng.uniform(1e6, 5e8)
        flows[flow_id] = (path, demand)
    return flows, capacities


def _bench_incremental(n_links: int, n_flows: int,
                       n_ops: int, seed: int) -> dict:
    """Churn a live flow set: incremental vs full-solve-per-event.

    Each op removes one random flow and adds a fresh one, re-solving
    after every change -- exactly the arrival/finish pattern the fluid
    simulator generates, on a clustered instance with the simulator's
    component structure.  The from-scratch baseline calls
    :func:`max_min_fair` on the full set per op (what the simulator did
    before the incremental solver); both must land on the same final
    allocation, cross-checked against the textbook reference.
    """
    flows, capacities = _clustered_sharing_instance(n_links, n_flows,
                                                    seed * 17 + 3)
    rng = random.Random(seed * 31 + 1)
    links = [f"l{i}" for i in range(n_links)]
    group = 8
    clusters = [links[i:i + group] for i in range(0, n_links, group)]
    current = dict(flows)
    next_id = len(flows)
    ops = []
    for _ in range(n_ops):
        victim = rng.choice(sorted(current))
        del current[victim]
        cluster = clusters[rng.randrange(len(clusters))]
        path = tuple(rng.sample(cluster, rng.randint(2, min(4, len(cluster)))))
        demand = math.inf if rng.random() < 0.6 else rng.uniform(1e6, 5e8)
        ops.append((victim, (path, demand)))
        current[next_id] = (path, demand)
        next_id += 1

    inc = IncrementalMaxMin(capacities)
    for flow_id, (path, demand) in flows.items():
        inc.add_flow(flow_id, path, demand)
    inc.recompute()
    add_id = len(flows)
    t0 = time.perf_counter()
    for victim, spec in ops:
        inc.remove_flow(victim)
        inc.recompute()
        inc.add_flow(add_id, *spec)
        add_id += 1
        inc.recompute()
    inc_s = time.perf_counter() - t0

    scratch = dict(flows)
    add_id = len(flows)
    t0 = time.perf_counter()
    for victim, spec in ops:
        del scratch[victim]
        max_min_fair(scratch, capacities)
        scratch[add_id] = spec
        add_id += 1
        rates = max_min_fair(scratch, capacities)
    scratch_s = time.perf_counter() - t0

    final = inc.rates()
    worst_fast = _worst_rel_diff(final, rates)
    worst_ref = _worst_rel_diff(
        final, max_min_fair_reference(scratch, capacities))
    assert worst_ref <= TOLERANCE, (
        f"incremental diverged from reference ({worst_ref:g})")
    assert worst_fast <= TOLERANCE, (
        f"incremental diverged from from-scratch ({worst_fast:g})")
    return {
        "churn_ops": n_ops,
        "incremental_s": round(inc_s, 4),
        "scratch_s": round(scratch_s, 4),
        "incremental_speedup": round(scratch_s / inc_s, 2),
        "flows_resolved": inc.affected_flow_count,
        "worst_rel_diff_incremental": worst_ref,
    }


def bench_maxmin(quick: bool) -> dict:
    scales = [("500-flows", 100, 500)]
    if not quick:
        scales.append(("2k-flows", 400, 2000))
        scales.append(("5k-flows", 800, 5000))
    results = []
    for name, n_links, n_flows in scales:
        flows, capacities = _random_sharing_instance(n_links, n_flows, 11)
        t0 = time.perf_counter()
        fast_rates = max_min_fair(flows, capacities)
        fast_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        ref_rates = max_min_fair_reference(flows, capacities)
        ref_s = time.perf_counter() - t0
        worst = _worst_rel_diff(fast_rates, ref_rates)
        assert worst <= TOLERANCE, (
            f"{name}: allocations diverged (worst rel diff {worst:g})")
        row = {
            "scale": name,
            "links": n_links,
            "flows": n_flows,
            "cpus": _cpus(),
            "fast_s": round(fast_s, 4),
            "reference_s": round(ref_s, 4),
            "speedup": round(ref_s / fast_s, 2),
            "worst_rel_diff": worst,
        }
        row.update(_bench_incremental(n_links, n_flows,
                                      n_ops=10 if quick else 30, seed=11))
        results.append(row)
    return {"scales": results}


# ---------------------------------------------------------------------------


def run(quick: bool, out: Path) -> dict:
    report = {
        "quick": quick,
        "tolerance": TOLERANCE,
        "paths": {
            "placement": bench_placement(quick),
            "flowsim": bench_flowsim(quick),
            "maxmin": bench_maxmin(quick),
        },
    }
    if not quick:
        report["paths"]["flowsim_scale"] = bench_flowsim_scale()
    header = f"{'path':14s} {'scale':12s} {'fast':>9s} {'reference':>10s} {'speedup':>8s}"
    print(header)
    print("-" * len(header))
    for path, data in report["paths"].items():
        for row in data["scales"]:
            ref = (f"{row['reference_s']:>9.3f}s"
                   if "reference_s" in row else f"{'-':>10s}")
            speedup = (f"{row['speedup']:>7.1f}x"
                       if "speedup" in row else f"{'-':>8s}")
            print(f"{path:14s} {row['scale']:12s} "
                  f"{row['fast_s']:>8.3f}s {ref} {speedup}")
    if not quick:
        pod = next(r for r in report["paths"]["placement"]["scales"]
                   if r["scale"] == "pod-scale")
        assert pod["speedup"] >= 5.0, (
            f"placement pod-scale speedup {pod['speedup']}x below 5x floor")
        big = next(r for r in report["paths"]["flowsim"]["scales"]
                   if r["scale"] == "1k-flows")
        assert big["peak_concurrent_flows"] >= 1000
        assert big["speedup"] >= 10.0, (
            f"flowsim speedup {big['speedup']}x below 10x floor")
        tier8k = next(r for r in report["paths"]["flowsim_scale"]["scales"]
                      if r["scale"] == "8k-servers")
        assert tier8k["jobs_per_s"] >= FLOOR_8K_JOBS_PER_S, (
            f"8k tier {tier8k['jobs_per_s']} jobs/s below "
            f"{FLOOR_8K_JOBS_PER_S} floor")
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    return report


def run_tier(tier: str, out: Path) -> dict:
    """Run one paper-scale tier standalone (the CI perf-smoke entry)."""
    row = _run_scale_tier(tier)
    print(json.dumps(row, indent=2))
    if tier == "8k":
        assert row["jobs_per_s"] >= FLOOR_8K_JOBS_PER_S, (
            f"8k tier {row['jobs_per_s']} jobs/s below "
            f"{FLOOR_8K_JOBS_PER_S} floor")
    if out is not None:
        out.write_text(json.dumps(row, indent=2) + "\n")
        print(f"wrote {out}")
    return row


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scales only; finishes well under 60 s")
    parser.add_argument("--tier", choices=sorted(SCALE_TIERS), default=None,
                        help="run a single paper-scale flowsim tier and "
                             "exit (used by CI; asserts the committed "
                             "throughput floor for the 8k tier)")
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON report path (default: the committed "
                             "BENCH_hotpaths.json, full mode only -- a "
                             "quick run never overwrites the baseline)")
    args = parser.parse_args(argv)
    if args.tier is not None:
        run_tier(args.tier, args.out)
        return
    out = args.out
    if out is None and not args.quick:
        out = _REPO / "BENCH_hotpaths.json"
    run(args.quick, out)


if __name__ == "__main__":
    main()
