"""Per-port used-rate recording inside the fluid simulator.

The hybrid-fidelity coupling (:mod:`repro.hybrid.sim`) needs to know,
for each port on a foreground tenant's paths, how much capacity the
fluid *background* is using at every point in virtual time.  The fluid
simulator already knows exactly when any flow's rate changes -- that is
its event model -- so the recorder simply folds those deltas into a
per-port running sum and appends a ``(time, used_rate)`` breakpoint
whenever the sum moves.

Attach via :meth:`repro.flowsim.sim.ClusterSim.monitor_port_usage`.
The hot-path contract matches the rest of ``obs/``: detached costs one
``is None`` test per actual rate change; attached costs one frozenset
membership test per (watched candidate) port per change, and nothing at
all for flows that never touch a watched port beyond that test.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["PortUsageRecorder"]


class PortUsageRecorder:
    """Breakpoint series of background used rate on a watched port set.

    The series for each port starts with an implicit ``(0.0, 0.0)``
    breakpoint (an empty cluster carries nothing) and is stepwise
    constant between breakpoints -- exactly the fluid model's semantics,
    so resampling is exact, not an approximation.
    """

    def __init__(self, ports: Iterable[int]):
        """Watch ``ports`` (an iterable of topology port ids)."""
        self.ports = frozenset(ports)
        self._used: Dict[int, float] = {p: 0.0 for p in self.ports}
        #: port id -> [(time, used_rate), ...], time non-decreasing with
        #: at most one entry per distinct time.
        self.series: Dict[int, List[Tuple[float, float]]] = {
            p: [(0.0, 0.0)] for p in self.ports}

    def record(self, links: Tuple[int, ...], old: float, new: float,
               now: float) -> None:
        """Fold one flow rate change (``old`` -> ``new``) into every
        watched port along ``links``."""
        delta = new - old
        if delta == 0.0:
            return
        used = self._used
        series = self.series
        for port_id in links:
            if port_id not in used:
                continue
            value = used[port_id] + delta
            # Float slop on the way down can leave a tiny negative sum;
            # clamp so residual factors never exceed 1.
            if value < 0.0:
                value = 0.0
            used[port_id] = value
            entries = series[port_id]
            if entries[-1][0] == now:
                entries[-1] = (now, value)
            else:
                entries.append((now, value))

    def used_at(self, port_id: int, when: float) -> float:
        """Background used rate on ``port_id`` at time ``when`` (the last
        breakpoint at or before ``when``; 0 before the first)."""
        value = 0.0
        for time, used in self.series[port_id]:
            if time > when:
                break
            value = used
        return value

    def window(self, port_id: int, start: float,
               end: float) -> List[Tuple[float, float]]:
        """Breakpoints covering ``[start, end)``, re-based to ``start``.

        The first entry is always at relative time 0.0 (the level
        prevailing at ``start``); later entries are the in-window
        breakpoints shifted by ``-start``.
        """
        out: List[Tuple[float, float]] = [(0.0, self.used_at(port_id,
                                                             start))]
        for time, used in self.series[port_id]:
            if time <= start:
                continue
            if time >= end:
                break
            out.append((time - start, used))
        return out
