"""Oktopus and locality baselines, and Fig. 5's contrast with Silo."""

import pytest

from repro import units
from repro.core.guarantees import NetworkGuarantee
from repro.core.tenant import TenantClass, TenantRequest
from repro.placement import (
    LocalityPlacementManager,
    OktopusPlacementManager,
    SiloPlacementManager,
)
from repro.topology import TreeTopology


def bursty_request(n_vms=9):
    """The Fig. 5 tenant: 1 Gbps, 100 KB burst, 1 ms delay, 10 Gbps Bmax."""
    return TenantRequest(
        n_vms=n_vms,
        guarantee=NetworkGuarantee(bandwidth=units.gbps(1),
                                   burst=100 * units.KB,
                                   delay=units.msec(1),
                                   peak_rate=units.gbps(10)),
        tenant_class=TenantClass.CLASS_A)


class TestLocality:
    def test_packs_first_servers(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                            slots_per_server=4)
        manager = LocalityPlacementManager(topo)
        placement = manager.place(bursty_request(n_vms=9))
        assert placement is not None
        # Greedy packing: servers 0 and 1 full, server 2 gets one VM.
        assert placement.vms_per_server() == {0: 4, 1: 4, 2: 1}

    def test_only_rejects_on_slots(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=2,
                            slots_per_server=4)
        manager = LocalityPlacementManager(topo)
        assert manager.place(bursty_request(n_vms=8)) is not None
        assert manager.place(bursty_request(n_vms=1)) is None

    def test_no_reservations_recorded(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                            slots_per_server=4)
        manager = LocalityPlacementManager(topo)
        manager.place(bursty_request(n_vms=9))
        assert all(s.bandwidth == 0 for s in manager.states.values())


class TestOktopus:
    def test_reserves_bandwidth(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=4,
                            slots_per_server=4)
        manager = OktopusPlacementManager(topo)
        placement = manager.place(bursty_request(n_vms=9))
        assert placement is not None
        assert any(s.bandwidth > 0 for s in manager.states.values())

    def test_rejects_on_bandwidth_exhaustion(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=2, servers_per_rack=2,
                            slots_per_server=8, oversubscription=5.0)
        manager = OktopusPlacementManager(topo)
        request = TenantRequest(
            n_vms=16,
            guarantee=NetworkGuarantee(bandwidth=units.gbps(8),
                                       burst=units.MTU),
            tenant_class=TenantClass.CLASS_B)
        assert manager.place(request) is None

    def test_ignores_delay_and_burst(self):
        """Oktopus happily accepts what Silo must reject: that is the
        point of Fig. 5."""
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                            slots_per_server=4,
                            buffer_bytes=300 * units.KB)
        okto = OktopusPlacementManager(topo)
        assert okto.place(bursty_request(n_vms=9)) is not None

        silo = SiloPlacementManager(
            TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                         slots_per_server=4,
                         buffer_bytes=300 * units.KB))
        # With rigorous bounds and 300 KB shallow buffers this burst
        # profile cannot be guaranteed lossless, so Silo refuses.
        assert silo.place(bursty_request(n_vms=9)) is None


class TestFig5Shape:
    def test_silo_admission_respects_buffers(self):
        """Whatever placement Silo picks for the Fig. 5 tenant, its own
        queue bounds must fit the buffers (the property Fig. 5
        illustrates); buffers here are sized so admission succeeds under
        the rigorous bound, and the delay scope is relaxed accordingly."""
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                            slots_per_server=4,
                            buffer_bytes=1000 * units.KB)
        silo = SiloPlacementManager(topo)
        request = TenantRequest(
            n_vms=9,
            guarantee=NetworkGuarantee(bandwidth=units.gbps(1),
                                       burst=100 * units.KB,
                                       delay=units.msec(2),
                                       peak_rate=units.gbps(10)),
            tenant_class=TenantClass.CLASS_A)
        placement = silo.place(request)
        assert placement is not None
        assert len(placement.vm_servers) == 9
        for state in silo.states.values():
            assert state.backlog() <= state.port.buffer_bytes + 1e-6

    def test_okto_concentrates(self):
        topo = TreeTopology(n_pods=1, racks_per_pod=1, servers_per_rack=3,
                            slots_per_server=4,
                            buffer_bytes=1000 * units.KB)
        okto = OktopusPlacementManager(topo)
        placement = okto.place(bursty_request(n_vms=9))
        counts = sorted(placement.vms_per_server().values())
        assert counts == [1, 4, 4]
